//! Host-side interpreter throughput sweep: the `BENCH_interp.json`
//! trajectory.
//!
//! Runs the full Table I workload suite end-to-end under both dispatch
//! loops ([`InterpMode::Fast`] and [`InterpMode::Reference`]) plus the
//! three dispatch microbenchmark programs from
//! `crates/bench/benches/interp.rs`, and reports host nanoseconds per
//! simulated instruction and runs per second for each. Both modes produce
//! bit-identical virtual-clock results (`tests/interp_equiv.rs` proves
//! it), so every wall-clock difference here is pure host-side dispatch
//! cost.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example perf_sweep [-- --out BENCH_interp.json] [--reps N]
//! ```
//!
//! If the output file already exists (the committed baseline), the sweep
//! prints the delta of aggregate ns/instruction against it before
//! overwriting — that is what the CI perf-smoke job surfaces.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use evolvable_vm::bytecode::{asm::parse, Program};
use evolvable_vm::vm::{
    BaselineOnlyPolicy, CostBenefitPolicy, InterpMode, Outcome, RunResult, Vm, VmConfig,
};
use evolvable_vm::workloads;

/// The Table I benchmark order (kept in sync with `evovm-bench`, which
/// the façade crate deliberately does not depend on).
const TABLE1: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// One microbenchmark program comparison.
#[derive(Debug, Serialize, Deserialize)]
struct MicroRow {
    name: String,
    fast_ms_per_iter: f64,
    reference_ms_per_iter: f64,
    speedup: f64,
}

/// One Table I workload, timed end-to-end under both dispatch loops.
#[derive(Debug, Serialize, Deserialize)]
struct WorkloadRow {
    workload: String,
    instructions: u64,
    simulated_cycles: u64,
    fast_ns_per_instr: f64,
    reference_ns_per_instr: f64,
    speedup: f64,
    fast_runs_per_sec: f64,
    reference_runs_per_sec: f64,
}

/// Suite-wide totals (instruction-weighted).
#[derive(Debug, Serialize, Deserialize)]
struct Aggregate {
    fast_ns_per_instr: f64,
    reference_ns_per_instr: f64,
    speedup: f64,
}

/// The whole report, as committed to `BENCH_interp.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    generated_by: String,
    reps: u64,
    microbench: Vec<MicroRow>,
    table1: Vec<WorkloadRow>,
    aggregate: Aggregate,
    notes: Vec<String>,
}

/// The dispatch-heavy microbench program (see benches/interp.rs).
const DISPATCH_SRC: &str = "
entry func main/0 locals=2 {
  const 0
  store 0
  const 0
  store 1
top:
  load 0
  const 40000
  icmpge
  jumpif end
  load 1
  load 0
  const 2654435761
  imul
  const 1048575
  band
  iadd
  store 1
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  load 1
  print
  null
  return
}";

/// The call-dominated microbench program (see benches/interp.rs).
const CALLS_SRC: &str = "
entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 20000
  icmpge
  jumpif end
  load 0
  call mix
  pop
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func mix/1 locals=2 {
  load 0
  const 2654435761
  imul
  store 1
  load 1
  load 0
  iadd
  return
}";

/// Run one program to completion under `mode`, resuming through feature
/// pauses like the campaign loop does.
fn adaptive_run(program: &Arc<Program>, mode: InterpMode) -> RunResult {
    let mut vm = Vm::new(
        Arc::clone(program),
        Box::new(CostBenefitPolicy::new()),
        VmConfig {
            interp: mode,
            ..VmConfig::default()
        },
    )
    .expect("workload programs verify");
    loop {
        match vm.run().expect("workload programs do not trap") {
            Outcome::Finished(result) => return result,
            Outcome::FeaturesReady => continue,
        }
    }
}

/// Wall-clock seconds for `reps` runs of `f` (after one warm-up run).
fn time_reps(reps: u64, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64()
}

fn micro_row(name: &str, src: &str, config: &VmConfig, reps: u64) -> MicroRow {
    let program = Arc::new(parse(src).expect("valid asm"));
    let mut times = [0.0f64; 2];
    for (slot, mode) in [InterpMode::Fast, InterpMode::Reference]
        .into_iter()
        .enumerate()
    {
        let config = VmConfig {
            interp: mode,
            ..config.clone()
        };
        times[slot] = time_reps(reps, || {
            let mut vm = Vm::new(
                Arc::clone(&program),
                Box::new(BaselineOnlyPolicy),
                config.clone(),
            )
            .expect("verified");
            vm.run().expect("runs");
        });
    }
    MicroRow {
        name: name.to_string(),
        fast_ms_per_iter: times[0] * 1e3 / reps as f64,
        reference_ms_per_iter: times[1] * 1e3 / reps as f64,
        speedup: times[1] / times[0],
    }
}

fn workload_row(name: &str, reps: u64) -> WorkloadRow {
    let bench = workloads::by_name(name).expect("bundled workload");
    let program = &bench.inputs[0].program;
    // Both modes retire the same instruction stream (the equivalence
    // suite proves it bit for bit); take the counts from one fast run.
    let probe = adaptive_run(program, InterpMode::Fast);
    let fast_secs = time_reps(reps, || {
        adaptive_run(program, InterpMode::Fast);
    });
    let reference_secs = time_reps(reps, || {
        adaptive_run(program, InterpMode::Reference);
    });
    let per_run_instr = probe.instructions as f64;
    WorkloadRow {
        workload: name.to_string(),
        instructions: probe.instructions,
        simulated_cycles: probe.total_cycles,
        fast_ns_per_instr: fast_secs * 1e9 / (reps as f64 * per_run_instr),
        reference_ns_per_instr: reference_secs * 1e9 / (reps as f64 * per_run_instr),
        speedup: reference_secs / fast_secs,
        fast_runs_per_sec: reps as f64 / fast_secs,
        reference_runs_per_sec: reps as f64 / reference_secs,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_interp.json");
    let mut reps: u64 = 5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a number")
                    .parse()
                    .expect("--reps needs a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let baseline: Option<Report> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());

    println!("microbenchmarks ({reps} reps, fast vs reference):");
    let micro = vec![
        micro_row(
            "dispatch_40k_loop",
            DISPATCH_SRC,
            &VmConfig::default(),
            reps,
        ),
        micro_row("calls_20k_frames", CALLS_SRC, &VmConfig::default(), reps),
        micro_row(
            "sampling_1k_interval",
            DISPATCH_SRC,
            &VmConfig {
                sample_interval_cycles: 1_000,
                ..VmConfig::default()
            },
            reps,
        ),
    ];
    for row in &micro {
        println!(
            "  {:24} {:>7.2}ms vs {:>7.2}ms  ({:.2}x)",
            row.name, row.fast_ms_per_iter, row.reference_ms_per_iter, row.speedup
        );
    }

    println!("Table I suite ({reps} reps, adaptive runs, fast vs reference):");
    let table1: Vec<WorkloadRow> = TABLE1.iter().map(|w| workload_row(w, reps)).collect();
    let mut fast_secs = 0.0;
    let mut reference_secs = 0.0;
    let mut instr_total = 0.0;
    for row in &table1 {
        println!(
            "  {:12} {:>9} instrs  {:>6.2} vs {:>6.2} ns/instr  ({:.2}x, {:.0} runs/s)",
            row.workload,
            row.instructions,
            row.fast_ns_per_instr,
            row.reference_ns_per_instr,
            row.speedup,
            row.fast_runs_per_sec,
        );
        let per_run = row.instructions as f64 * reps as f64;
        fast_secs += row.fast_ns_per_instr * per_run / 1e9;
        reference_secs += row.reference_ns_per_instr * per_run / 1e9;
        instr_total += per_run;
    }
    let aggregate = Aggregate {
        fast_ns_per_instr: fast_secs * 1e9 / instr_total,
        reference_ns_per_instr: reference_secs * 1e9 / instr_total,
        speedup: reference_secs / fast_secs,
    };
    println!(
        "aggregate: {:.2} vs {:.2} ns/instr ({:.2}x)",
        aggregate.fast_ns_per_instr, aggregate.reference_ns_per_instr, aggregate.speedup
    );

    match &baseline {
        Some(prev) => {
            let delta = 100.0 * (aggregate.fast_ns_per_instr - prev.aggregate.fast_ns_per_instr)
                / prev.aggregate.fast_ns_per_instr;
            println!(
                "delta vs committed baseline ({out_path}): {delta:+.1}% ns/instr \
                 (baseline {:.2}, now {:.2})",
                prev.aggregate.fast_ns_per_instr, aggregate.fast_ns_per_instr
            );
        }
        None => println!("no committed baseline at {out_path}; writing a fresh one"),
    }

    let report = Report {
        generated_by: "cargo run --release --example perf_sweep".to_string(),
        reps,
        microbench: micro,
        table1,
        aggregate,
        notes: vec![
            "fast and reference produce bit-identical virtual-clock results; \
             wall-clock deltas are pure host-side dispatch cost (tests/interp_equiv.rs)"
                .to_string(),
            "the reference loop shares the arena-based call path, so speedups \
             understate the win over the seed interpreter's Vec-per-frame calls"
                .to_string(),
            "numbers are host-dependent; regenerate on the machine being compared".to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
