//! Host-side interpreter throughput sweep: the `BENCH_interp.json`
//! trajectory.
//!
//! Runs the full Table I workload suite end-to-end under both dispatch
//! loops ([`InterpMode::Fast`] and [`InterpMode::Reference`]) plus the
//! three dispatch microbenchmark programs from
//! `crates/bench/benches/interp.rs`, and reports host nanoseconds per
//! simulated instruction and runs per second for each. Both modes produce
//! bit-identical virtual-clock results (`tests/interp_equiv.rs` proves
//! it), so every wall-clock difference here is pure host-side dispatch
//! cost.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example perf_sweep [-- --out BENCH_interp.json] [--reps N]
//! cargo run --release --example perf_sweep -- --dispatch [--out BENCH_dispatch.json]
//! cargo run --release --example perf_sweep -- --assert-flat 5
//! ```
//!
//! If the output file already exists (the committed baseline), the sweep
//! prints the delta of aggregate ns/instruction against it before
//! overwriting — that is what the CI perf-smoke job surfaces.
//! `--assert-flat PCT` turns that delta into a gate: exit nonzero when
//! the aggregate fast ns/instruction moved more than ±PCT% from the
//! committed baseline (or when there is no baseline to compare against).
//!
//! `--dispatch` runs the whole suite with the dispatch profiler on and
//! superinstruction fusion *off*, writes the raw opcode/opcode-pair
//! distribution to `BENCH_dispatch.json` (the data that justifies the
//! fusion set in `crates/opt/src/passes/fuse.rs`), and reports the
//! fused-vs-unfused host ns/instr delta.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use evolvable_vm::bytecode::{asm::parse, Instr, Program};
use evolvable_vm::vm::{
    BaselineOnlyPolicy, CostBenefitPolicy, DispatchProfile, InterpMode, Outcome, RunResult, Vm,
    VmConfig,
};
use evolvable_vm::workloads;

/// The Table I benchmark order (kept in sync with `evovm-bench`, which
/// the façade crate deliberately does not depend on).
const TABLE1: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// One microbenchmark program comparison.
#[derive(Debug, Serialize, Deserialize)]
struct MicroRow {
    name: String,
    fast_ms_per_iter: f64,
    reference_ms_per_iter: f64,
    speedup: f64,
}

/// One Table I workload, timed end-to-end under both dispatch loops.
#[derive(Debug, Serialize, Deserialize)]
struct WorkloadRow {
    workload: String,
    instructions: u64,
    simulated_cycles: u64,
    fast_ns_per_instr: f64,
    reference_ns_per_instr: f64,
    speedup: f64,
    fast_runs_per_sec: f64,
    reference_runs_per_sec: f64,
}

/// Suite-wide totals (instruction-weighted).
#[derive(Debug, Serialize, Deserialize)]
struct Aggregate {
    fast_ns_per_instr: f64,
    reference_ns_per_instr: f64,
    speedup: f64,
}

/// The whole report, as committed to `BENCH_interp.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    generated_by: String,
    reps: u64,
    microbench: Vec<MicroRow>,
    table1: Vec<WorkloadRow>,
    aggregate: Aggregate,
    notes: Vec<String>,
}

/// The dispatch-heavy microbench program (see benches/interp.rs).
const DISPATCH_SRC: &str = "
entry func main/0 locals=2 {
  const 0
  store 0
  const 0
  store 1
top:
  load 0
  const 40000
  icmpge
  jumpif end
  load 1
  load 0
  const 2654435761
  imul
  const 1048575
  band
  iadd
  store 1
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  load 1
  print
  null
  return
}";

/// The call-dominated microbench program (see benches/interp.rs).
const CALLS_SRC: &str = "
entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 20000
  icmpge
  jumpif end
  load 0
  call mix
  pop
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func mix/1 locals=2 {
  load 0
  const 2654435761
  imul
  store 1
  load 1
  load 0
  iadd
  return
}";

/// Run one program to completion under `mode`, resuming through feature
/// pauses like the campaign loop does.
fn adaptive_run(program: &Arc<Program>, mode: InterpMode) -> RunResult {
    adaptive_run_cfg(
        program,
        VmConfig {
            interp: mode,
            ..VmConfig::default()
        },
    )
}

/// [`adaptive_run`] with full control of the config (dispatch profiling,
/// fusion switch).
fn adaptive_run_cfg(program: &Arc<Program>, config: VmConfig) -> RunResult {
    let mut vm = Vm::new(
        Arc::clone(program),
        Box::new(CostBenefitPolicy::new()),
        config,
    )
    .expect("workload programs verify");
    loop {
        match vm.run().expect("workload programs do not trap") {
            Outcome::Finished(result) => return *result,
            Outcome::FeaturesReady => continue,
        }
    }
}

/// Wall-clock seconds for `reps` runs of `f` (after one warm-up run).
fn time_reps(reps: u64, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64()
}

fn micro_row(name: &str, src: &str, config: &VmConfig, reps: u64) -> MicroRow {
    let program = Arc::new(parse(src).expect("valid asm"));
    let mut times = [0.0f64; 2];
    for (slot, mode) in [InterpMode::Fast, InterpMode::Reference]
        .into_iter()
        .enumerate()
    {
        let config = VmConfig {
            interp: mode,
            ..config.clone()
        };
        times[slot] = time_reps(reps, || {
            let mut vm = Vm::new(
                Arc::clone(&program),
                Box::new(BaselineOnlyPolicy),
                config.clone(),
            )
            .expect("verified");
            vm.run().expect("runs");
        });
    }
    MicroRow {
        name: name.to_string(),
        fast_ms_per_iter: times[0] * 1e3 / reps as f64,
        reference_ms_per_iter: times[1] * 1e3 / reps as f64,
        speedup: times[1] / times[0],
    }
}

fn workload_row(name: &str, reps: u64) -> WorkloadRow {
    let bench = workloads::by_name(name).expect("bundled workload");
    let program = &bench.inputs[0].program;
    // Both modes retire the same instruction stream (the equivalence
    // suite proves it bit for bit); take the counts from one fast run.
    let probe = adaptive_run(program, InterpMode::Fast);
    let fast_secs = time_reps(reps, || {
        adaptive_run(program, InterpMode::Fast);
    });
    let reference_secs = time_reps(reps, || {
        adaptive_run(program, InterpMode::Reference);
    });
    let per_run_instr = probe.instructions as f64;
    WorkloadRow {
        workload: name.to_string(),
        instructions: probe.instructions,
        simulated_cycles: probe.total_cycles,
        fast_ns_per_instr: fast_secs * 1e9 / (reps as f64 * per_run_instr),
        reference_ns_per_instr: reference_secs * 1e9 / (reps as f64 * per_run_instr),
        speedup: reference_secs / fast_secs,
        fast_runs_per_sec: reps as f64 / fast_secs,
        reference_runs_per_sec: reps as f64 / reference_secs,
    }
}

/// One opcode class with its share of all retirements.
#[derive(Debug, Serialize, Deserialize)]
struct ClassRow {
    class: String,
    count: u64,
    share_pct: f64,
}

/// One adjacent opcode pair with its share of all retirements.
#[derive(Debug, Serialize, Deserialize)]
struct PairRow {
    prev: String,
    next: String,
    count: u64,
    share_pct: f64,
}

/// Per-workload slice of the dispatch profile.
#[derive(Debug, Serialize, Deserialize)]
struct DispatchWorkloadRow {
    workload: String,
    retired: u64,
    top_pairs: Vec<PairRow>,
}

/// Fused-vs-unfused host throughput for one workload (both runs produce
/// bit-identical virtual clocks; only host ns/instr differs).
#[derive(Debug, Serialize, Deserialize)]
struct FusionRow {
    workload: String,
    unfused_ns_per_instr: f64,
    fused_ns_per_instr: f64,
    speedup: f64,
}

/// The whole `BENCH_dispatch.json` report.
#[derive(Debug, Serialize, Deserialize)]
struct DispatchReport {
    generated_by: String,
    reps: u64,
    total_retired: u64,
    top_classes: Vec<ClassRow>,
    top_pairs: Vec<PairRow>,
    per_workload: Vec<DispatchWorkloadRow>,
    fusion: Vec<FusionRow>,
    fusion_aggregate_speedup: f64,
    notes: Vec<String>,
}

fn pair_rows(profile: &DispatchProfile, total: u64, limit: usize) -> Vec<PairRow> {
    profile
        .top_pairs()
        .into_iter()
        .take(limit)
        .map(|(a, b, n)| PairRow {
            prev: Instr::dispatch_class_name(a).to_string(),
            next: Instr::dispatch_class_name(b).to_string(),
            count: n,
            share_pct: 100.0 * n as f64 / total as f64,
        })
        .collect()
}

/// The `--dispatch` mode: measure the raw (fusion off) opcode-pair
/// distribution over the whole suite, then time fused vs unfused fast
/// loops.
fn run_dispatch(out_path: &str, reps: u64) {
    // The dispatch-heavy micro programs participate too: they are the
    // benchmarks the fusion set most directly targets.
    let micros = [
        ("dispatch_40k_loop", DISPATCH_SRC),
        ("calls_20k_frames", CALLS_SRC),
    ];
    let profiled = VmConfig {
        profile_dispatch: true,
        fuse: false,
        ..VmConfig::default()
    };
    let mut aggregate = DispatchProfile::new();
    let mut per_workload = Vec::new();
    println!("dispatch profile (fusion off, adaptive runs):");
    let programs: Vec<(String, Arc<Program>)> = TABLE1
        .iter()
        .map(|&w| {
            let bench = workloads::by_name(w).expect("bundled workload");
            (w.to_string(), Arc::clone(&bench.inputs[0].program))
        })
        .chain(
            micros
                .iter()
                .map(|&(name, src)| (name.to_string(), Arc::new(parse(src).expect("valid asm")))),
        )
        .collect();
    for (name, program) in &programs {
        let result = adaptive_run_cfg(program, profiled.clone());
        let profile = result
            .profile
            .dispatch
            .expect("profiling was on for this run");
        let retired = profile.total();
        let top = pair_rows(&profile, retired, 10);
        if let Some(first) = top.first() {
            println!(
                "  {:18} {:>9} retired  hottest pair {}->{} ({:.1}%)",
                name, retired, first.prev, first.next, first.share_pct
            );
        }
        aggregate.absorb(&profile);
        per_workload.push(DispatchWorkloadRow {
            workload: name.clone(),
            retired,
            top_pairs: top,
        });
    }
    let total = aggregate.total();
    let top_classes: Vec<ClassRow> = aggregate
        .top_classes()
        .into_iter()
        .take(20)
        .map(|(c, n)| ClassRow {
            class: Instr::dispatch_class_name(c).to_string(),
            count: n,
            share_pct: 100.0 * n as f64 / total as f64,
        })
        .collect();
    let top_pairs = pair_rows(&aggregate, total, 30);
    println!("aggregate: {total} retirements; top pairs:");
    for p in top_pairs.iter().take(15) {
        println!(
            "  {:>10} -> {:<10} {:>10}  {:>5.2}%",
            p.prev, p.next, p.count, p.share_pct
        );
    }

    // Fused vs unfused host throughput (fast loop, profiling off; the
    // virtual clock is bit-identical between the two configs).
    println!("fused vs unfused fast loop ({reps} reps):");
    let mut fused_secs_total = 0.0;
    let mut unfused_secs_total = 0.0;
    let mut fusion = Vec::new();
    for (name, program) in &programs {
        let probe = adaptive_run_cfg(
            program,
            VmConfig {
                fuse: false,
                ..VmConfig::default()
            },
        );
        let instrs = probe.instructions as f64 * reps as f64;
        let unfused_secs = time_reps(reps, || {
            adaptive_run_cfg(
                program,
                VmConfig {
                    fuse: false,
                    ..VmConfig::default()
                },
            );
        });
        let fused_secs = time_reps(reps, || {
            adaptive_run_cfg(program, VmConfig::default());
        });
        println!(
            "  {:18} {:>6.2} -> {:>6.2} ns/instr  ({:.2}x)",
            name,
            unfused_secs * 1e9 / instrs,
            fused_secs * 1e9 / instrs,
            unfused_secs / fused_secs
        );
        unfused_secs_total += unfused_secs;
        fused_secs_total += fused_secs;
        fusion.push(FusionRow {
            workload: name.clone(),
            unfused_ns_per_instr: unfused_secs * 1e9 / instrs,
            fused_ns_per_instr: fused_secs * 1e9 / instrs,
            speedup: unfused_secs / fused_secs,
        });
    }
    let fusion_aggregate_speedup = unfused_secs_total / fused_secs_total;
    println!("fused-vs-unfused aggregate speedup: {fusion_aggregate_speedup:.2}x");

    let report = DispatchReport {
        generated_by: "cargo run --release --example perf_sweep -- --dispatch".to_string(),
        reps,
        total_retired: total,
        top_classes,
        top_pairs,
        per_workload,
        fusion,
        fusion_aggregate_speedup,
        notes: vec![
            "distribution measured with profile_dispatch=true and fuse=false so pairs \
             reflect the raw pre-fusion instruction stream"
                .to_string(),
            "instruction counts are retired-instruction equivalents; fused ops report \
             their component count, so totals match unfused runs bit for bit"
                .to_string(),
            "this distribution justifies the superinstruction set in \
             crates/opt/src/passes/fuse.rs"
                .to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut reps: u64 = 5;
    let mut dispatch = false;
    let mut assert_flat: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a path")),
            "--dispatch" => dispatch = true,
            "--reps" => {
                reps = args
                    .next()
                    .expect("--reps needs a number")
                    .parse()
                    .expect("--reps needs a number");
            }
            "--assert-flat" => {
                assert_flat = Some(
                    args.next()
                        .expect("--assert-flat needs a percentage")
                        .parse()
                        .expect("--assert-flat needs a percentage"),
                );
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    if dispatch {
        let out = out_path.unwrap_or_else(|| "BENCH_dispatch.json".to_string());
        run_dispatch(&out, reps);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_interp.json".to_string());

    let baseline: Option<Report> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok());

    println!("microbenchmarks ({reps} reps, fast vs reference):");
    let micro = vec![
        micro_row(
            "dispatch_40k_loop",
            DISPATCH_SRC,
            &VmConfig::default(),
            reps,
        ),
        micro_row("calls_20k_frames", CALLS_SRC, &VmConfig::default(), reps),
        micro_row(
            "sampling_1k_interval",
            DISPATCH_SRC,
            &VmConfig {
                sample_interval_cycles: 1_000,
                ..VmConfig::default()
            },
            reps,
        ),
    ];
    for row in &micro {
        println!(
            "  {:24} {:>7.2}ms vs {:>7.2}ms  ({:.2}x)",
            row.name, row.fast_ms_per_iter, row.reference_ms_per_iter, row.speedup
        );
    }

    println!("Table I suite ({reps} reps, adaptive runs, fast vs reference):");
    let table1: Vec<WorkloadRow> = TABLE1.iter().map(|w| workload_row(w, reps)).collect();
    let mut fast_secs = 0.0;
    let mut reference_secs = 0.0;
    let mut instr_total = 0.0;
    for row in &table1 {
        println!(
            "  {:12} {:>9} instrs  {:>6.2} vs {:>6.2} ns/instr  ({:.2}x, {:.0} runs/s)",
            row.workload,
            row.instructions,
            row.fast_ns_per_instr,
            row.reference_ns_per_instr,
            row.speedup,
            row.fast_runs_per_sec,
        );
        let per_run = row.instructions as f64 * reps as f64;
        fast_secs += row.fast_ns_per_instr * per_run / 1e9;
        reference_secs += row.reference_ns_per_instr * per_run / 1e9;
        instr_total += per_run;
    }
    let aggregate = Aggregate {
        fast_ns_per_instr: fast_secs * 1e9 / instr_total,
        reference_ns_per_instr: reference_secs * 1e9 / instr_total,
        speedup: reference_secs / fast_secs,
    };
    println!(
        "aggregate: {:.2} vs {:.2} ns/instr ({:.2}x)",
        aggregate.fast_ns_per_instr, aggregate.reference_ns_per_instr, aggregate.speedup
    );

    let baseline_delta = match &baseline {
        Some(prev) => {
            let delta = 100.0 * (aggregate.fast_ns_per_instr - prev.aggregate.fast_ns_per_instr)
                / prev.aggregate.fast_ns_per_instr;
            println!(
                "delta vs committed baseline ({out_path}): {delta:+.1}% ns/instr \
                 (baseline {:.2}, now {:.2})",
                prev.aggregate.fast_ns_per_instr, aggregate.fast_ns_per_instr
            );
            Some(delta)
        }
        None => {
            println!("no committed baseline at {out_path}; writing a fresh one");
            None
        }
    };
    if let Some(limit) = assert_flat {
        match baseline_delta {
            Some(delta) if delta.abs() <= limit => {
                println!("assert-flat: {delta:+.1}% is within ±{limit}%");
            }
            Some(delta) => {
                eprintln!(
                    "assert-flat FAILED: aggregate fast ns/instr moved {delta:+.1}%, \
                     outside ±{limit}%"
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("assert-flat FAILED: no committed baseline at {out_path}");
                std::process::exit(1);
            }
        }
    }

    let report = Report {
        generated_by: "cargo run --release --example perf_sweep".to_string(),
        reps,
        microbench: micro,
        table1,
        aggregate,
        notes: vec![
            "fast and reference produce bit-identical virtual-clock results; \
             wall-clock deltas are pure host-side dispatch cost (tests/interp_equiv.rs)"
                .to_string(),
            "the reference loop shares the arena-based call path, so speedups \
             understate the win over the seed interpreter's Vec-per-frame calls"
                .to_string(),
            "numbers are host-dependent; regenerate on the machine being compared".to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
