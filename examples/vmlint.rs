//! `vmlint` — whole-program static lint for evolvable-VM bytecode.
//!
//! Runs the [`evovm_bytecode::analysis`] diagnostics pass over programs
//! *as the optimizer emits them*: every program is first transformed
//! through the requested pipeline level(s) with
//! [`evolvable_vm::opt::optimize_program`] (which re-verifies every
//! function), then analyzed. Because compilation is deterministic, the
//! linted code is exactly what a VM pinned at that level executes —
//! including the superinstruction fusion pass at O1/O2, so this lint
//! gates fused output: the analyzer must classify every fused opcode
//! (see `OpClass`) and all workload×level combinations must stay clean.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example vmlint                   # all workloads × all levels
//! cargo run --release --example vmlint -- --verbose      # also print notes/profiles
//! cargo run --release --example vmlint -- file.evasm     # lint an assembly file
//! cargo run --release --example vmlint -- --level O1 file.evasm
//! ```
//!
//! Gating: `deny` findings (e.g. a loop with no exit) always fail the
//! lint. `warn` findings (unreachable code, constant branches) fail only
//! for O1/O2 output, where the optimizer is expected to have removed
//! them — our MiniJava codegen legitimately emits dead jumps at
//! Baseline/O0. `note` findings (dead functions, recursion) never fail.
//!
//! Exit status: 0 clean, 1 gating findings, 2 usage/input errors.

use std::process::ExitCode;

use evolvable_vm::bytecode::analysis::{analyze, Severity};
use evolvable_vm::bytecode::asm::parse;
use evolvable_vm::bytecode::Program;
use evolvable_vm::opt::{optimize_program, OptLevel};
use evolvable_vm::workloads;

/// The lowest severity that fails the lint for output of `level`.
fn gate_for(level: OptLevel) -> Severity {
    match level {
        OptLevel::Baseline | OptLevel::O0 => Severity::Deny,
        OptLevel::O1 | OptLevel::O2 => Severity::Warn,
    }
}

/// Lint one program at one level. Returns the number of gating findings,
/// printing each (plus non-gating ones when `verbose`).
fn lint(label: &str, program: &Program, level: OptLevel, verbose: bool) -> Result<usize, String> {
    let transformed = optimize_program(program, level)
        .map_err(|e| format!("{label}@{level}: miscompiled: {e}"))?;
    let analysis =
        analyze(&transformed).map_err(|e| format!("{label}@{level}: unverifiable: {e}"))?;
    let gate = gate_for(level);
    let mut gating = 0usize;
    for d in &analysis.diagnostics {
        let gates = d.severity >= gate;
        if gates {
            gating += 1;
        }
        if gates || verbose {
            println!("vmlint: {label}@{level}: {d}");
        }
    }
    if verbose {
        let b = analysis.bounds;
        let depth = b.call_depth.map_or("unbounded".into(), |d| d.to_string());
        let slots = b.arena_slots.map_or("unbounded".into(), |s| s.to_string());
        println!(
            "vmlint: {label}@{level}: {} function(s), call depth {depth}, arena {slots} slot(s), weighted cost {}",
            analysis.profiles.len(),
            analysis.live_weighted_cost(),
        );
    }
    Ok(gating)
}

fn run() -> Result<usize, String> {
    let mut verbose = false;
    let mut levels: Vec<OptLevel> = OptLevel::ALL.to_vec();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verbose" | "-v" => verbose = true,
            "--level" => {
                let name = args.next().ok_or("--level needs a value")?;
                let level = match name.to_ascii_lowercase().as_str() {
                    "baseline" | "-1" => OptLevel::Baseline,
                    "o0" | "0" => OptLevel::O0,
                    "o1" | "1" => OptLevel::O1,
                    "o2" | "2" => OptLevel::O2,
                    _ => {
                        return Err(format!(
                            "unknown level `{name}` (use Baseline|O0|O1|O2 or -1|0|1|2)"
                        ))
                    }
                };
                levels = vec![level];
            }
            "--help" | "-h" => {
                println!(
                    "usage: vmlint [--verbose] [--level LEVEL] [file.evasm ...]\n\
                     With no files, lints every bundled workload at every level."
                );
                return Ok(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            file => files.push(file.to_owned()),
        }
    }

    let mut targets: Vec<(String, std::sync::Arc<Program>)> = Vec::new();
    if files.is_empty() {
        for name in workloads::names() {
            let bench = workloads::by_name(name).ok_or_else(|| format!("no workload {name}"))?;
            let input = bench
                .inputs
                .first()
                .ok_or_else(|| format!("{name}: no inputs"))?;
            targets.push((name.to_owned(), std::sync::Arc::clone(&input.program)));
        }
    } else {
        for file in files {
            let src = std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
            let program = parse(&src).map_err(|e| format!("{file}: {e}"))?;
            targets.push((file, std::sync::Arc::new(program)));
        }
    }

    let mut gating = 0usize;
    let mut linted = 0usize;
    for (label, program) in &targets {
        for &level in &levels {
            gating += lint(label, program, level, verbose)?;
            linted += 1;
        }
    }
    println!(
        "vmlint: {} program-level combination(s) linted, {gating} gating finding(s)",
        linted
    );
    Ok(gating)
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(message) => {
            eprintln!("vmlint: error: {message}");
            ExitCode::from(2)
        }
    }
}
