//! Working at the bytecode layer: write a program in textual assembly,
//! inspect what each JIT level does to it, and run it.
//!
//! ```text
//! cargo run --release --example assembler
//! ```

use std::sync::Arc;

use evolvable_vm::bytecode::{asm, disasm};
use evolvable_vm::opt::{OptLevel, Optimizer};
use evolvable_vm::vm::{CostBenefitPolicy, Outcome, Vm, VmConfig};

const SOURCE: &str = "
# dot product of two generated vectors, with a deliberately foldable
# header and a dead store for the optimizer to chew on
entry func main/0 locals=3 {
  const 2
  const 3
  mul
  const 94
  add            # folds to 100
  store 0        # n = 100
  const 7
  store 2        # dead store: slot 2 is never read
  load 0
  call dot
  print
  null
  return
}

func dot/1 locals=4 {
  const 0
  store 1        # i
  const 0
  store 2        # acc
top:
  load 1
  load 0
  cmpge
  jumpif end
  load 1
  const 3
  mul            # a[i] = 3i
  load 1
  const 5
  mul            # b[i] = 5i
  add
  load 2
  add
  store 2
  load 1
  const 1
  add
  store 1
  jump top
end:
  load 2
  return
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = asm::parse(SOURCE)?;
    evolvable_vm::bytecode::verify::verify(&program)?;

    println!("--- original ---\n{}", disasm::disassemble(&program));

    let optimizer = Optimizer::new();
    for level in [OptLevel::O1, OptLevel::O2] {
        let main = program.entry();
        let compiled = optimizer.compile(&program, main, level);
        let original_len = program.function(main).code.len();
        println!(
            "--- main at O{} ({} -> {} instructions, {} compile cycles) ---",
            level.as_i8(),
            original_len,
            compiled.code.len(),
            compiled.compile_cycles
        );
        // Render the compiled body through a scratch function.
        let mut text = String::new();
        disasm::disassemble_function(
            &program,
            &evolvable_vm::bytecode::Function {
                name: format!("main@O{}", level.as_i8()),
                arity: 0,
                locals: compiled.locals,
                code: compiled.code.as_ref().clone(),
            },
            &mut text,
        );
        println!("{text}");
    }

    let mut vm = Vm::new(
        Arc::new(program),
        Box::new(CostBenefitPolicy::new()),
        VmConfig::default(),
    )?;
    match vm.run()? {
        Outcome::Finished(result) => {
            println!("--- execution ---");
            println!("output: {:?}", result.output);
            println!(
                "cycles: {} total ({} executing, {} compiling), {} recompilations",
                result.total_cycles,
                result.exec_cycles,
                result.compile_cycles,
                result.profile.recompilations.len()
            );
        }
        Outcome::FeaturesReady => unreachable!("no done instruction"),
    }
    Ok(())
}
