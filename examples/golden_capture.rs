//! Golden-record regeneration tool: prints the fixed-seed mtrt RunRecord
//! stream per scenario as Rust tuples for embedding in
//! `tests/determinism.rs`. Re-run this (and paste the output over the
//! `GOLDEN_*` consts) only when a change is *meant* to alter the
//! fixed-seed trace.

use evolvable_vm::evovm::{Campaign, CampaignConfig, Scenario};
use evolvable_vm::workloads;

fn main() {
    for scenario in [Scenario::Default, Scenario::Rep, Scenario::Evolve] {
        let bench = workloads::by_name("mtrt").expect("bundled workload");
        let outcome = Campaign::new(&bench, CampaignConfig::new(scenario).runs(12).seed(7))
            .expect("campaign")
            .run()
            .expect("runs");
        println!("// {scenario}");
        for r in &outcome.records {
            println!(
                "({}, {}, {}, {}, 0x{:016x}, 0x{:016x}, 0x{:016x}, {}, 0x{:016x}),",
                r.run_index,
                r.input_index,
                r.cycles,
                r.default_cycles,
                r.speedup.to_bits(),
                r.confidence.to_bits(),
                r.accuracy.to_bits(),
                r.predicted,
                r.overhead_fraction.to_bits()
            );
        }
    }
}
