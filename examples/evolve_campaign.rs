//! Full three-scenario comparison on one workload: Default (reactive),
//! Rep (repository-based) and Evolve (the evolvable VM).
//!
//! ```text
//! cargo run --release --example evolve_campaign [workload]
//! ```
//!
//! The optional argument is any bundled workload name
//! (`mtrt`, `compress`, `db`, `antlr`, `bloat`, `fop`, `euler`, `moldyn`,
//! `montecarlo`, `search`, `raytracer`); the default is `mtrt`.

use evolvable_vm::evovm::metrics::BoxStats;
use evolvable_vm::evovm::{Campaign, CampaignConfig, Scenario};
use evolvable_vm::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "mtrt".to_owned());
    let Some(bench) = workloads::by_name(&name) else {
        eprintln!(
            "unknown workload `{name}`; available: {}",
            workloads::names().join(", ")
        );
        std::process::exit(2);
    };
    let runs = workloads::info(&name).map_or(30, |i| i.campaign_runs);
    println!(
        "campaigning `{name}`: {} inputs, {runs} runs per scenario, same input order\n",
        bench.inputs.len()
    );

    let mut summaries = Vec::new();
    for scenario in [Scenario::Default, Scenario::Rep, Scenario::Evolve] {
        let outcome =
            Campaign::new(&bench, CampaignConfig::new(scenario).runs(runs).seed(11))?.run()?;
        let speedups = outcome.speedups();
        let stats = BoxStats::from_slice(&speedups).expect("nonempty campaign");
        summaries.push((scenario, stats, outcome));
    }

    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scenario", "min", "q25", "median", "q75", "max"
    );
    for (scenario, s, _) in &summaries {
        println!(
            "{:<10} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            scenario.to_string(),
            s.min,
            s.q25,
            s.median,
            s.q75,
            s.max
        );
    }

    let (_, _, evolve) = &summaries[2];
    println!("\nEvolve learning curve (confidence / accuracy / speedup):");
    for r in evolve
        .records
        .iter()
        .step_by(evolve.records.len().div_ceil(15).max(1))
    {
        let bar_len = ((r.confidence * 30.0) as usize).min(30);
        println!(
            "  run {:>3}  conf {:.2} |{:<30}| acc {:.2}  speedup {:.3}{}",
            r.run_index,
            r.confidence,
            "#".repeat(bar_len),
            r.accuracy,
            r.speedup,
            if r.predicted { "  *" } else { "" }
        );
    }
    println!(
        "\nmodel uses {}/{} input features; overhead stayed below {:.2}% of run time",
        evolve.used_features,
        evolve.raw_features,
        100.0
            * evolve
                .records
                .iter()
                .map(|r| r.overhead_fraction)
                .fold(0.0, f64::max)
    );
    Ok(())
}
