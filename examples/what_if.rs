//! The compilation-forking counterfactual data factory as a what-if
//! debugger: the `BENCH_fork.json` trajectory.
//!
//! Runs one Evolve campaign per Table I workload with fork capture on.
//! Every recompilation decision the live policy takes snapshots the run
//! (`RunSnapshot`); the campaign replays each snapshot under **all
//! four** optimization levels and streams the counterfactual costs.
//! This example prints those costs as a what-if table — "had the oracle
//! decided differently at this exact point, the run would have cost X" —
//! and reports how many labelled `(features, level, cost)` training
//! samples the factory mints per campaign compared to the unforked
//! pipeline's one-posterior-per-run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example what_if [-- --out BENCH_fork.json] [--runs N] [--forks K]
//! ```
//!
//! The chosen-level replay reproduces the factual run bit for bit
//! (`tests/fork_equiv.rs` proves it), so the table's deltas are exact
//! virtual-cycle counterfactuals, not estimates.

use serde::{Deserialize, Serialize};

use evolvable_vm::evovm::{
    Campaign, CampaignConfig, DefaultOracle, ForkPoint, ForkSample, RunRecord, RunSink, Scenario,
};
use evolvable_vm::learn::CostDataset;
use evolvable_vm::workloads;

/// The Table I benchmark order (kept in sync with `evovm-bench`, which
/// the façade crate deliberately does not depend on).
const TABLE1: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// Per-workload sample yield of one forked campaign.
#[derive(Debug, Serialize, Deserialize)]
struct WorkloadRow {
    workload: String,
    runs: usize,
    /// Training samples the unforked pipeline yields: one posterior
    /// ideal strategy per production run.
    unforked_samples: usize,
    fork_points: usize,
    fork_samples: usize,
    total_samples: usize,
    multiplier: f64,
}

/// Suite-wide totals.
#[derive(Debug, Serialize, Deserialize)]
struct Aggregate {
    unforked_samples: usize,
    fork_points: usize,
    fork_samples: usize,
    total_samples: usize,
    multiplier: f64,
}

/// The whole report, as committed to `BENCH_fork.json`.
#[derive(Debug, Serialize, Deserialize)]
struct Report {
    generated_by: String,
    scenario: String,
    runs: usize,
    fork_snapshots: usize,
    table1: Vec<WorkloadRow>,
    aggregate: Aggregate,
    notes: Vec<String>,
}

/// Streams the campaign while keeping every fork point (cloned before
/// handing it back for inline replay) and every counterfactual sample.
#[derive(Default)]
struct FactorySink {
    records: Vec<RunRecord>,
    points: Vec<ForkPoint>,
    samples: Vec<ForkSample>,
}

impl RunSink for FactorySink {
    fn on_record(&mut self, record: &RunRecord) {
        self.records.push(record.clone());
    }

    fn on_fork_point(&mut self, point: ForkPoint) -> Option<ForkPoint> {
        self.points.push(point.clone());
        Some(point)
    }

    fn on_fork_sample(&mut self, sample: &ForkSample) {
        self.samples.push(sample.clone());
    }
}

fn main() {
    let mut out_path = "BENCH_fork.json".to_string();
    let mut runs: usize = 4;
    let mut forks: usize = 2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--runs" => {
                runs = args
                    .next()
                    .expect("--runs needs a number")
                    .parse()
                    .expect("--runs needs a number");
            }
            "--forks" => {
                forks = args
                    .next()
                    .expect("--forks needs a number")
                    .parse()
                    .expect("--forks needs a number");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let mut table1 = Vec::new();
    let mut cost_rows = 0usize;
    let mut classification_rows = 0usize;
    println!("counterfactual data factory (Evolve, {runs} runs, {forks} fork points/run):");
    for name in TABLE1 {
        let bench = workloads::by_name(name).expect("bundled workload");
        let config = CampaignConfig::new(Scenario::Evolve)
            .runs(runs)
            .seed(7)
            .fork_snapshots(forks);
        let oracle = DefaultOracle::for_bench(&bench, config.evolve.sample_interval_cycles);
        let mut sink = FactorySink::default();
        Campaign::new(&bench, config)
            .expect("workload programs verify")
            .run_with_sink(&oracle, None, &mut sink)
            .expect("campaign runs");

        println!("\n{name}: {} fork points", sink.points.len());
        for point in &sink.points {
            println!(
                "  run {:>2}  {}  {:?} -> {:?}  (factual run: {} cycles)",
                point.run_index,
                point.method_name,
                point.from_level,
                point.decided_level,
                point.base_total_cycles,
            );
            for sample in sink
                .samples
                .iter()
                .filter(|s| s.fork_index == point.fork_index)
            {
                let delta = sample.total_cycles as i128 - sample.base_total_cycles as i128;
                println!(
                    "      what if {:>8?}: {:>12} cycles  ({:+} vs factual){}",
                    sample.level,
                    sample.total_cycles,
                    delta,
                    if sample.chosen { "  <- chosen" } else { "" },
                );
            }
        }
        // One cost dataset per workload: feature schemas are uniform
        // within a bench but differ across benches.
        let mut costs = CostDataset::new();
        for sample in &sink.samples {
            costs.push(sample.cost_sample());
        }
        cost_rows += costs.len();
        if !costs.is_empty() {
            classification_rows += costs
                .to_classification()
                .expect("fork samples form a consistent dataset")
                .len();
        }

        let fork_samples = sink.samples.len();
        let unforked = sink.records.len();
        table1.push(WorkloadRow {
            workload: name.to_string(),
            runs: sink.records.len(),
            unforked_samples: unforked,
            fork_points: sink.points.len(),
            fork_samples,
            total_samples: unforked + fork_samples,
            multiplier: (unforked + fork_samples) as f64 / unforked as f64,
        });
    }

    let unforked: usize = table1.iter().map(|r| r.unforked_samples).sum();
    let fork_points: usize = table1.iter().map(|r| r.fork_points).sum();
    let fork_samples: usize = table1.iter().map(|r| r.fork_samples).sum();
    let aggregate = Aggregate {
        unforked_samples: unforked,
        fork_points,
        fork_samples,
        total_samples: unforked + fork_samples,
        multiplier: (unforked + fork_samples) as f64 / unforked as f64,
    };
    println!(
        "\naggregate: {} unforked samples -> {} with forking ({:.2}x); \
         {} cost rows reduce to {} argmin-labelled classification rows",
        aggregate.unforked_samples,
        aggregate.total_samples,
        aggregate.multiplier,
        cost_rows,
        classification_rows,
    );
    assert!(
        aggregate.multiplier >= 3.0,
        "the factory must yield at least 3x the unforked pipeline's samples \
         (got {:.2}x)",
        aggregate.multiplier
    );

    let report = Report {
        generated_by: "cargo run --release --example what_if".to_string(),
        scenario: "Evolve".to_string(),
        runs,
        fork_snapshots: forks,
        table1,
        aggregate,
        notes: vec![
            "costs are deterministic virtual cycles; the chosen-level replay \
             reproduces the factual run bit for bit (tests/fork_equiv.rs)"
                .to_string(),
            "unforked_samples counts the legacy pipeline's yield: one posterior \
             ideal strategy per production run"
                .to_string(),
            "fork samples carry the same XICL feature vector the evolvable \
             optimizer predicts from, and reduce to argmin-labelled \
             classification rows via CostDataset::to_classification"
                .to_string(),
        ],
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write report");
    println!("wrote {out_path}");
}
