//! XICL language tour: every construct field, aliases, defaults,
//! predefined and programmer-defined extractors, operand position ranges,
//! categorical vs quantitative features, and the runtime channel.
//!
//! ```text
//! cargo run --release --example xicl_tour
//! ```

use evolvable_vm::xicl::extract::{ExtractCtx, FeatureExtractor, Registry};
use evolvable_vm::xicl::{spec, FeatureValue, RuntimeChannel, Translator, Vfs, XiclError};

/// A programmer-defined extractor: the extension of the first file named
/// on the command line (a *categorical* feature).
#[derive(Debug)]
struct MExtension;

impl FeatureExtractor for MExtension {
    fn extract(&self, raw: &str, _ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        let ext = raw.rsplit_once('.').map_or("", |(_, e)| e);
        Ok(FeatureValue::Cat(ext.to_owned()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A spec exercising every construct feature. `#` starts comments;
    // constructs may span lines.
    let converter_spec = spec::parse(
        "
# A document converter:
#   convert [-q N] [-v|--verbose] [-f FMT] INPUT... OUTPUT
option  {name=-q; type=num; attr=VAL; default=75; has_arg=y}     # quality
option  {name=-v:--verbose; type=bin; attr=VAL; default=0; has_arg=n}
option  {name=-f; type=str; attr=VAL:LEN; default=pdf; has_arg=y} # format (categorical + length)
operand {position=1:$; type=file; attr=SIZE:LINES:WORDS:mExt}     # inputs: aggregate features
operand {position=$; type=str; attr=LEN}                          # last operand: output name
",
    )?;
    println!(
        "spec declares {} raw features across {} options and {} operand groups\n",
        converter_spec.raw_feature_count(),
        converter_spec.options.len(),
        converter_spec.operands.len()
    );

    let mut registry = Registry::with_predefined();
    registry.register("mExt", MExtension);
    println!("registered extractors: {:?}\n", registry.names());
    let translator = Translator::new(converter_spec, registry);

    let mut vfs = Vfs::new();
    vfs.write("chapter1.tex", "\\section{One}\nHello world.\n");
    vfs.write(
        "chapter2.tex",
        "\\section{Two}\nMore text here, three lines.\nLast.\n",
    );
    vfs.write("book.pdf", "");

    // 1. Full command line: options by alias, multiple operands.
    let args: Vec<String> = [
        "--verbose",
        "-q",
        "90",
        "-f",
        "epub",
        "chapter1.tex",
        "chapter2.tex",
        "book.pdf",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let (fv, stats) = translator.translate(&args, &vfs)?;
    println!("convert {} =>", args.join(" "));
    for (name, value) in fv.iter() {
        let kind = match value {
            FeatureValue::Num(_) => "num",
            FeatureValue::Cat(_) => "cat",
        };
        println!("  {name:<22} = {value} ({kind})");
    }
    println!(
        "  ({} tokens scanned, {} extractions, {} work units)\n",
        stats.tokens_scanned, stats.extractions, stats.work_units
    );

    // 2. Defaults: every option absent — the vector keeps its layout.
    // (Note the `1:$` input group covers *every* operand, including the
    // output file, so the output must exist in the VFS too.)
    let (defaults, _) =
        translator.translate(&["chapter1.tex".to_owned(), "book.pdf".to_owned()], &vfs)?;
    println!("with defaults: {defaults}\n");
    assert_eq!(fv.names(), defaults.names(), "layout is input-independent");

    // 3. Errors are precise.
    for bad in [
        vec!["-x".to_owned()],
        vec!["-q".to_owned()],
        vec!["missing.tex".to_owned(), "out".to_owned()],
    ] {
        match translator.translate(&bad, &vfs) {
            Err(e) => println!("convert {:<28} => error: {e}", bad.join(" ")),
            Ok(_) => println!("convert {:<28} => ok!?", bad.join(" ")),
        }
    }

    // 4. The runtime channel: the application publishes features it
    //    computed anyway during initialization (`updateV`), then `done()`.
    let channel = RuntimeChannel::new();
    channel.update_v("pages", 412.0);
    channel.update_v("images", 17.0);
    channel.done();
    let mut merged = fv;
    channel.merge_into(&mut merged);
    println!("\nafter updateV/done the vector gains runtime features:");
    for (name, value) in merged.iter().filter(|(n, _)| n.starts_with("runtime.")) {
        println!("  {name} = {value}");
    }
    Ok(())
}
