//! The paper's Figure 2 walkthrough: the `route` shortest-path
//! application with its XICL specification, programmer-defined feature
//! extractors (`mNodes`/`mEdges`) and runtime `updateV`/`done` publishing.
//!
//! ```text
//! cargo run --release --example route
//! ```
//!
//! Reproduces the worked example of §III-A: invoking
//! `route -n 3 graph` on a 100-node/1000-edge graph yields the feature
//! vector (3, 0, 100, 1000).

use std::sync::Arc;

use evolvable_vm::evovm::{AppInput, EvolvableVm, EvolveConfig};
use evolvable_vm::minijava;
use evolvable_vm::xicl::extract::{ExtractCtx, FeatureExtractor, Registry};
use evolvable_vm::xicl::{spec, FeatureValue, Translator, Vfs, XiclError};

/// The XICL specification from Figure 2(b) of the paper, verbatim in
/// structure: two options and a FILE operand with programmer-defined
/// attributes.
const ROUTE_SPEC: &str = "
option {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=mNodes:mEdges}
";

/// `mNodes`: the node count from the graph file's header line — the
/// paper's example of a programmer-defined `XFMethod`.
#[derive(Debug)]
struct MNodes;

impl FeatureExtractor for MNodes {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        let contents = ctx
            .vfs
            .read(raw)
            .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))?;
        let nodes = contents
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().next())
            .and_then(|w| w.parse::<f64>().ok())
            .unwrap_or(0.0);
        Ok(FeatureValue::Num(nodes))
    }
}

/// `mEdges`: one edge per line after the header.
#[derive(Debug)]
struct MEdges;

impl FeatureExtractor for MEdges {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        let lines = ctx
            .vfs
            .lines(raw)
            .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))?;
        Ok(FeatureValue::Num(lines.saturating_sub(1) as f64))
    }
}

/// The route program: Bellman-Ford-style relaxation over the graph, run
/// once per requested path. The graph and parameters are baked per input
/// (the toy VM has no argv); the program publishes the node/edge counts
/// it parsed during initialization — the paper's `updateV` pattern.
fn route_source(nodes: u64, edges: u64, n_paths: u64, echo: bool, seed: u64) -> String {
    format!(
        "
fn lcg(s) {{
    return (s * 1103515245 + 12345) & 2147483647;
}}

fn parse_graph(from, to, w, edges, nodes, seed) {{
    let s = seed;
    for (let e = 0; e < edges; e = e + 1) {{
        s = lcg(s);
        from[e] = s % nodes;
        s = lcg(s);
        to[e] = s % nodes;
        s = lcg(s);
        w[e] = s % 100 + 1;
    }}
    return s;
}}

fn relax_all(dist, from, to, w, edges) {{
    let changed = 0;
    for (let e = 0; e < edges; e = e + 1) {{
        let u = from[e];
        let v = to[e];
        let cand = dist[u] + w[e];
        if (cand < dist[v]) {{
            dist[v] = cand;
            changed = changed + 1;
        }}
    }}
    return changed;
}}

fn shortest_from(src, nodes, from, to, w, edges) {{
    let dist = new [nodes];
    for (let i = 0; i < nodes; i = i + 1) {{
        dist[i] = 1000000000;
    }}
    dist[src] = 0;
    let rounds = 0;
    while (rounds < nodes) {{
        let changed = relax_all(dist, from, to, w, edges);
        rounds = rounds + 1;
        if (changed == 0) {{
            break;
        }}
    }}
    return dist[nodes - 1];
}}

fn main() {{
    let nodes = {nodes};
    let edges = {edges};
    let npaths = {n_paths};
    let echo = {echo};
    let from = new [edges];
    let to = new [edges];
    let w = new [edges];
    parse_graph(from, to, w, edges, nodes, {seed});
    // The initialization parsed the graph anyway: hand the counts to the
    // VM instead of making the XICL translator recompute them.
    publish \"nodes\", nodes;
    publish \"edges\", edges;
    done;
    for (let p = 0; p < npaths; p = p + 1) {{
        let d = shortest_from(p % nodes, nodes, from, to, w, edges);
        if (echo) {{
            print d;
        }}
    }}
    print 0;
}}
",
        echo = if echo { 1 } else { 0 }
    )
}

fn graph_file(nodes: u64, edges: u64, seed: u64) -> String {
    let mut g = format!("{nodes}\n");
    let mut s = seed;
    for _ in 0..edges {
        s = s.wrapping_mul(1103515245).wrapping_add(12345) & 0x7fff_ffff;
        g.push_str(&format!("{} {}\n", s % nodes, (s >> 7) % nodes));
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the paper's worked feature-extraction example ---
    let mut registry = Registry::with_predefined();
    registry.register("mNodes", MNodes);
    registry.register("mEdges", MEdges);
    let translator = Translator::new(spec::parse(ROUTE_SPEC)?, registry);

    let mut vfs = Vfs::new();
    vfs.write("graph", graph_file(100, 1000, 7));
    let args: Vec<String> = vec!["-n".into(), "3".into(), "graph".into()];
    let (fv, stats) = translator.translate(&args, &vfs)?;
    println!("command line: route -n 3 graph");
    println!("feature vector: {fv}");
    println!(
        "(paper: (3, 0, 100, 1000) — -n value, -e default, mNodes, mEdges)\n{} extractor calls, {} work units\n",
        stats.extractions, stats.work_units
    );

    // --- Part 2: the evolvable VM learning route across runs ---
    let mut evolvable = EvolvableVm::new(translator, EvolveConfig::default());
    let mut inputs = Vec::new();
    for (i, (nodes, edges, n_paths)) in [
        (40u64, 200u64, 2u64),
        (100, 1000, 3),
        (200, 3000, 4),
        (60, 500, 1),
        (150, 2000, 5),
    ]
    .iter()
    .enumerate()
    {
        let mut vfs = Vfs::new();
        let name = format!("graph{i}");
        vfs.write(name.clone(), graph_file(*nodes, *edges, i as u64 + 1));
        let source = route_source(*nodes, *edges, *n_paths, false, i as u64 + 1);
        inputs.push(AppInput {
            args: vec!["-n".into(), n_paths.to_string(), name],
            vfs,
            program: Arc::new(minijava::compile(&source)?),
        });
    }

    println!(
        "{:>4} {:>8} {:>9} {:>10}",
        "run", "conf", "accuracy", "predicted"
    );
    for round in 0..3 {
        for (i, input) in inputs.iter().enumerate() {
            let record = evolvable.run_once(input)?;
            println!(
                "{:>4} {:>8.3} {:>9.3} {:>10}",
                round * inputs.len() + i,
                record.confidence_after,
                record.accuracy,
                if record.predicted { "yes" } else { "-" }
            );
        }
    }
    println!(
        "\nafter {} runs the VM predicts with confidence {:.3}; runtime features\n(published at done()) appear in the model as `runtime.nodes` / `runtime.edges`.",
        evolvable.runs_observed(),
        evolvable.confidence()
    );
    Ok(())
}
