//! Smoke-drive the long-lived [`CampaignService`]: submit the Table I
//! workloads incrementally, stream per-run records as they are
//! produced, and report service throughput.
//!
//! Where `examples/evolve_campaign.rs` shows the batch engine (whole
//! session up front, block, read outcomes), this example shows the
//! service shape: campaigns are submitted one at a time while earlier
//! ones are already running, each handle streams its records live, and
//! the pool outlives every submission. The throughput summary at the
//! end (campaigns/sec, time-to-first-record queue latency) is the
//! wall-clock companion to the bit-identical determinism contract —
//! what the service buys, not just what it preserves.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example campaign_service
//! ```

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use evolvable_vm::evovm::{
    CampaignConfig, CampaignService, EvolveError, RunEvent, Scenario, ShutdownMode,
};
use evolvable_vm::workloads;

const RUNS: usize = 6;
const SEED: u64 = 11;

fn main() -> Result<(), EvolveError> {
    println!("=== campaign service: Table I under Scenario::Evolve ===");
    let service = CampaignService::builder().spawn();
    println!(
        "worker pool: {} threads, {} campaigns of {RUNS} runs each\n",
        service.worker_count(),
        workloads::names().len()
    );

    let started = Instant::now();
    let mut collectors = Vec::new();
    for name in workloads::names() {
        // Incremental submission: each workload is loaded and submitted
        // as it is "discovered" — earlier campaigns are already running
        // (and streaming) while later ones are still being prepared.
        let bench = Arc::new(workloads::by_name(name).expect("bundled workload"));
        let config = CampaignConfig::new(Scenario::Evolve)
            .runs(RUNS)
            .seed(SEED)
            .retain_records(false); // records escape through the stream
        let submitted = Instant::now();
        let handle = service.submit(bench, config)?;
        let name = name.to_string();
        collectors.push(thread::spawn(move || {
            let mut first_record: Option<Duration> = None;
            let mut speedups: Vec<f64> = Vec::new();
            loop {
                match handle.next_event() {
                    Some(RunEvent::Record(record)) => {
                        first_record.get_or_insert_with(|| submitted.elapsed());
                        println!(
                            "  {name:<12} run {:>2}: input {:>3}  speedup {:>6.3}  confidence {:.3}",
                            record.run_index, record.input_index, record.speedup, record.confidence
                        );
                        speedups.push(record.speedup);
                    }
                    Some(RunEvent::ForkSample(_)) => continue,
                    Some(RunEvent::Finished(result)) => {
                        let outcome = result.expect("campaign succeeds");
                        assert!(
                            outcome.records.is_empty(),
                            "retention is off; records arrive only via the stream"
                        );
                        break (name, speedups, first_record);
                    }
                    None => panic!("stream for {name} ended without a terminal event"),
                }
            }
        }));
    }

    let mut total_records = 0usize;
    let mut summaries = Vec::new();
    for collector in collectors {
        let (name, speedups, first_record) = collector.join().expect("collector thread");
        total_records += speedups.len();
        let mean = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
        let latency = first_record.map_or_else(
            || "(no records)".to_owned(),
            |d| format!("{:8.1} ms", d.as_secs_f64() * 1e3),
        );
        summaries.push(format!(
            "{name:<12} {:>2} records   first record after {latency}   mean speedup {mean:.3}",
            speedups.len()
        ));
    }
    let elapsed = started.elapsed();

    println!("\n--- per-campaign summary (queue latency = submit → first record) ---");
    for line in summaries {
        println!("{line}");
    }
    let campaigns = workloads::names().len();
    println!(
        "\n{campaigns} campaigns / {total_records} records in {:.2} s  =>  {:.2} campaigns/sec",
        elapsed.as_secs_f64(),
        campaigns as f64 / elapsed.as_secs_f64()
    );
    println!("service metrics: {}", service.metrics());
    service.shutdown(ShutdownMode::Drain);
    Ok(())
}
