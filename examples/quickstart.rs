//! Quickstart: run the evolvable VM on a bundled workload and watch it
//! learn across production runs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evolvable_vm::evovm::{Campaign, CampaignConfig, Scenario};
use evolvable_vm::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload: the Java Grande ray tracer analog, with its
    //    bundled XICL spec and 70 generated inputs.
    let bench = workloads::by_name("raytracer").expect("bundled workload");
    println!(
        "workload `{}` with {} inputs, {} methods per program",
        bench.name,
        bench.inputs.len(),
        bench.inputs[0].program.functions().len()
    );

    // 2. Run a 20-run campaign under the evolvable VM. Inputs arrive in
    //    seeded random order, exactly like production runs would.
    let config = CampaignConfig::new(Scenario::Evolve).runs(20).seed(7);
    let outcome = Campaign::new(&bench, config)?.run()?;

    // 3. Watch the learning: confidence rises, prediction engages, and
    //    engaged runs beat the default reactive optimizer.
    println!(
        "\n{:>4} {:>10} {:>8} {:>9} {:>9}",
        "run", "time(s)", "conf", "speedup", "predicted"
    );
    for r in &outcome.records {
        println!(
            "{:>4} {:>10.4} {:>8.3} {:>9.3} {:>9}",
            r.run_index,
            r.seconds(),
            r.confidence,
            r.speedup,
            if r.predicted { "yes" } else { "-" }
        );
    }

    let engaged: Vec<f64> = outcome
        .records
        .iter()
        .filter(|r| r.predicted)
        .map(|r| r.speedup)
        .collect();
    println!(
        "\nmean speedup once the VM predicts: {:.3}x over the default reactive optimizer",
        evolvable_vm::evovm::metrics::mean(&engaged)
    );
    Ok(())
}
