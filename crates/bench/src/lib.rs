//! Shared harness utilities for the paper-reproduction bench targets.
//!
//! Each `benches/*.rs` target regenerates one table or figure of
//! Mao & Shen (CGO 2009); this library centralizes campaign running and
//! table formatting so the targets stay declarative.

use evovm::{
    Bench, CampaignConfig, CampaignEngine, CampaignOutcome, CampaignSpec, EvolveConfig, Scenario,
};
use evovm_workloads as workloads;

/// One campaign of a paper-figure session: a (workload × scenario ×
/// seed) cell.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Workload name (as accepted by `evovm_workloads::by_name`).
    pub workload: String,
    /// The scenario to run.
    pub scenario: Scenario,
    /// Number of production runs.
    pub runs: usize,
    /// Input-arrival seed.
    pub seed: u64,
    /// Evolvable-VM parameters.
    pub evolve: EvolveConfig,
}

impl SessionRequest {
    /// A request with the default [`EvolveConfig`].
    pub fn new(workload: &str, scenario: Scenario, runs: usize, seed: u64) -> SessionRequest {
        SessionRequest {
            workload: workload.to_owned(),
            scenario,
            runs,
            seed,
            evolve: EvolveConfig::default(),
        }
    }

    /// Override the evolvable-VM parameters.
    pub fn evolve(mut self, evolve: EvolveConfig) -> SessionRequest {
        self.evolve = evolve;
        self
    }
}

/// Run a batch of campaigns through the parallel [`CampaignEngine`],
/// returning outcomes in request order. Campaigns on the same workload
/// share one loaded [`Bench`] — and therefore one memoized default-run
/// oracle, so each (input, sampling-interval) baseline executes once per
/// session no matter how many scenarios and seeds consume it.
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn session(requests: &[SessionRequest]) -> Vec<CampaignOutcome> {
    let mut names: Vec<&str> = Vec::new();
    for request in requests {
        if !names.contains(&request.workload.as_str()) {
            names.push(&request.workload);
        }
    }
    let benches: Vec<Bench> = names
        .iter()
        .map(|name| workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload `{name}`")))
        .collect();
    let specs: Vec<CampaignSpec<'_>> = requests
        .iter()
        .map(|request| {
            let bench_index = names
                .iter()
                .position(|n| *n == request.workload)
                .expect("interned above");
            CampaignSpec::new(
                &benches[bench_index],
                CampaignConfig::new(request.scenario)
                    .runs(request.runs)
                    .seed(request.seed)
                    .evolve(request.evolve),
            )
        })
        .collect();
    CampaignEngine::new()
        .run(&specs)
        .into_iter()
        .zip(requests)
        .map(|(result, request)| {
            result.unwrap_or_else(|e| panic!("campaign failed for {}: {e}", request.workload))
        })
        .collect()
}

/// Run one scenario campaign over a named workload (a session of one).
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn campaign(
    name: &str,
    scenario: Scenario,
    runs: usize,
    seed: u64,
    evolve: EvolveConfig,
) -> CampaignOutcome {
    session(&[SessionRequest::new(name, scenario, runs, seed).evolve(evolve)])
        .pop()
        .expect("one request yields one outcome")
}

/// The paper-style campaign length for a workload (70 for input-rich
/// programs, 30 otherwise).
pub fn paper_runs(name: &str) -> usize {
    workloads::info(name).map_or(30, |i| i.campaign_runs)
}

/// The Table I benchmark order.
pub const TABLE1_ORDER: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// Print a banner for a bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("(reproduces {paper_ref} of Mao & Shen, CGO 2009)\n");
}

/// Format a speedup distribution as the paper's boxplot five numbers.
pub fn box_row(label: &str, speedups: &[f64]) -> String {
    match evovm::metrics::BoxStats::from_slice(speedups) {
        Some(s) => format!(
            "{label:<22} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            s.min, s.q25, s.median, s.q75, s.max
        ),
        None => format!("{label:<22} (no data)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_runs_distinguishes_rich_input_sets() {
        assert_eq!(paper_runs("mtrt"), 70);
        assert_eq!(paper_runs("fop"), 30);
        assert_eq!(paper_runs("nonexistent"), 30);
    }

    #[test]
    fn box_row_formats() {
        let row = box_row("x", &[1.0, 2.0, 3.0]);
        assert!(row.contains("1.000"));
        assert!(row.contains("3.000"));
        assert!(box_row("y", &[]).contains("no data"));
    }

    #[test]
    fn tiny_campaign_smoke() {
        let out = campaign("search", Scenario::Default, 3, 1, EvolveConfig::default());
        assert_eq!(out.records.len(), 3);
    }

    #[test]
    fn session_preserves_request_order_and_shares_benches() {
        let requests = [
            SessionRequest::new("search", Scenario::Rep, 3, 1),
            SessionRequest::new("montecarlo", Scenario::Default, 2, 1),
            SessionRequest::new("search", Scenario::Default, 3, 1),
        ];
        let outcomes = session(&requests);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].scenario, Scenario::Rep);
        assert_eq!(outcomes[1].scenario, Scenario::Default);
        assert_eq!(outcomes[2].scenario, Scenario::Default);
        assert_eq!(outcomes[1].records.len(), 2);
        // Same workload + seed ⇒ same arrival order regardless of
        // scenario or engine scheduling.
        for (a, b) in outcomes[0].records.iter().zip(&outcomes[2].records) {
            assert_eq!(a.input_index, b.input_index);
        }
    }
}
