//! Shared harness utilities for the paper-reproduction bench targets.
//!
//! Each `benches/*.rs` target regenerates one table or figure of
//! Mao & Shen (CGO 2009); this library centralizes campaign running and
//! table formatting so the targets stay declarative.

use std::sync::Arc;

use evovm::{
    Bench, CampaignConfig, CampaignOutcome, CampaignService, EvolveConfig, ModelStore, RunEvent,
    RunRecord, Scenario, ShutdownMode,
};
use evovm_workloads as workloads;

/// One campaign of a paper-figure session: a (workload × scenario ×
/// seed) cell.
#[derive(Debug, Clone)]
pub struct SessionRequest {
    /// Workload name (as accepted by `evovm_workloads::by_name`).
    pub workload: String,
    /// The scenario to run.
    pub scenario: Scenario,
    /// Number of production runs.
    pub runs: usize,
    /// Input-arrival seed.
    pub seed: u64,
    /// Evolvable-VM parameters.
    pub evolve: EvolveConfig,
    /// Key under which learned state is restored/persisted when the
    /// session runs against a [`ModelStore`] (see [`session_with_store`]).
    pub model_key: Option<String>,
}

impl SessionRequest {
    /// A request with the default [`EvolveConfig`].
    pub fn new(workload: &str, scenario: Scenario, runs: usize, seed: u64) -> SessionRequest {
        SessionRequest {
            workload: workload.to_owned(),
            scenario,
            runs,
            seed,
            evolve: EvolveConfig::default(),
            model_key: None,
        }
    }

    /// Override the evolvable-VM parameters.
    pub fn evolve(mut self, evolve: EvolveConfig) -> SessionRequest {
        self.evolve = evolve;
        self
    }

    /// Set the model-store key for cross-session state persistence.
    pub fn model_key(mut self, key: impl Into<String>) -> SessionRequest {
        self.model_key = Some(key.into());
        self
    }
}

/// Run a batch of campaigns through a [`CampaignService`] worker pool,
/// returning outcomes in request order. Campaigns on the same workload
/// share one loaded [`Bench`] — and therefore one memoized default-run
/// oracle, so each (input, sampling-interval) baseline executes once per
/// session no matter how many scenarios and seeds consume it.
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn session(requests: &[SessionRequest]) -> Vec<CampaignOutcome> {
    run_requests(requests, None, |_, _| {})
}

/// Like [`session`], but campaigns whose request names a `model_key`
/// restore learned state from `store` before running and persist it
/// after — the cross-engine-session persistence path (e.g. over a
/// [`ShardedStore`](evovm::ShardedStore) shared between drivers).
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn session_with_store(
    requests: &[SessionRequest],
    store: Arc<dyn ModelStore>,
) -> Vec<CampaignOutcome> {
    run_requests(requests, Some(store), |_, _| {})
}

/// Like [`session_with_store`] (pass `None` for no persistence), but
/// streams per-run records through `on_record(request_index, record)`
/// while campaigns execute, instead of only returning finished
/// outcomes. Handles are drained in request order, so records arrive
/// grouped by request — within a request they stream in run order as
/// the campaign produces them.
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn session_streamed(
    requests: &[SessionRequest],
    store: Option<Arc<dyn ModelStore>>,
    on_record: impl FnMut(usize, &RunRecord),
) -> Vec<CampaignOutcome> {
    run_requests(requests, store, on_record)
}

fn run_requests(
    requests: &[SessionRequest],
    store: Option<Arc<dyn ModelStore>>,
    mut on_record: impl FnMut(usize, &RunRecord),
) -> Vec<CampaignOutcome> {
    // One loaded bench per distinct workload name, shared by reference
    // with the service (no per-request reload or copy).
    let mut names: Vec<&str> = Vec::new();
    for request in requests {
        if !names.contains(&request.workload.as_str()) {
            names.push(&request.workload);
        }
    }
    let benches: Vec<Arc<Bench>> = names
        .iter()
        .map(|name| {
            workloads::by_name(name)
                .map(Arc::new)
                .unwrap_or_else(|| panic!("unknown workload `{name}`"))
        })
        .collect();

    let mut builder = CampaignService::builder().queue_bound(requests.len().max(1));
    if let Some(store) = store {
        builder = builder.store(store);
    }
    let service = builder.spawn();
    let handles: Vec<_> = requests
        .iter()
        .map(|request| {
            let bench_index = names
                .iter()
                .position(|n| *n == request.workload)
                .expect("interned above");
            let mut config = CampaignConfig::new(request.scenario)
                .runs(request.runs)
                .seed(request.seed)
                .evolve(request.evolve);
            if let Some(key) = &request.model_key {
                config = config.model_key(key.clone());
            }
            service
                .submit(Arc::clone(&benches[bench_index]), config)
                .expect("a fresh service accepts submissions")
        })
        .collect();

    let outcomes = handles
        .into_iter()
        .zip(requests)
        .enumerate()
        .map(|(index, (handle, request))| loop {
            match handle.next_event() {
                Some(RunEvent::Record(record)) => on_record(index, &record),
                Some(RunEvent::ForkSample(_)) => continue,
                Some(RunEvent::Finished(result)) => {
                    break result.unwrap_or_else(|e| {
                        panic!("campaign failed for {}: {e}", request.workload)
                    });
                }
                None => panic!("campaign stream for {} ended early", request.workload),
            }
        })
        .collect();
    service.shutdown(ShutdownMode::Drain);
    outcomes
}

/// Run one scenario campaign over a named workload (a session of one).
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn campaign(
    name: &str,
    scenario: Scenario,
    runs: usize,
    seed: u64,
    evolve: EvolveConfig,
) -> CampaignOutcome {
    session(&[SessionRequest::new(name, scenario, runs, seed).evolve(evolve)])
        .pop()
        .expect("one request yields one outcome")
}

/// The paper-style campaign length for a workload (70 for input-rich
/// programs, 30 otherwise).
pub fn paper_runs(name: &str) -> usize {
    workloads::info(name).map_or(30, |i| i.campaign_runs)
}

/// The Table I benchmark order.
pub const TABLE1_ORDER: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// Print a banner for a bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("(reproduces {paper_ref} of Mao & Shen, CGO 2009)\n");
}

/// Format a speedup distribution as the paper's boxplot five numbers.
pub fn box_row(label: &str, speedups: &[f64]) -> String {
    match evovm::metrics::BoxStats::from_slice(speedups) {
        Some(s) => format!(
            "{label:<22} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            s.min, s.q25, s.median, s.q75, s.max
        ),
        None => format!("{label:<22} (no data)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_runs_distinguishes_rich_input_sets() {
        assert_eq!(paper_runs("mtrt"), 70);
        assert_eq!(paper_runs("fop"), 30);
        assert_eq!(paper_runs("nonexistent"), 30);
    }

    #[test]
    fn box_row_formats() {
        let row = box_row("x", &[1.0, 2.0, 3.0]);
        assert!(row.contains("1.000"));
        assert!(row.contains("3.000"));
        assert!(box_row("y", &[]).contains("no data"));
    }

    #[test]
    fn tiny_campaign_smoke() {
        let out = campaign("search", Scenario::Default, 3, 1, EvolveConfig::default());
        assert_eq!(out.records.len(), 3);
    }

    #[test]
    fn session_with_store_persists_learned_state() {
        use evovm::MemoryStore;
        let store = Arc::new(MemoryStore::new());
        let requests = [
            SessionRequest::new("search", Scenario::Evolve, 3, 1).model_key("search/evolve"),
            SessionRequest::new("search", Scenario::Default, 2, 1),
        ];
        let outcomes = session_with_store(&requests, store.clone());
        assert_eq!(outcomes.len(), 2);
        assert!(
            store.load("search/evolve").is_some(),
            "keyed campaign persists its state"
        );
        assert_eq!(store.len(), 1, "unkeyed campaign persists nothing");
    }

    #[test]
    fn session_streamed_delivers_every_record_in_run_order() {
        let requests = [
            SessionRequest::new("search", Scenario::Default, 3, 1),
            SessionRequest::new("search", Scenario::Rep, 2, 1),
        ];
        let mut seen: Vec<(usize, usize)> = Vec::new();
        let outcomes = session_streamed(&requests, None, |request_index, record| {
            seen.push((request_index, record.run_index));
        });
        assert_eq!(
            seen,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)],
            "records stream grouped by request, in run order"
        );
        assert_eq!(outcomes[0].records.len(), 3);
        assert_eq!(outcomes[1].records.len(), 2);
    }

    #[test]
    fn session_preserves_request_order_and_shares_benches() {
        let requests = [
            SessionRequest::new("search", Scenario::Rep, 3, 1),
            SessionRequest::new("montecarlo", Scenario::Default, 2, 1),
            SessionRequest::new("search", Scenario::Default, 3, 1),
        ];
        let outcomes = session(&requests);
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].scenario, Scenario::Rep);
        assert_eq!(outcomes[1].scenario, Scenario::Default);
        assert_eq!(outcomes[2].scenario, Scenario::Default);
        assert_eq!(outcomes[1].records.len(), 2);
        // Same workload + seed ⇒ same arrival order regardless of
        // scenario or engine scheduling.
        for (a, b) in outcomes[0].records.iter().zip(&outcomes[2].records) {
            assert_eq!(a.input_index, b.input_index);
        }
    }
}
