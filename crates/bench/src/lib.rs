//! Shared harness utilities for the paper-reproduction bench targets.
//!
//! Each `benches/*.rs` target regenerates one table or figure of
//! Mao & Shen (CGO 2009); this library centralizes campaign running and
//! table formatting so the targets stay declarative.

use evovm::{Campaign, CampaignConfig, CampaignOutcome, EvolveConfig, Scenario};
use evovm_workloads as workloads;

/// Run one scenario campaign over a named workload.
///
/// # Panics
///
/// Panics on unknown workloads or failed runs — bench targets want loud
/// failures, not skipped rows.
pub fn campaign(
    name: &str,
    scenario: Scenario,
    runs: usize,
    seed: u64,
    evolve: EvolveConfig,
) -> CampaignOutcome {
    let bench = workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload `{name}`"));
    Campaign::new(
        &bench,
        CampaignConfig::new(scenario).runs(runs).seed(seed).evolve(evolve),
    )
    .unwrap_or_else(|e| panic!("campaign setup failed for {name}: {e}"))
    .run()
    .unwrap_or_else(|e| panic!("campaign failed for {name}: {e}"))
}

/// The paper-style campaign length for a workload (70 for input-rich
/// programs, 30 otherwise).
pub fn paper_runs(name: &str) -> usize {
    workloads::info(name).map_or(30, |i| i.campaign_runs)
}

/// The Table I benchmark order.
pub const TABLE1_ORDER: [&str; 11] = [
    "mtrt",
    "compress",
    "db",
    "antlr",
    "bloat",
    "fop",
    "euler",
    "moldyn",
    "montecarlo",
    "search",
    "raytracer",
];

/// Print a banner for a bench target.
pub fn banner(title: &str, paper_ref: &str) {
    println!("\n=== {title} ===");
    println!("(reproduces {paper_ref} of Mao & Shen, CGO 2009)\n");
}

/// Format a speedup distribution as the paper's boxplot five numbers.
pub fn box_row(label: &str, speedups: &[f64]) -> String {
    match evovm::metrics::BoxStats::from_slice(speedups) {
        Some(s) => format!(
            "{label:<22} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
            s.min, s.q25, s.median, s.q75, s.max
        ),
        None => format!("{label:<22} (no data)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_runs_distinguishes_rich_input_sets() {
        assert_eq!(paper_runs("mtrt"), 70);
        assert_eq!(paper_runs("fop"), 30);
        assert_eq!(paper_runs("nonexistent"), 30);
    }

    #[test]
    fn box_row_formats() {
        let row = box_row("x", &[1.0, 2.0, 3.0]);
        assert!(row.contains("1.000"));
        assert!(row.contains("3.000"));
        assert!(box_row("y", &[]).contains("no data"));
    }

    #[test]
    fn tiny_campaign_smoke() {
        let out = campaign(
            "search",
            Scenario::Default,
            3,
            1,
            EvolveConfig::default(),
        );
        assert_eq!(out.records.len(), 3);
    }
}
