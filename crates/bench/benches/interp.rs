#![allow(missing_docs)] // criterion_group! expands undocumented items

//! Dispatch microbenchmarks for the interpreter hot-path overhaul.
//!
//! Every `*_fast` / `*_reference` pair runs the *same* program under the
//! two dispatch loops ([`InterpMode::Fast`] vs [`InterpMode::Reference`]):
//! identical virtual-clock results (the equivalence suite proves it), so
//! any wall-clock difference is pure host-side dispatch cost. The
//! `BENCH_interp.json` trajectory is produced by `examples/perf_sweep.rs`;
//! these targets are the interactive view of the same comparison.
//!
//! Three shapes:
//!
//! - **dispatch** — a tight arithmetic loop: the per-instruction path
//!   (fuel accounting + cost-table load vs division/Option/multiply).
//! - **calls** — a call-dominated loop: the frame arena vs per-call
//!   bookkeeping (note the reference loop shares the arena, so this
//!   understates the win over the old Vec-per-frame interpreter).
//! - **sampling** — a short sample interval: event-window slow path.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use evovm_bytecode::asm::parse;
use evovm_bytecode::Program;
use evovm_vm::{BaselineOnlyPolicy, InterpMode, Outcome, Vm, VmConfig};

/// A dispatch-heavy program: 40k iterations of pure loop arithmetic.
fn dispatch_program() -> Arc<Program> {
    let src = "
entry func main/0 locals=2 {
  const 0
  store 0
  const 0
  store 1
top:
  load 0
  const 40000
  icmpge
  jumpif end
  load 1
  load 0
  const 2654435761
  imul
  const 1048575
  band
  iadd
  store 1
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  load 1
  print
  null
  return
}";
    Arc::new(parse(src).expect("valid asm"))
}

/// A call-dominated program: 20k calls through a tiny helper.
fn call_program() -> Arc<Program> {
    let src = "
entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 20000
  icmpge
  jumpif end
  load 0
  call mix
  pop
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func mix/1 locals=2 {
  load 0
  const 2654435761
  imul
  store 1
  load 1
  load 0
  iadd
  return
}";
    Arc::new(parse(src).expect("valid asm"))
}

fn run_under(program: &Arc<Program>, config: &VmConfig) -> u64 {
    let mut vm = Vm::new(
        Arc::clone(program),
        Box::new(BaselineOnlyPolicy),
        config.clone(),
    )
    .expect("verified");
    match vm.run().expect("runs") {
        Outcome::Finished(r) => r.instructions,
        Outcome::FeaturesReady => unreachable!("no done instruction"),
    }
}

fn bench_pair(c: &mut Criterion, name: &str, program: &Arc<Program>, config: VmConfig) {
    for mode in [InterpMode::Fast, InterpMode::Reference] {
        let suffix = match mode {
            InterpMode::Fast => "fast",
            InterpMode::Reference => "reference",
        };
        let config = VmConfig {
            interp: mode,
            ..config.clone()
        };
        c.bench_function(&format!("{name}_{suffix}"), |b| {
            b.iter_batched(
                || (),
                |()| run_under(program, &config),
                BatchSize::SmallInput,
            );
        });
    }
}

fn bench_dispatch(c: &mut Criterion) {
    bench_pair(
        c,
        "dispatch_40k_loop",
        &dispatch_program(),
        VmConfig::default(),
    );
}

fn bench_calls(c: &mut Criterion) {
    bench_pair(c, "calls_20k_frames", &call_program(), VmConfig::default());
}

fn bench_sampling(c: &mut Criterion) {
    // A 1k-cycle interval makes event windows ~80 instructions long, so
    // the slow path runs constantly — the worst case for fuel accounting.
    bench_pair(
        c,
        "sampling_1k_interval",
        &dispatch_program(),
        VmConfig {
            sample_interval_cycles: 1_000,
            ..VmConfig::default()
        },
    );
}

criterion_group!(benches, bench_dispatch, bench_calls, bench_sampling);
criterion_main!(benches);
