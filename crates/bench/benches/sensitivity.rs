//! §V-B.3 sensitivity studies:
//!
//! 1. **Confidence threshold** — raising `TH_c` from 0.7 to 0.9 makes
//!    Evolve more conservative: the maximum speedup shrinks and the
//!    minimum improves (paper: Mtrt max 1.8→1.4, worst case −10%→0%).
//! 2. **Input order** — shuffling the arrival order barely moves Evolve
//!    (discriminative prediction suppresses immature predictions) but
//!    shifts Rep's worst case noticeably (paper: RayTracer −5% for Rep,
//!    no visible change for Evolve).

use evovm::metrics::BoxStats;
use evovm::{EvolveConfig, Scenario};
use evovm_bench::{banner, campaign, paper_runs};

fn main() {
    banner("Sensitivity — thresholds and input order", "Section V-B.3");

    // Part 1: confidence threshold sweep. Compress is the benchmark whose
    // confidence genuinely oscillates around the threshold (100 distinct
    // inputs, boundary-heavy labels), so TH_c binds there; on mtrt the
    // models are accurate enough that any threshold ≤0.9 behaves alike.
    for name in ["compress", "mtrt"] {
        println!("--- confidence threshold ({name}) ---");
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>10}",
            "TH_c", "min", "median", "max", "predicted"
        );
        for th in [0.5, 0.7, 0.9] {
            let cfg = EvolveConfig::default().with_threshold(th);
            let outcome = campaign(name, Scenario::Evolve, paper_runs(name), 1, cfg);
            let s = BoxStats::from_slice(&outcome.speedups()).expect("nonempty");
            let predicted = outcome.records.iter().filter(|r| r.predicted).count();
            println!(
                "{th:>6.1} {:>9.3} {:>9.3} {:>9.3} {predicted:>7}/{}",
                s.min,
                s.median,
                s.max,
                outcome.records.len()
            );
        }
        println!("(expect: higher TH_c -> fewer predictions, smaller max, safer min)\n");
    }

    // Part 2: input-order sensitivity on RayTracer.
    println!("--- input order (raytracer): worst-case speedup across orders ---");
    println!("{:>6} {:>14} {:>11}", "order", "evolve-min", "rep-min");
    let mut evolve_mins = Vec::new();
    let mut rep_mins = Vec::new();
    for seed in [1u64, 7, 23] {
        let runs = paper_runs("raytracer");
        let evolve = campaign(
            "raytracer",
            Scenario::Evolve,
            runs,
            seed,
            EvolveConfig::default(),
        );
        let rep = campaign(
            "raytracer",
            Scenario::Rep,
            runs,
            seed,
            EvolveConfig::default(),
        );
        let emin = BoxStats::from_slice(&evolve.speedups()).expect("nonempty").min;
        let rmin = BoxStats::from_slice(&rep.speedups()).expect("nonempty").min;
        println!("{seed:>6} {emin:>14.3} {rmin:>11.3}");
        evolve_mins.push(emin);
        rep_mins.push(rmin);
    }
    let spread = |v: &[f64]| {
        v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().copied().fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nworst-case spread across orders: Evolve {:.3} vs Rep {:.3} (expect Rep > Evolve)",
        spread(&evolve_mins),
        spread(&rep_mins)
    );
}
