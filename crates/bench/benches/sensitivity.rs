//! §V-B.3 sensitivity studies:
//!
//! 1. **Confidence threshold** — raising `TH_c` from 0.7 to 0.9 makes
//!    Evolve more conservative: the maximum speedup shrinks and the
//!    minimum improves (paper: Mtrt max 1.8→1.4, worst case −10%→0%).
//! 2. **Input order** — shuffling the arrival order barely moves Evolve
//!    (discriminative prediction suppresses immature predictions) but
//!    shifts Rep's worst case noticeably (paper: RayTracer −5% for Rep,
//!    no visible change for Evolve).

use evovm::metrics::BoxStats;
use evovm::{EvolveConfig, Scenario};
use evovm_bench::{banner, paper_runs, session, SessionRequest};

const THRESHOLDS: [f64; 3] = [0.5, 0.7, 0.9];
const ORDER_SEEDS: [u64; 3] = [1, 7, 23];

fn main() {
    banner("Sensitivity — thresholds and input order", "Section V-B.3");

    // Part 1: confidence threshold sweep. Compress is the benchmark whose
    // confidence genuinely oscillates around the threshold (100 distinct
    // inputs, boundary-heavy labels), so TH_c binds there; on mtrt the
    // models are accurate enough that any threshold ≤0.9 behaves alike.
    // The sweep shares each benchmark's default runs across thresholds.
    let names = ["compress", "mtrt"];
    let requests: Vec<SessionRequest> = names
        .iter()
        .flat_map(|name| {
            THRESHOLDS.map(|th| {
                SessionRequest::new(name, Scenario::Evolve, paper_runs(name), 1)
                    .evolve(EvolveConfig::default().with_threshold(th))
            })
        })
        .collect();
    let outcomes = session(&requests);
    for (name, sweep) in names.iter().zip(outcomes.chunks_exact(THRESHOLDS.len())) {
        println!("--- confidence threshold ({name}) ---");
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>10}",
            "TH_c", "min", "median", "max", "predicted"
        );
        for (th, outcome) in THRESHOLDS.iter().zip(sweep) {
            let s = BoxStats::from_slice(&outcome.speedups()).expect("nonempty");
            let predicted = outcome.records.iter().filter(|r| r.predicted).count();
            println!(
                "{th:>6.1} {:>9.3} {:>9.3} {:>9.3} {predicted:>7}/{}",
                s.min,
                s.median,
                s.max,
                outcome.records.len()
            );
        }
        println!("(expect: higher TH_c -> fewer predictions, smaller max, safer min)\n");
    }

    // Part 2: input-order sensitivity on RayTracer — six campaigns, one
    // shared oracle (the arrival order changes, the input set does not).
    println!("--- input order (raytracer): worst-case speedup across orders ---");
    println!("{:>6} {:>14} {:>11}", "order", "evolve-min", "rep-min");
    let runs = paper_runs("raytracer");
    let requests: Vec<SessionRequest> = ORDER_SEEDS
        .iter()
        .flat_map(|&seed| {
            [Scenario::Evolve, Scenario::Rep]
                .map(|scenario| SessionRequest::new("raytracer", scenario, runs, seed))
        })
        .collect();
    let outcomes = session(&requests);
    let mut evolve_mins = Vec::new();
    let mut rep_mins = Vec::new();
    for (seed, pair) in ORDER_SEEDS.iter().zip(outcomes.chunks_exact(2)) {
        let emin = BoxStats::from_slice(&pair[0].speedups())
            .expect("nonempty")
            .min;
        let rmin = BoxStats::from_slice(&pair[1].speedups())
            .expect("nonempty")
            .min;
        println!("{seed:>6} {emin:>14.3} {rmin:>11.3}");
        evolve_mins.push(emin);
        rep_mins.push(rmin);
    }
    let spread = |v: &[f64]| {
        v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().copied().fold(f64::INFINITY, f64::min)
    };
    println!(
        "\nworst-case spread across orders: Evolve {:.3} vs Rep {:.3} (expect Rep > Evolve)",
        spread(&evolve_mins),
        spread(&rep_mins)
    );
}
