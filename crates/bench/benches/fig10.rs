//! Figure 10: boxplots of the speedups of Evolve and Rep (normalized to
//! the default VM) across all eleven benchmarks.
//!
//! Expected shape: the input-sensitive group (Mtrt, Compress, Euler,
//! MolDyn, RayTracer) shows clearly higher medians under Evolve than Rep;
//! Evolve's minimums are at least as good as Rep's on most programs
//! (discriminative prediction suppresses harmful early predictions);
//! overall means land in the paper's 7–21% range.

use evovm::Scenario;
use evovm_bench::{banner, box_row, paper_runs, session, SessionRequest, TABLE1_ORDER};

const INPUT_SENSITIVE: [&str; 5] = ["mtrt", "compress", "euler", "moldyn", "raytracer"];

fn main() {
    banner(
        "Figure 10 — speedup distributions, Evolve vs Rep",
        "Figure 10",
    );
    println!(
        "{:<22} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark/system", "min", "q25", "median", "q75", "max"
    );
    // 22 campaigns (Evolve + Rep per benchmark), one parallel session;
    // each benchmark's two campaigns share the memoized default runs.
    let seed = 1;
    let requests: Vec<SessionRequest> = TABLE1_ORDER
        .iter()
        .flat_map(|name| {
            [Scenario::Evolve, Scenario::Rep]
                .map(|scenario| SessionRequest::new(name, scenario, paper_runs(name), seed))
        })
        .collect();
    let outcomes = session(&requests);
    let mut evolve_means = Vec::new();
    let mut sensitive_evolve = Vec::new();
    let mut sensitive_rep = Vec::new();
    let mut min_wins = 0usize;
    for (name, pair) in TABLE1_ORDER.iter().zip(outcomes.chunks_exact(2)) {
        let es = pair[0].speedups();
        let rs = pair[1].speedups();
        println!("{}", box_row(&format!("{name} (Evolve)"), &es));
        println!("{}", box_row(&format!("{name} (Rep)"), &rs));
        let eb = evovm::metrics::BoxStats::from_slice(&es).expect("nonempty");
        let rb = evovm::metrics::BoxStats::from_slice(&rs).expect("nonempty");
        evolve_means.push(evovm::metrics::mean(&es));
        // 1% tolerance: sub-percent differences are feature-extraction
        // overhead noise, not optimization decisions.
        if eb.min >= rb.min - 0.01 {
            min_wins += 1;
        }
        if INPUT_SENSITIVE.contains(name) {
            sensitive_evolve.push(eb.median);
            sensitive_rep.push(rb.median);
        }
    }
    println!("\nsummary:");
    println!(
        "  mean Evolve speedup across programs: {:.1}% (paper: 7-21%)",
        100.0 * (evovm::metrics::mean(&evolve_means) - 1.0)
    );
    println!(
        "  input-sensitive group median speedup: Evolve {:.1}% vs Rep {:.1}% (paper: Evolve ~10% over Rep)",
        100.0 * (evovm::metrics::mean(&sensitive_evolve) - 1.0),
        100.0 * (evovm::metrics::mean(&sensitive_rep) - 1.0)
    );
    println!("  programs where Evolve's minimum speedup >= Rep's: {min_wins}/11 (paper: 9/11)");
}
