//! Table I: per-benchmark inputs, running-time ranges, feature counts and
//! Evolve's confidence/accuracy.
//!
//! Paper reference values: 11 programs, running times spanning roughly
//! 0.1–100 s per program, raw features mostly 2–8 with 1–4 used, mean
//! confidence/accuracy around 0.7–0.9 (87% mean accuracy overall).

use evovm::Scenario;
use evovm_bench::{banner, paper_runs, session, SessionRequest, TABLE1_ORDER};

fn main() {
    banner(
        "Table I — benchmark characteristics and prediction quality",
        "Table I",
    );
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "program", "#inputs", "min(s)", "max(s)", "features", "used", "conf", "acc"
    );
    // All eleven Evolve campaigns fan out across the engine's workers.
    let requests: Vec<SessionRequest> = TABLE1_ORDER
        .iter()
        .map(|name| SessionRequest::new(name, Scenario::Evolve, paper_runs(name), 1))
        .collect();
    let outcomes = session(&requests);
    let mut accs = Vec::new();
    for (name, outcome) in TABLE1_ORDER.iter().zip(&outcomes) {
        let n_inputs = outcome.default_seconds_per_input.len();
        let (min_s, max_s) = outcome.default_time_range().unwrap_or((0.0, 0.0));
        // Mean confidence/accuracy over the second half of the campaign
        // (the paper reports steady-state values).
        let half = outcome.records.len() / 2;
        let conf = evovm::metrics::mean(
            &outcome.records[half..]
                .iter()
                .map(|r| r.confidence)
                .collect::<Vec<_>>(),
        );
        let acc = evovm::metrics::mean(
            &outcome.records[half..]
                .iter()
                .map(|r| r.accuracy)
                .collect::<Vec<_>>(),
        );
        accs.push(acc);
        println!(
            "{:<12} {:>7} {:>9.3} {:>9.3} {:>9} {:>7} {:>7.2} {:>7.2}",
            name, n_inputs, min_s, max_s, outcome.raw_features, outcome.used_features, conf, acc
        );
    }
    println!(
        "\nmean prediction accuracy: {:.1}% (paper: 87%)",
        100.0 * evovm::metrics::mean(&accs)
    );
}
