//! Table I: per-benchmark inputs, running-time ranges, feature counts and
//! Evolve's confidence/accuracy.
//!
//! Paper reference values: 11 programs, running times spanning roughly
//! 0.1–100 s per program, raw features mostly 2–8 with 1–4 used, mean
//! confidence/accuracy around 0.7–0.9 (87% mean accuracy overall).

use evovm::{EvolveConfig, Scenario};
use evovm_bench::{banner, campaign, paper_runs, TABLE1_ORDER};
use evovm_workloads as workloads;

fn main() {
    banner(
        "Table I — benchmark characteristics and prediction quality",
        "Table I",
    );
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "program", "#inputs", "min(s)", "max(s)", "features", "used", "conf", "acc"
    );
    let mut accs = Vec::new();
    for name in TABLE1_ORDER {
        let bench = workloads::by_name(name).expect("bundled workload");
        let n_inputs = bench.inputs.len();
        let runs = paper_runs(name);
        let outcome = campaign(name, Scenario::Evolve, runs, 1, EvolveConfig::default());
        let (min_s, max_s) = outcome.default_time_range().unwrap_or((0.0, 0.0));
        // Mean confidence/accuracy over the second half of the campaign
        // (the paper reports steady-state values).
        let half = outcome.records.len() / 2;
        let conf = evovm::metrics::mean(
            &outcome.records[half..]
                .iter()
                .map(|r| r.confidence)
                .collect::<Vec<_>>(),
        );
        let acc = evovm::metrics::mean(
            &outcome.records[half..]
                .iter()
                .map(|r| r.accuracy)
                .collect::<Vec<_>>(),
        );
        accs.push(acc);
        println!(
            "{:<12} {:>7} {:>9.3} {:>9.3} {:>9} {:>7} {:>7.2} {:>7.2}",
            name, n_inputs, min_s, max_s, outcome.raw_features, outcome.used_features, conf, acc
        );
    }
    println!(
        "\nmean prediction accuracy: {:.1}% (paper: 87%)",
        100.0 * evovm::metrics::mean(&accs)
    );
}
