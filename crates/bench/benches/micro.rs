#![allow(missing_docs)] // criterion_group! expands undocumented items

//! Criterion microbenchmarks of the substrate itself: interpreter
//! throughput, JIT compilation at each level, classification-tree
//! training and XICL translation. These are not paper figures; they keep
//! the infrastructure's own performance visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use evovm_bytecode::asm::parse;
use evovm_learn::dataset::{Dataset, Raw};
use evovm_learn::tree::{ClassificationTree, TreeParams};
use evovm_opt::{OptLevel, Optimizer};
use evovm_vm::{BaselineOnlyPolicy, CostBenefitPolicy, Outcome, Vm, VmConfig};
use evovm_xicl::{extract::Registry, spec, Translator, Vfs};

fn interpreter_program() -> Arc<evovm_bytecode::Program> {
    let src = "
entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 20000
  icmpge
  jumpif end
  load 0
  call mix
  pop
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func mix/1 locals=2 {
  load 0
  const 2654435761
  imul
  const 1048575
  band
  store 1
  load 1
  load 0
  iadd
  return
}";
    Arc::new(parse(src).expect("valid asm"))
}

fn bench_interpreter(c: &mut Criterion) {
    let program = interpreter_program();
    c.bench_function("interp_20k_iterations_baseline", |b| {
        b.iter_batched(
            || {
                Vm::new(
                    Arc::clone(&program),
                    Box::new(BaselineOnlyPolicy),
                    VmConfig::default(),
                )
                .expect("verified")
            },
            |mut vm| match vm.run().expect("runs") {
                Outcome::Finished(r) => r.total_cycles,
                Outcome::FeaturesReady => unreachable!(),
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("interp_20k_iterations_adaptive", |b| {
        b.iter_batched(
            || {
                Vm::new(
                    Arc::clone(&program),
                    Box::new(CostBenefitPolicy::new()),
                    VmConfig::default(),
                )
                .expect("verified")
            },
            |mut vm| match vm.run().expect("runs") {
                Outcome::Finished(r) => r.total_cycles,
                Outcome::FeaturesReady => unreachable!(),
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let program = interpreter_program();
    let optimizer = Optimizer::new();
    for level in [OptLevel::O1, OptLevel::O2] {
        c.bench_function(&format!("jit_compile_{level}"), |b| {
            b.iter(|| optimizer.compile(&program, program.entry(), level));
        });
    }
}

fn bench_tree_training(c: &mut Criterion) {
    let mut data = Dataset::new();
    let mut s: u64 = 7;
    for _ in 0..200 {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = (s % 1000) as f64;
        let y = ((s >> 10) % 100) as f64;
        let label = u16::from(x > 500.0) + u16::from(y > 50.0);
        data.push(
            &[("x".to_owned(), Raw::Num(x)), ("y".to_owned(), Raw::Num(y))],
            label,
        )
        .expect("consistent schema");
    }
    c.bench_function("tree_fit_200_rows", |b| {
        b.iter(|| ClassificationTree::fit(&data, &TreeParams::default()));
    });
}

fn bench_xicl(c: &mut Criterion) {
    let xicl_spec = spec::parse(
        "option {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=SIZE:LINES:WORDS}",
    )
    .expect("valid spec");
    let translator = Translator::new(xicl_spec, Registry::with_predefined());
    let mut vfs = Vfs::new();
    vfs.write("input.dat", "lorem ipsum dolor\n".repeat(500));
    let args: Vec<String> = vec!["-n".into(), "3".into(), "input.dat".into()];
    c.bench_function("xicl_translate", |b| {
        b.iter(|| translator.translate(&args, &vfs).expect("legal input"));
    });
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_optimizer,
    bench_tree_training,
    bench_xicl
);
criterion_main!(benches);
