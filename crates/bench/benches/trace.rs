//! Diagnostic: per-run trace of any workload under Evolve and Rep.
//!
//! Not a paper figure — a debugging/inspection harness. Select the
//! workload with the `EVOVM_TRACE` environment variable (default
//! `compress`), e.g.:
//!
//! ```text
//! EVOVM_TRACE=search cargo bench -p evovm-bench --bench trace
//! ```

use evovm::Scenario;
use evovm_bench::{banner, paper_runs, session, SessionRequest};

fn main() {
    let name = std::env::var("EVOVM_TRACE").unwrap_or_else(|_| "compress".to_owned());
    banner(&format!("Trace — {name}"), "diagnostic, not a paper figure");
    let runs = paper_runs(&name);
    let outcomes = session(&[
        SessionRequest::new(&name, Scenario::Evolve, runs, 1),
        SessionRequest::new(&name, Scenario::Rep, runs, 1),
    ]);
    let (evolve, rep) = (&outcomes[0], &outcomes[1]);
    println!(
        "{:>4} {:>6} {:>10} {:>9} {:>9} {:>13} {:>10} {:>6}",
        "run", "input", "def(s)", "conf", "acc", "evolve-spdup", "rep-spdup", "pred"
    );
    for (e, r) in evolve.records.iter().zip(&rep.records) {
        println!(
            "{:>4} {:>6} {:>10.4} {:>9.3} {:>9.3} {:>13.3} {:>10.3} {:>6}",
            e.run_index,
            e.input_index,
            e.default_seconds(),
            e.confidence,
            e.accuracy,
            e.speedup,
            r.speedup,
            if e.predicted { "*" } else { "" }
        );
    }
    println!(
        "\nraw features: {}  used: {}",
        evolve.raw_features, evolve.used_features
    );
}
