//! Ablations of the evolvable VM's design choices (beyond the paper's own
//! experiments; DESIGN.md motivates each):
//!
//! 1. **Discriminative guard** — threshold 0.0 (predict from the first
//!    model, Rep-style) vs the paper's 0.7. The guard should protect the
//!    distribution's minimum at a small cost to the mean.
//! 2. **Cross-input models** — classification trees vs depth-0 trees
//!    (majority labels: cross-run but input-oblivious learning). The gap
//!    is the value of *input-specific* prediction, the paper's core claim.
//! 3. **Sampling resolution** — 10k-cycle vs 100k-cycle profiler ticks.
//!    Coarse sampling makes the posterior ideal-level labels noisy for
//!    short runs and should visibly hurt accuracy.

use evovm::metrics::BoxStats;
use evovm::{EvolveConfig, Scenario};
use evovm_bench::{banner, campaign, paper_runs};
use evovm_learn::tree::TreeParams;

fn summarize(label: &str, outcome: &evovm::CampaignOutcome) {
    let s = BoxStats::from_slice(&outcome.speedups()).expect("nonempty");
    let acc = outcome.mean_accuracy();
    println!(
        "{label:<34} min={:.3} med={:.3} max={:.3}  acc={:.3}  predicted={}/{}",
        s.min,
        s.median,
        s.max,
        acc,
        outcome.records.iter().filter(|r| r.predicted).count(),
        outcome.records.len()
    );
}

fn main() {
    banner(
        "Ablations — design-choice isolation",
        "DESIGN.md §5 (extensions)",
    );
    let name = "mtrt";
    let runs = paper_runs(name);

    // Where the models are hard (compress: 100 inputs, boundary-heavy
    // labels), the guard trades median speedup for robustness. Note the
    // honest finding: on this deterministic substrate even immature
    // models usually beat the default, so the guard's value shows mainly
    // in the input-order sensitivity experiment (Rep's unguarded
    // worst-cases of 0.67–0.78) rather than in this single-order summary.
    println!("--- 1. discriminative guard (compress) ---");
    for (label, th) in [
        ("guard off (TH_c = 0.0)", 0.0),
        ("paper guard (TH_c = 0.7)", 0.7),
    ] {
        let outcome = campaign(
            "compress",
            Scenario::Evolve,
            paper_runs("compress"),
            1,
            EvolveConfig::default().with_threshold(th),
        );
        summarize(label, &outcome);
    }

    println!("\n--- 2. input-specific trees vs input-oblivious majority (mtrt) ---");
    let majority_cfg = EvolveConfig {
        tree_params: TreeParams {
            max_depth: 0, // a single leaf: the majority label per method
            ..TreeParams::default()
        },
        ..EvolveConfig::default()
    };
    summarize(
        "majority labels (depth-0 trees)",
        &campaign(name, Scenario::Evolve, runs, 1, majority_cfg),
    );
    summarize(
        "classification trees (paper)",
        &campaign(name, Scenario::Evolve, runs, 1, EvolveConfig::default()),
    );

    println!("\n--- 3. profiler sampling resolution (search: short runs) ---");
    for (label, interval) in [
        ("fine ticks (10k cycles)", 10_000u64),
        ("coarse ticks (100k cycles)", 100_000),
    ] {
        let cfg = EvolveConfig {
            sample_interval_cycles: interval,
            ..EvolveConfig::default()
        };
        let outcome = campaign("search", Scenario::Evolve, paper_runs("search"), 1, cfg);
        summarize(label, &outcome);
    }
}
