//! Figure 9: correlation between a run's default running time and the
//! speedup Evolve/Rep deliver on it, for Mtrt (a) and Compress (b).
//!
//! Expected shape: speedup grows with running time, peaks, then decays
//! toward 1.0 for the longest runs (compile-time savings amortize away);
//! the Evolve-vs-Rep gap widens in the mid range.

use evovm::Scenario;
use evovm_bench::{banner, session, SessionRequest};

fn main() {
    banner(
        "Figure 9 — speedup vs default running time",
        "Figure 9 (a: Mtrt, b: Compress)",
    );
    // The paper plots 92 post-warmup Mtrt runs; we run 100 and drop the
    // first 8 (Evolve predicts in few or none of them).
    let runs = 100;
    let warmup = 8;
    let seed = 2;
    let names = ["mtrt", "compress"];
    let requests: Vec<SessionRequest> = names
        .iter()
        .flat_map(|name| {
            [Scenario::Evolve, Scenario::Rep]
                .map(|scenario| SessionRequest::new(name, scenario, runs, seed))
        })
        .collect();
    let outcomes = session(&requests);
    for (name, pair) in names.iter().zip(outcomes.chunks_exact(2)) {
        let (evolve, rep) = (&pair[0], &pair[1]);
        let mut rows: Vec<(f64, f64, f64)> = evolve.records[warmup..]
            .iter()
            .zip(&rep.records[warmup..])
            .map(|(e, r)| (e.default_seconds(), e.speedup, r.speedup))
            .collect();
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        println!(
            "--- {name} ({} runs, sorted by default running time) ---",
            rows.len()
        );
        println!(
            "{:>12} {:>13} {:>10}",
            "default(s)", "evolve-spdup", "rep-spdup"
        );
        for (t, es, rs) in &rows {
            println!("{t:>12.4} {es:>13.3} {rs:>10.3}");
        }
        // Shape summary: tercile means show the rise/diminish pattern.
        let third = rows.len() / 3;
        let mean_of = |range: &[(f64, f64, f64)]| {
            evovm::metrics::mean(&range.iter().map(|r| r.1).collect::<Vec<_>>())
        };
        println!(
            "\n  Evolve speedup by running-time tercile: short={:.3} mid={:.3} long={:.3}\n",
            mean_of(&rows[..third]),
            mean_of(&rows[third..2 * third]),
            mean_of(&rows[2 * third..]),
        );
    }
}
