//! Figure 8: temporal curves of Evolve's confidence and prediction
//! accuracy, with per-run speedups of Evolve and Rep, for Mtrt (a) and
//! RayTracer (b).
//!
//! Expected shape: confidence and accuracy rise over the first runs;
//! speedup jumps once confidence crosses the 0.7 threshold; Evolve's
//! speedups then exceed Rep's on most runs.

use evovm::Scenario;
use evovm_bench::{banner, paper_runs, session, SessionRequest};

fn main() {
    banner(
        "Figure 8 — confidence/accuracy/speedup vs run index",
        "Figure 8 (a: Mtrt, b: RayTracer)",
    );
    let names = ["mtrt", "raytracer"];
    let seed = 1;
    let requests: Vec<SessionRequest> = names
        .iter()
        .flat_map(|name| {
            [Scenario::Evolve, Scenario::Rep]
                .map(|scenario| SessionRequest::new(name, scenario, paper_runs(name), seed))
        })
        .collect();
    let outcomes = session(&requests);
    for (name, pair) in names.iter().zip(outcomes.chunks_exact(2)) {
        let (evolve, rep) = (&pair[0], &pair[1]);
        let runs = evolve.records.len();
        println!("--- {name} ({runs} runs, same random input order for both systems) ---");
        println!(
            "{:>4} {:>6} {:>9} {:>9} {:>13} {:>12}",
            "run", "input", "conf", "acc", "evolve-spdup", "rep-spdup"
        );
        for (e, r) in evolve.records.iter().zip(&rep.records) {
            println!(
                "{:>4} {:>6} {:>9.3} {:>9.3} {:>13.3} {:>12.3}{}",
                e.run_index,
                e.input_index,
                e.confidence,
                e.accuracy,
                e.speedup,
                r.speedup,
                if e.predicted { "  *" } else { "" }
            );
        }
        let engaged: Vec<f64> = evolve
            .records
            .iter()
            .filter(|r| r.predicted)
            .map(|r| r.speedup)
            .collect();
        let rep_speedups = rep.speedups();
        println!(
            "\n  mean Evolve speedup once predicting: {:.3}  |  mean Rep speedup: {:.3}",
            evovm::metrics::mean(&engaged),
            evovm::metrics::mean(&rep_speedups)
        );
        println!("  (* = discriminative prediction engaged)\n");
    }
}
