//! §V-B.2 overhead analysis: the extra work the evolvable VM adds —
//! XICL feature extraction plus strategy prediction — as a fraction of
//! run time. (Model construction happens after the run and is uncharged,
//! exactly as in the paper.)
//!
//! Paper reference: below 0.4% for most runs, worst case 1.38% (Bloat on
//! a small input).

use evovm::Scenario;
use evovm_bench::{banner, paper_runs, session, SessionRequest, TABLE1_ORDER};

fn main() {
    banner(
        "Overhead analysis — evolvable-VM overhead per run",
        "Section V-B.2",
    );
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "program", "mean(%)", "max(%)", "max-at-input"
    );
    let requests: Vec<SessionRequest> = TABLE1_ORDER
        .iter()
        .map(|name| SessionRequest::new(name, Scenario::Evolve, paper_runs(name), 1))
        .collect();
    let outcomes = session(&requests);
    let mut worst = (0.0f64, String::new());
    for (name, outcome) in TABLE1_ORDER.iter().zip(&outcomes) {
        let fractions: Vec<f64> = outcome
            .records
            .iter()
            .map(|r| r.overhead_fraction * 100.0)
            .collect();
        let mean = evovm::metrics::mean(&fractions);
        let (max, at) = outcome
            .records
            .iter()
            .map(|r| (r.overhead_fraction * 100.0, r.input_index))
            .fold((0.0, 0usize), |acc, x| if x.0 > acc.0 { x } else { acc });
        println!("{name:<12} {mean:>12.4} {max:>12.4} {at:>14}");
        if max > worst.0 {
            worst = (max, (*name).to_owned());
        }
    }
    println!(
        "\nworst overhead observed: {:.4}% on {} (paper: 1.38% on Bloat, <0.4% typical)",
        worst.0, worst.1
    );
}
