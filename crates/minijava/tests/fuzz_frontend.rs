//! Frontend robustness: `compile` must never panic — any input yields
//! either a program or a diagnostic with a line number.

use proptest::prelude::*;

use evovm_minijava::compile;

proptest! {
    /// Arbitrary byte soup (printable-ish) never panics the front end.
    #[test]
    fn compile_is_total_on_garbage(src in "[ -~\\n]{0,200}") {
        match compile(&src) {
            Ok(program) => {
                // Anything that compiles must verify (compile() verifies
                // internally, so reaching here is already the guarantee).
                prop_assert!(!program.functions().is_empty());
            }
            Err(e) => prop_assert!(!e.message.is_empty()),
        }
    }

    /// Structured-but-mangled programs: valid tokens in random orders.
    #[test]
    fn compile_is_total_on_token_soup(tokens in proptest::collection::vec(
        prop_oneof![
            Just("fn"), Just("main"), Just("("), Just(")"), Just("{"), Just("}"),
            Just("let"), Just("x"), Just("="), Just("1"), Just(";"), Just("+"),
            Just("if"), Just("while"), Just("return"), Just("print"), Just("["),
            Just("]"), Just("new"), Just("&&"), Just("=="), Just("1.5"), Just(","),
        ],
        0..60,
    )) {
        let src = tokens.join(" ");
        let _ = compile(&src); // must not panic
    }

    /// Nesting within the documented limit parses; beyond it the parser
    /// reports a diagnostic instead of overflowing the host stack (a bug
    /// this very test found during development).
    #[test]
    fn nested_parentheses_are_handled(depth in 0usize..300) {
        let src = format!(
            "fn main() {{ print {}1{}; }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        let result = compile(&src);
        if depth < 40 {
            prop_assert!(result.is_ok(), "shallow nesting should parse: {:?}", result.err());
        } else if depth > evovm_minijava::parser::MAX_NESTING {
            let e = result.expect_err("over-deep nesting must be rejected");
            prop_assert!(e.message.contains("nesting"), "{e}");
        }
    }

    /// Line numbers in diagnostics point inside the source.
    #[test]
    fn error_lines_are_in_range(prefix in "[a-z \\n]{0,60}") {
        let src = format!("{prefix}\n@@@");
        if let Err(e) = compile(&src) {
            let lines = src.lines().count();
            prop_assert!(e.line <= lines + 1, "line {} of {}", e.line, lines);
        }
    }
}
