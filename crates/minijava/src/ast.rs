//! Abstract syntax tree of MiniJava.

/// A complete source file: a list of functions.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// Declared functions, in source order.
    pub functions: Vec<FnDecl>,
}

/// One function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Declaration line (diagnostics).
    pub line: usize,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x = e;`
    Let {
        /// Variable name.
        name: String,
        /// Initializer.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `x = e;`
    Assign {
        /// Variable name.
        name: String,
        /// New value.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `a[i] = e;`
    AssignIndex {
        /// The array expression.
        array: Expr,
        /// The index expression.
        index: Expr,
        /// The stored value.
        value: Expr,
    },
    /// `if (c) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
    },
    /// `while (c) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for (init; cond; update) { .. }` — kept first-class so `continue`
    /// jumps to the update, not past it.
    For {
        /// Loop initializer (runs once, scoped to the loop).
        init: Box<Stmt>,
        /// Condition checked before each iteration.
        cond: Expr,
        /// Update statement run after the body and on `continue`.
        update: Box<Stmt>,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return e;` / `return;` (returns null)
    Return(Option<Expr>),
    /// `break;`
    Break {
        /// Source line.
        line: usize,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: usize,
    },
    /// `print e;`
    Print(Expr),
    /// `publish "name", e;`
    Publish {
        /// Feature name.
        name: String,
        /// Published value.
        value: Expr,
    },
    /// `done;`
    Done,
    /// Bare expression statement (value discarded).
    Expr(Expr),
    /// A nested `{ .. }` block with its own scope.
    Block(Vec<Stmt>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `null`
    Null,
    /// Variable reference.
    Var {
        /// Variable name.
        name: String,
        /// Source line.
        line: usize,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `a && b` (short-circuit, yields 0/1)
    And(Box<Expr>, Box<Expr>),
    /// `a || b` (short-circuit, yields 0/1)
    Or(Box<Expr>, Box<Expr>),
    /// `-e`
    Neg(Box<Expr>),
    /// `!e` (yields 0/1)
    Not(Box<Expr>),
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// Built-in call (`sqrt`, `len`, `int`, ...).
    Builtin {
        /// Which builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `a[i]`
    Index {
        /// The array expression.
        array: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// `new [n]` — array allocation.
    NewArray(Box<Expr>),
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `sqrt(x)`
    Sqrt,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `abs(x)`
    Abs,
    /// `floor(x)`
    Floor,
    /// `pow(x, y)`
    Pow,
    /// `min(x, y)`
    Min,
    /// `max(x, y)`
    Max,
    /// `len(a)` — array length
    Len,
    /// `int(x)` — truncate to integer
    Int,
    /// `float(x)` — convert to float
    Float,
}

impl Builtin {
    /// Look up a builtin by source name.
    pub fn from_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "abs" => Builtin::Abs,
            "floor" => Builtin::Floor,
            "pow" => Builtin::Pow,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "len" => Builtin::Len,
            "int" => Builtin::Int,
            "float" => Builtin::Float,
            _ => return None,
        })
    }

    /// Number of arguments the builtin requires.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Pow | Builtin::Min | Builtin::Max => 2,
            _ => 1,
        }
    }
}
