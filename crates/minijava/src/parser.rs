//! Recursive-descent parser for MiniJava.

use crate::ast::{BinaryOp, Builtin, Expr, FnDecl, SourceFile, Stmt};
use crate::error::CompileError;
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parse a MiniJava source file.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse(source: &str) -> Result<SourceFile, CompileError> {
    let tokens = lex(source)?;
    Parser {
        tokens,
        pos: 0,
        depth: 0,
    }
    .source_file()
}

/// Maximum expression/statement nesting depth. Recursive descent uses the
/// host stack; unbounded nesting would overflow it, so anything deeper is
/// a diagnostic instead of a crash.
pub const MAX_NESTING: usize = 100;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), CompileError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> CompileError {
        CompileError::new(self.line(), message)
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    fn source_file(&mut self) -> Result<SourceFile, CompileError> {
        let mut functions = Vec::new();
        while !matches!(self.peek(), Token::Eof) {
            functions.push(self.fn_decl()?);
        }
        Ok(SourceFile { functions })
    }

    fn fn_decl(&mut self) -> Result<FnDecl, CompileError> {
        let line = self.line();
        self.expect(&Token::Fn)?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Token::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Token::RParen) {
                    break;
                }
                self.expect(&Token::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Token::RBrace) {
            if matches!(self.peek(), Token::Eof) {
                return Err(self.err("unclosed block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        self.enter()?;
        let result = self.stmt_inner();
        self.depth -= 1;
        result
    }

    fn stmt_inner(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Token::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Token::Assign)?;
                let value = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Let { name, value, line })
            }
            Token::If => self.if_stmt(),
            Token::While => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Token::For => self.for_stmt(),
            Token::Return => {
                self.bump();
                if self.eat(&Token::Semi) {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Token::Break => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Break { line })
            }
            Token::Continue => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Continue { line })
            }
            Token::Print => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Print(e))
            }
            Token::Publish => {
                self.bump();
                let name = match self.bump() {
                    Token::Str(s) => s,
                    other => {
                        return Err(CompileError::new(
                            line,
                            format!("publish needs a string literal, found `{other}`"),
                        ))
                    }
                };
                self.expect(&Token::Comma)?;
                let value = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Publish { name, value })
            }
            Token::Done => {
                self.bump();
                self.expect(&Token::Semi)?;
                Ok(Stmt::Done)
            }
            Token::LBrace => Ok(Stmt::Block(self.block()?)),
            Token::Ident(name) if matches!(self.peek2(), Token::Assign) => {
                self.bump();
                self.bump();
                let value = self.expr()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Assign { name, value, line })
            }
            _ => {
                // Could be `a[i] = e;`, or a bare expression statement.
                let e = self.expr()?;
                if self.eat(&Token::Assign) {
                    let Expr::Index { array, index } = e else {
                        return Err(CompileError::new(
                            line,
                            "only variables and array elements can be assigned",
                        ));
                    };
                    let value = self.expr()?;
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::AssignIndex {
                        array: *array,
                        index: *index,
                        value,
                    })
                } else {
                    self.expect(&Token::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        self.expect(&Token::If)?;
        self.expect(&Token::LParen)?;
        let cond = self.expr()?;
        self.expect(&Token::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&Token::Else) {
            if matches!(self.peek(), Token::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// `for (init; cond; update) { body }` desugars to
    /// `{ init; while (cond) { body; update; } }` — represented directly
    /// since `continue` in MiniJava's `for` re-runs the update (the
    /// codegen handles that by treating the update as part of the loop).
    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        self.expect(&Token::For)?;
        self.expect(&Token::LParen)?;
        let init = self.stmt()?; // consumes its `;`
        let cond = self.expr()?;
        self.expect(&Token::Semi)?;
        // The update is an assignment or expression *without* trailing `;`.
        let update = {
            let uline = self.line();
            match self.peek().clone() {
                Token::Ident(name) if matches!(self.peek2(), Token::Assign) => {
                    self.bump();
                    self.bump();
                    let value = self.expr()?;
                    Stmt::Assign {
                        name,
                        value,
                        line: uline,
                    }
                }
                _ => {
                    let e = self.expr()?;
                    if self.eat(&Token::Assign) {
                        let Expr::Index { array, index } = e else {
                            return Err(CompileError::new(
                                uline,
                                "only variables and array elements can be assigned",
                            ));
                        };
                        let value = self.expr()?;
                        Stmt::AssignIndex {
                            array: *array,
                            index: *index,
                            value,
                        }
                    } else {
                        Stmt::Expr(e)
                    }
                }
            }
        };
        self.expect(&Token::RParen)?;
        let body = self.block()?;
        let _ = line;
        Ok(Stmt::For {
            init: Box::new(init),
            cond,
            update: Box::new(update),
            body,
        })
    }

    // --- expressions, precedence climbing ---

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.enter()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn enter(&mut self) -> Result<(), CompileError> {
        self.depth += 1;
        if self.depth > MAX_NESTING {
            return Err(self.err(format!(
                "expression or statement nesting exceeds the limit of {MAX_NESTING}"
            )));
        }
        Ok(())
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.bitor_expr()?;
        let op = match self.peek() {
            Token::EqEq => BinaryOp::Eq,
            Token::NotEq => BinaryOp::Ne,
            Token::Lt => BinaryOp::Lt,
            Token::Le => BinaryOp::Le,
            Token::Gt => BinaryOp::Gt,
            Token::Ge => BinaryOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.bitor_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn bitor_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat(&Token::Pipe) {
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitOr,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.bitand_expr()?;
        while self.eat(&Token::Caret) {
            let rhs = self.bitand_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitXor,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.shift_expr()?;
        while self.eat(&Token::Amp) {
            let rhs = self.shift_expr()?;
            lhs = Expr::Binary {
                op: BinaryOp::BitAnd,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Token::Shl => BinaryOp::Shl,
                Token::Shr => BinaryOp::Shr,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                Token::Percent => BinaryOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        self.enter()?;
        let result = if self.eat(&Token::Minus) {
            self.unary_expr().map(|e| Expr::Neg(Box::new(e)))
        } else if self.eat(&Token::Bang) {
            self.unary_expr().map(|e| Expr::Not(Box::new(e)))
        } else {
            self.postfix_expr()
        };
        self.depth -= 1;
        result
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        while self.eat(&Token::LBracket) {
            let index = self.expr()?;
            self.expect(&Token::RBracket)?;
            e = Expr::Index {
                array: Box::new(e),
                index: Box::new(index),
            };
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Token::Int(v) => Ok(Expr::Int(v)),
            Token::Float(v) => Ok(Expr::Float(v)),
            Token::Null => Ok(Expr::Null),
            Token::True => Ok(Expr::Int(1)),
            Token::False => Ok(Expr::Int(0)),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::New => {
                self.expect(&Token::LBracket)?;
                let n = self.expr()?;
                self.expect(&Token::RBracket)?;
                Ok(Expr::NewArray(Box::new(n)))
            }
            Token::Ident(name) => {
                if self.eat(&Token::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Token::RParen) {
                                break;
                            }
                            self.expect(&Token::Comma)?;
                        }
                    }
                    if let Some(builtin) = Builtin::from_name(&name) {
                        if args.len() != builtin.arity() {
                            return Err(CompileError::new(
                                line,
                                format!(
                                    "builtin `{name}` takes {} argument(s), got {}",
                                    builtin.arity(),
                                    args.len()
                                ),
                            ));
                        }
                        Ok(Expr::Builtin {
                            builtin,
                            args,
                            line,
                        })
                    } else {
                        Ok(Expr::Call { name, args, line })
                    }
                } else {
                    Ok(Expr::Var { name, line })
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_functions_and_params() {
        let sf = parse("fn main() { }\nfn add(a, b) { return a + b; }").unwrap();
        assert_eq!(sf.functions.len(), 2);
        assert_eq!(sf.functions[1].params, vec!["a", "b"]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let sf = parse("fn main() { let x = 1 + 2 * 3; }").unwrap();
        let Stmt::Let { value, .. } = &sf.functions[0].body[0] else {
            panic!()
        };
        let Expr::Binary { op, rhs, .. } = value else {
            panic!()
        };
        assert_eq!(*op, BinaryOp::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn parses_control_flow() {
        let src = "fn main() {
            let i = 0;
            while (i < 10) {
                if (i % 2 == 0) { print i; } else { print 0 - i; }
                i = i + 1;
            }
            for (let j = 0; j < 3; j = j + 1) { print j; }
        }";
        parse(src).unwrap();
    }

    #[test]
    fn parses_arrays_and_builtins() {
        let src = "fn main() {
            let a = new [10];
            a[0] = 5;
            a[1] = a[0] * 2;
            print len(a);
            print sqrt(float(a[1]));
            print pow(2, 10);
        }";
        parse(src).unwrap();
    }

    #[test]
    fn parses_publish_and_done() {
        parse("fn main() { publish \"n\", 5; done; }").unwrap();
    }

    #[test]
    fn short_circuit_operators_nest() {
        let sf = parse("fn main() { let x = 1 && 2 || 3; }").unwrap();
        let Stmt::Let { value, .. } = &sf.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Or(..)));
    }

    #[test]
    fn builtin_arity_is_checked() {
        let e = parse("fn main() { print sqrt(1, 2); }").unwrap_err();
        assert!(e.message.contains("sqrt"));
    }

    #[test]
    fn rejects_assignment_to_expression() {
        assert!(parse("fn main() { 1 + 2 = 3; }").is_err());
    }

    #[test]
    fn rejects_unclosed_block() {
        assert!(parse("fn main() { let x = 1;").is_err());
    }

    #[test]
    fn else_if_chains() {
        parse("fn main() { if (1) { } else if (2) { } else { } }").unwrap();
    }
}
