//! MiniJava: a small, dynamically-typed, Java-flavoured language that
//! compiles to the evolvable VM's bytecode.
//!
//! The benchmark workloads of this reproduction are written in MiniJava;
//! the language exists so that realistic, input-sensitive programs can be
//! authored compactly while still exercising the whole compiler stack
//! (parsing → AST → bytecode → verification → JIT).
//!
//! # Language tour
//!
//! ```text
//! fn main() {
//!     let n = 10;
//!     let a = new [n];                 // arrays
//!     for (let i = 0; i < n; i = i + 1) {
//!         a[i] = i * i;
//!     }
//!     let total = 0;
//!     let i = 0;
//!     while (i < len(a)) {             // builtins: len, sqrt, pow, ...
//!         total = total + a[i];
//!         i = i + 1;
//!     }
//!     if (total > 100 && n != 0) {     // short-circuit booleans
//!         print total;
//!     }
//!     publish "n", n;                  // XICL runtime feature channel
//!     done;                            // pause for prediction
//! }
//! ```
//!
//! Functions are declared with `fn name(params) { .. }`; `main` (no
//! parameters) is the entry point. Values are dynamically typed: integers,
//! floats, arrays and `null`.
//!
//! # Example
//!
//! ```
//! use evovm_minijava::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = compile("fn main() { print 6 * 7; }")?;
//! assert_eq!(program.functions().len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod codegen;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::CompileError;

use evovm_bytecode::Program;

/// Compile MiniJava source to a verified bytecode [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] with a source line for lexical, syntactic
/// and semantic errors.
pub fn compile(source: &str) -> Result<Program, CompileError> {
    let sf = parser::parse(source)?;
    codegen::generate(&sf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_vm::{BaselineOnlyPolicy, Outcome, Vm, VmConfig};
    use std::sync::Arc;

    fn run(source: &str) -> Vec<String> {
        let program = Arc::new(compile(source).unwrap());
        let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
        match vm.run().unwrap() {
            Outcome::Finished(r) => r.output,
            Outcome::FeaturesReady => panic!("unexpected pause"),
        }
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(run("fn main() { print 1 + 2 * 3; }"), vec!["7"]);
        assert_eq!(run("fn main() { print (1 + 2) * 3; }"), vec!["9"]);
        assert_eq!(run("fn main() { print 7 % 3; }"), vec!["1"]);
        assert_eq!(run("fn main() { print -5 + 2; }"), vec!["-3"]);
        assert_eq!(run("fn main() { print 1.5 * 2.0; }"), vec!["3"]);
    }

    #[test]
    fn variables_and_shadowing() {
        assert_eq!(
            run("fn main() { let x = 1; { let x = 2; print x; } print x; }"),
            vec!["2", "1"]
        );
    }

    #[test]
    fn while_loop() {
        assert_eq!(
            run("fn main() { let i = 0; while (i < 3) { print i; i = i + 1; } }"),
            vec!["0", "1", "2"]
        );
    }

    #[test]
    fn for_loop_with_continue_and_break() {
        assert_eq!(
            run("fn main() {
                for (let i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { continue; }
                    if (i > 6) { break; }
                    print i;
                }
            }"),
            vec!["1", "3", "5"]
        );
    }

    #[test]
    fn functions_and_recursion() {
        assert_eq!(
            run(
                "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
                 fn main() { print fib(12); }"
            ),
            vec!["144"]
        );
    }

    #[test]
    fn arrays() {
        assert_eq!(
            run("fn main() {
                let a = new [4];
                for (let i = 0; i < len(a); i = i + 1) { a[i] = i * 10; }
                print a[0] + a[1] + a[2] + a[3];
            }"),
            vec!["60"]
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(run("fn main() { print sqrt(16.0); }"), vec!["4"]);
        assert_eq!(run("fn main() { print pow(2, 10); }"), vec!["1024"]);
        assert_eq!(
            run("fn main() { print min(3, 7) + max(3, 7); }"),
            vec!["10"]
        );
        assert_eq!(run("fn main() { print int(3.9); }"), vec!["3"]);
        assert_eq!(run("fn main() { print float(3) / 2.0; }"), vec!["1.5"]);
        assert_eq!(run("fn main() { print abs(-9); }"), vec!["9"]);
        assert_eq!(run("fn main() { print floor(2.7); }"), vec!["2"]);
    }

    #[test]
    fn short_circuit_evaluation() {
        // The second operand would trap (division by zero) if evaluated.
        assert_eq!(run("fn main() { print false && 1 / 0; }"), vec!["0"]);
        assert_eq!(run("fn main() { print true || 1 / 0; }"), vec!["1"]);
        assert_eq!(run("fn main() { print !0; print !3; }"), vec!["1", "0"]);
    }

    #[test]
    fn comparison_chain() {
        assert_eq!(
            run("fn main() { print 1 < 2; print 2 <= 2; print 3 > 4; print 1 == 1.0; }"),
            vec!["1", "1", "0", "1"]
        );
    }

    #[test]
    fn bitwise_operators() {
        assert_eq!(run("fn main() { print 6 & 3; }"), vec!["2"]);
        assert_eq!(run("fn main() { print 6 | 3; }"), vec!["7"]);
        assert_eq!(run("fn main() { print 6 ^ 3; }"), vec!["5"]);
        assert_eq!(run("fn main() { print 1 << 4; }"), vec!["16"]);
        assert_eq!(run("fn main() { print 32 >> 2; }"), vec!["8"]);
    }

    #[test]
    fn nested_functions_and_args() {
        assert_eq!(
            run("fn add3(a, b, c) { return a + b + c; }
                 fn twice(x) { return x * 2; }
                 fn main() { print add3(1, twice(2), 3); }"),
            vec!["8"]
        );
    }

    #[test]
    fn publish_and_done_compile() {
        let p = compile("fn main() { publish \"n\", 5; done; print 1; }").unwrap();
        let code = &p.function(p.entry()).code;
        assert!(code
            .iter()
            .any(|i| matches!(i, evovm_bytecode::Instr::Publish(_))));
        assert!(code
            .iter()
            .any(|i| matches!(i, evovm_bytecode::Instr::Done)));
    }

    #[test]
    fn error_unknown_variable() {
        let e = compile("fn main() { print x; }").unwrap_err();
        assert!(e.message.contains("undefined variable"), "{e}");
    }

    #[test]
    fn error_unknown_function() {
        let e = compile("fn main() { print f(1); }").unwrap_err();
        assert!(e.message.contains("undefined function"), "{e}");
    }

    #[test]
    fn error_wrong_arity() {
        let e = compile("fn f(a) { return a; } fn main() { print f(1, 2); }").unwrap_err();
        assert!(e.message.contains("argument"), "{e}");
    }

    #[test]
    fn error_duplicate_function() {
        let e = compile("fn f() {} fn f() {} fn main() {}").unwrap_err();
        assert!(e.message.contains("defined twice"), "{e}");
    }

    #[test]
    fn error_break_outside_loop() {
        let e = compile("fn main() { break; }").unwrap_err();
        assert!(e.message.contains("break"), "{e}");
    }

    #[test]
    fn error_missing_main() {
        let e = compile("fn helper() {}").unwrap_err();
        assert!(e.message.contains("main"), "{e}");
    }

    #[test]
    fn error_duplicate_let_in_same_scope() {
        let e = compile("fn main() { let x = 1; let x = 2; }").unwrap_err();
        assert!(e.message.contains("already defined"), "{e}");
    }

    #[test]
    fn implicit_return_is_null() {
        assert_eq!(
            run("fn f() { } fn main() { print f() == null; }"),
            vec!["1"]
        );
    }

    #[test]
    fn else_if_chain_runs_correct_branch() {
        assert_eq!(
            run("fn classify(x) {
                     if (x < 0) { return -1; }
                     else if (x == 0) { return 0; }
                     else { return 1; }
                 }
                 fn main() { print classify(-5); print classify(0); print classify(9); }"),
            vec!["-1", "0", "1"]
        );
    }
}
