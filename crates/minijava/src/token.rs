//! Tokens of the MiniJava language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // literals
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (only valid after `publish`).
    Str(String),
    /// Identifier.
    Ident(String),

    // keywords
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `return`
    Return,
    /// `break`
    Break,
    /// `continue`
    Continue,
    /// `print`
    Print,
    /// `publish`
    Publish,
    /// `done`
    Done,
    /// `new`
    New,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,

    // punctuation
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,

    // operators
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<Token> {
        Some(match s {
            "fn" => Token::Fn,
            "let" => Token::Let,
            "if" => Token::If,
            "else" => Token::Else,
            "while" => Token::While,
            "for" => Token::For,
            "return" => Token::Return,
            "break" => Token::Break,
            "continue" => Token::Continue,
            "print" => Token::Print,
            "publish" => Token::Publish,
            "done" => Token::Done,
            "new" => Token::New,
            "null" => Token::Null,
            "true" => Token::True,
            "false" => Token::False,
            _ => return None,
        })
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Fn => write!(f, "fn"),
            Token::Let => write!(f, "let"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::While => write!(f, "while"),
            Token::For => write!(f, "for"),
            Token::Return => write!(f, "return"),
            Token::Break => write!(f, "break"),
            Token::Continue => write!(f, "continue"),
            Token::Print => write!(f, "print"),
            Token::Publish => write!(f, "publish"),
            Token::Done => write!(f, "done"),
            Token::New => write!(f, "new"),
            Token::Null => write!(f, "null"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Assign => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::Caret => write!(f, "^"),
            Token::Shl => write!(f, "<<"),
            Token::Shr => write!(f, ">>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token plus its source line (1-based), for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}
