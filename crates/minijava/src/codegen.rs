//! Bytecode generation from the MiniJava AST.

use std::collections::HashMap;

use evovm_bytecode::builder::{FunctionBuilder, Label, ProgramBuilder};
use evovm_bytecode::{FuncId, Instr, MathFn, Program};

use crate::ast::{BinaryOp, Builtin, Expr, SourceFile, Stmt};
use crate::error::CompileError;

/// Generate a verified [`Program`] from a parsed source file.
///
/// # Errors
///
/// Semantic errors (unknown names, arity mismatches, duplicate
/// definitions, `break` outside a loop, missing `main`) are reported with
/// source lines.
pub fn generate(sf: &SourceFile) -> Result<Program, CompileError> {
    let mut pb = ProgramBuilder::new();
    let mut ids: HashMap<&str, FuncId> = HashMap::new();
    for f in &sf.functions {
        if ids.contains_key(f.name.as_str()) {
            return Err(CompileError::new(
                f.line,
                format!("function `{}` defined twice", f.name),
            ));
        }
        let id = pb.declare(&f.name, f.params.len() as u16);
        ids.insert(&f.name, id);
    }
    let Some(&main) = ids.get("main") else {
        return Err(CompileError::new(0, "no `main` function"));
    };
    if !sf
        .functions
        .iter()
        .any(|f| f.name == "main" && f.params.is_empty())
    {
        return Err(CompileError::new(0, "`main` must take no parameters"));
    }

    for f in &sf.functions {
        let id = ids[f.name.as_str()];
        let mut cg = Codegen {
            fb: pb.function(id, 0),
            ids: &ids,
            decls: sf,
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
        };
        for (slot, p) in f.params.iter().enumerate() {
            if cg.scopes[0].insert(p.clone(), slot as u16).is_some() {
                return Err(CompileError::new(
                    f.line,
                    format!("duplicate parameter `{p}` in `{}`", f.name),
                ));
            }
        }
        cg.block(&f.body)?;
        // Implicit `return null;` for fall-through paths.
        cg.fb.emit(Instr::Null);
        cg.fb.emit(Instr::Return);
        cg.fb
            .finish()
            .map_err(|e| CompileError::new(f.line, e.to_string()))?;
    }
    let program = pb
        .build(main)
        .map_err(|e| CompileError::new(0, e.to_string()))?;
    evovm_bytecode::verify::verify(&program)
        .map_err(|e| CompileError::new(0, format!("internal codegen error: {e}")))?;
    Ok(program)
}

struct LoopCtx {
    continue_label: Label,
    break_label: Label,
}

struct Codegen<'p, 'a> {
    fb: FunctionBuilder<'p>,
    ids: &'a HashMap<&'a str, FuncId>,
    decls: &'a SourceFile,
    scopes: Vec<HashMap<String, u16>>,
    loops: Vec<LoopCtx>,
}

impl Codegen<'_, '_> {
    fn lookup(&self, name: &str) -> Option<u16> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn arity_of(&self, id: FuncId) -> usize {
        self.decls.functions[id.index()].params.len()
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        match stmt {
            Stmt::Let { name, value, line } => {
                self.expr(value)?;
                let scope = self.scopes.last_mut().expect("scope stack never empty");
                if scope.contains_key(name) {
                    return Err(CompileError::new(
                        *line,
                        format!("variable `{name}` already defined in this scope"),
                    ));
                }
                let slot = self.fb.new_local();
                self.scopes
                    .last_mut()
                    .expect("scope stack never empty")
                    .insert(name.clone(), slot);
                self.fb.emit(Instr::Store(slot));
            }
            Stmt::Assign { name, value, line } => {
                let Some(slot) = self.lookup(name) else {
                    return Err(CompileError::new(
                        *line,
                        format!("assignment to undefined variable `{name}`"),
                    ));
                };
                self.expr(value)?;
                self.fb.emit(Instr::Store(slot));
            }
            Stmt::AssignIndex {
                array,
                index,
                value,
            } => {
                self.expr(array)?;
                self.expr(index)?;
                self.expr(value)?;
                self.fb.emit(Instr::AStore);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let l_else = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.expr(cond)?;
                self.fb.jump_if_not(l_else);
                self.block(then_body)?;
                self.fb.jump(l_end);
                self.fb.bind(l_else);
                self.block(else_body)?;
                self.fb.bind(l_end);
            }
            Stmt::While { cond, body } => {
                let l_top = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.fb.bind(l_top);
                self.expr(cond)?;
                self.fb.jump_if_not(l_end);
                self.loops.push(LoopCtx {
                    continue_label: l_top,
                    break_label: l_end,
                });
                self.block(body)?;
                self.loops.pop();
                self.fb.jump(l_top);
                self.fb.bind(l_end);
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                // The init variable is scoped to the whole loop.
                self.scopes.push(HashMap::new());
                self.stmt(init)?;
                let l_top = self.fb.new_label();
                let l_update = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.fb.bind(l_top);
                self.expr(cond)?;
                self.fb.jump_if_not(l_end);
                self.loops.push(LoopCtx {
                    continue_label: l_update,
                    break_label: l_end,
                });
                self.block(body)?;
                self.loops.pop();
                self.fb.bind(l_update);
                self.stmt(update)?;
                self.fb.jump(l_top);
                self.fb.bind(l_end);
                self.scopes.pop();
            }
            Stmt::Return(value) => {
                match value {
                    Some(e) => self.expr(e)?,
                    None => {
                        self.fb.emit(Instr::Null);
                    }
                }
                self.fb.emit(Instr::Return);
            }
            Stmt::Break { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(CompileError::new(*line, "`break` outside a loop"));
                };
                let label = ctx.break_label;
                self.fb.jump(label);
            }
            Stmt::Continue { line } => {
                let Some(ctx) = self.loops.last() else {
                    return Err(CompileError::new(*line, "`continue` outside a loop"));
                };
                let label = ctx.continue_label;
                self.fb.jump(label);
            }
            Stmt::Print(e) => {
                self.expr(e)?;
                self.fb.emit(Instr::Print);
            }
            Stmt::Publish { name, value } => {
                self.expr(value)?;
                let s = self.fb.intern(name);
                self.fb.emit(Instr::Publish(s));
            }
            Stmt::Done => {
                self.fb.emit(Instr::Done);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.fb.emit(Instr::Pop);
            }
            Stmt::Block(stmts) => self.block(stmts)?,
        }
        Ok(())
    }

    fn expr(&mut self, expr: &Expr) -> Result<(), CompileError> {
        match expr {
            Expr::Int(v) => {
                self.fb.emit(Instr::Const(*v));
            }
            Expr::Float(v) => {
                self.fb.emit(Instr::FConst(*v));
            }
            Expr::Null => {
                self.fb.emit(Instr::Null);
            }
            Expr::Var { name, line } => {
                let Some(slot) = self.lookup(name) else {
                    return Err(CompileError::new(
                        *line,
                        format!("undefined variable `{name}`"),
                    ));
                };
                self.fb.emit(Instr::Load(slot));
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.fb.emit(binary_instr(*op));
            }
            Expr::And(a, b) => {
                let l_false = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.expr(a)?;
                self.fb.jump_if_not(l_false);
                self.expr(b)?;
                self.fb.jump_if_not(l_false);
                self.fb.emit(Instr::Const(1));
                self.fb.jump(l_end);
                self.fb.bind(l_false);
                self.fb.emit(Instr::Const(0));
                self.fb.bind(l_end);
            }
            Expr::Or(a, b) => {
                let l_true = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.expr(a)?;
                self.fb.jump_if(l_true);
                self.expr(b)?;
                self.fb.jump_if(l_true);
                self.fb.emit(Instr::Const(0));
                self.fb.jump(l_end);
                self.fb.bind(l_true);
                self.fb.emit(Instr::Const(1));
                self.fb.bind(l_end);
            }
            Expr::Neg(e) => {
                self.expr(e)?;
                self.fb.emit(Instr::Neg);
            }
            Expr::Not(e) => {
                let l_truthy = self.fb.new_label();
                let l_end = self.fb.new_label();
                self.expr(e)?;
                self.fb.jump_if(l_truthy);
                self.fb.emit(Instr::Const(1));
                self.fb.jump(l_end);
                self.fb.bind(l_truthy);
                self.fb.emit(Instr::Const(0));
                self.fb.bind(l_end);
            }
            Expr::Call { name, args, line } => {
                let Some(&id) = self.ids.get(name.as_str()) else {
                    return Err(CompileError::new(
                        *line,
                        format!("call to undefined function `{name}`"),
                    ));
                };
                let arity = self.arity_of(id);
                if args.len() != arity {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` takes {arity} argument(s), got {}", args.len()),
                    ));
                }
                for a in args {
                    self.expr(a)?;
                }
                self.fb.emit(Instr::Call(id));
            }
            Expr::Builtin { builtin, args, .. } => {
                for a in args {
                    self.expr(a)?;
                }
                self.fb.emit(builtin_instr(*builtin));
            }
            Expr::Index { array, index } => {
                self.expr(array)?;
                self.expr(index)?;
                self.fb.emit(Instr::ALoad);
            }
            Expr::NewArray(len) => {
                self.expr(len)?;
                self.fb.emit(Instr::NewArray);
            }
        }
        Ok(())
    }
}

fn binary_instr(op: BinaryOp) -> Instr {
    match op {
        BinaryOp::Add => Instr::Add,
        BinaryOp::Sub => Instr::Sub,
        BinaryOp::Mul => Instr::Mul,
        BinaryOp::Div => Instr::Div,
        BinaryOp::Rem => Instr::Rem,
        BinaryOp::Eq => Instr::CmpEq,
        BinaryOp::Ne => Instr::CmpNe,
        BinaryOp::Lt => Instr::CmpLt,
        BinaryOp::Le => Instr::CmpLe,
        BinaryOp::Gt => Instr::CmpGt,
        BinaryOp::Ge => Instr::CmpGe,
        BinaryOp::BitAnd => Instr::BitAnd,
        BinaryOp::BitOr => Instr::BitOr,
        BinaryOp::BitXor => Instr::BitXor,
        BinaryOp::Shl => Instr::Shl,
        BinaryOp::Shr => Instr::Shr,
    }
}

fn builtin_instr(b: Builtin) -> Instr {
    match b {
        Builtin::Sqrt => Instr::Math(MathFn::Sqrt),
        Builtin::Sin => Instr::Math(MathFn::Sin),
        Builtin::Cos => Instr::Math(MathFn::Cos),
        Builtin::Exp => Instr::Math(MathFn::Exp),
        Builtin::Log => Instr::Math(MathFn::Log),
        Builtin::Abs => Instr::Math(MathFn::Abs),
        Builtin::Floor => Instr::Math(MathFn::Floor),
        Builtin::Pow => Instr::Math(MathFn::Pow),
        Builtin::Min => Instr::Math(MathFn::Min),
        Builtin::Max => Instr::Math(MathFn::Max),
        Builtin::Len => Instr::ALen,
        Builtin::Int => Instr::ToInt,
        Builtin::Float => Instr::ToFloat,
    }
}
