//! The MiniJava lexer.

use crate::error::CompileError;
use crate::token::{Spanned, Token};

/// Tokenize `source`.
///
/// # Errors
///
/// Returns [`CompileError`] on unterminated strings/comments, malformed
/// numbers, or unexpected characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let mut out = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let err = |line: usize, message: String| CompileError { line, message };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(start_line, "unterminated block comment".into()));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None | Some(b'\n') => {
                            return Err(err(start_line, "unterminated string literal".into()))
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Spanned {
                    token: Token::Str(s),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len()
                    && bytes[i] == b'.'
                    && (bytes[i + 1] as char).is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &source[start..i];
                let token = if is_float {
                    Token::Float(
                        text.parse()
                            .map_err(|_| err(line, format!("bad float literal `{text}`")))?,
                    )
                } else {
                    Token::Int(
                        text.parse()
                            .map_err(|_| err(line, format!("bad integer literal `{text}`")))?,
                    )
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &source[start..i];
                let token = Token::keyword(text).unwrap_or_else(|| Token::Ident(text.to_owned()));
                out.push(Spanned { token, line });
            }
            _ => {
                let two = |a: u8| bytes.get(i + 1) == Some(&a);
                let (token, width) = match c {
                    '(' => (Token::LParen, 1),
                    ')' => (Token::RParen, 1),
                    '{' => (Token::LBrace, 1),
                    '}' => (Token::RBrace, 1),
                    '[' => (Token::LBracket, 1),
                    ']' => (Token::RBracket, 1),
                    ',' => (Token::Comma, 1),
                    ';' => (Token::Semi, 1),
                    '+' => (Token::Plus, 1),
                    '-' => (Token::Minus, 1),
                    '*' => (Token::Star, 1),
                    '/' => (Token::Slash, 1),
                    '%' => (Token::Percent, 1),
                    '^' => (Token::Caret, 1),
                    '=' if two(b'=') => (Token::EqEq, 2),
                    '=' => (Token::Assign, 1),
                    '!' if two(b'=') => (Token::NotEq, 2),
                    '!' => (Token::Bang, 1),
                    '<' if two(b'=') => (Token::Le, 2),
                    '<' if two(b'<') => (Token::Shl, 2),
                    '<' => (Token::Lt, 1),
                    '>' if two(b'=') => (Token::Ge, 2),
                    '>' if two(b'>') => (Token::Shr, 2),
                    '>' => (Token::Gt, 1),
                    '&' if two(b'&') => (Token::AndAnd, 2),
                    '&' => (Token::Amp, 1),
                    '|' if two(b'|') => (Token::OrOr, 2),
                    '|' => (Token::Pipe, 1),
                    other => return Err(err(line, format!("unexpected character `{other}`"))),
                };
                out.push(Spanned { token, line });
                i += width;
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_a_function_header() {
        assert_eq!(
            toks("fn main() {}"),
            vec![
                Token::Fn,
                Token::Ident("main".into()),
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("1 2.5 1e3 10.25e-2 7"),
            vec![
                Token::Int(1),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.1025),
                Token::Int(7),
                Token::Eof
            ]
        );
    }

    #[test]
    fn dot_without_digits_is_not_a_float() {
        // `2.foo` is not valid MiniJava but must not lex as a float.
        assert!(lex("2.foo").is_err() || !toks("2 . foo").is_empty());
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || << >> < >"),
            vec![
                Token::EqEq,
                Token::NotEq,
                Token::Le,
                Token::Ge,
                Token::AndAnd,
                Token::OrOr,
                Token::Shl,
                Token::Shr,
                Token::Lt,
                Token::Gt,
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line\n/* block\n spanning */ 2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn strings_and_keywords() {
        assert_eq!(
            toks("publish \"nodes\", n;"),
            vec![
                Token::Publish,
                Token::Str("nodes".into()),
                Token::Comma,
                Token::Ident("n".into()),
                Token::Semi,
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = lex("let x = 1;\nlet y = @;").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
