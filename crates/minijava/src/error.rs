//! MiniJava compilation errors.

use std::fmt;

/// A compile error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line (0 when not attributable).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Construct an error at `line`.
    pub fn new(line: usize, message: impl Into<String>) -> CompileError {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for CompileError {}
