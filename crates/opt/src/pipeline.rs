//! The per-level compilation pipelines and the compiled-code artifact.

use std::fmt;
use std::sync::Arc;

use evovm_bytecode::program::{Function, Program};
use evovm_bytecode::verify::verify_function_facts;
use evovm_bytecode::{FuncId, Instr, VerifyError};

use crate::levels::OptLevel;
use crate::passes::{dce, dse, fold, fuse, inline, peephole, quicken};

/// A pass pipeline emitted code that fails re-verification — a
/// miscompilation caught before the bad code could reach the interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Name of the miscompiled function.
    pub function: String,
    /// Its id in the program.
    pub id: FuncId,
    /// The level whose pipeline produced the bad code.
    pub level: OptLevel,
    /// What the verifier rejected about the emitted code.
    pub source: VerifyError,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pipeline miscompiled `{}` ({}): {}",
            self.level, self.function, self.id, self.source
        )
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// The result of compiling one function at one level: executable code plus
/// the cost accounting the VM charges for producing it.
#[derive(Debug, Clone)]
pub struct CompiledCode {
    /// The level this code was compiled at.
    pub level: OptLevel,
    /// The (possibly transformed) instruction stream.
    pub code: Arc<Vec<Instr>>,
    /// Local slots required (inlining may add slots).
    pub locals: u16,
    /// Virtual cycles charged for the compilation itself.
    pub compile_cycles: u64,
    /// Per-executed-instruction cycle multiplier (models native code
    /// quality; see [`OptLevel::quality_for`]).
    pub quality: f64,
    /// [`CompiledCode::quality`] in the VM's integer milli-cycle domain
    /// (see [`OptLevel::quality_milli_for`]).
    pub quality_milli: u64,
    /// Folded per-instruction charge table, parallel to
    /// [`CompiledCode::code`]: `cost_milli[i]` is exactly
    /// `code[i].base_cost() * quality_milli`, precomputed here so the
    /// interpreter's hot loop does one indexed load per instruction
    /// instead of a multiply through two indirections.
    pub cost_milli: Arc<Vec<u64>>,
    /// Maximum operand-stack depth this code can reach, proved by the
    /// verifier's dataflow pass. The interpreter reserves
    /// `locals + max_stack` arena slots at frame entry, which is what
    /// lets its push sites skip the capacity check.
    pub max_stack: u32,
}

/// The optimizing compiler: applies the pass pipeline for a level.
#[derive(Debug, Clone)]
pub struct Optimizer {
    inline_budget: inline::InlineBudget,
    /// Fuse hot opcode pairs into superinstructions at O1/O2 (on by
    /// default; the VM's dispatch profiler turns it off to observe the
    /// raw pair distribution).
    fuse: bool,
}

impl Default for Optimizer {
    fn default() -> Optimizer {
        Optimizer {
            inline_budget: inline::InlineBudget::default(),
            fuse: true,
        }
    }
}

impl Optimizer {
    /// Create an optimizer with default budgets.
    pub fn new() -> Optimizer {
        Optimizer::default()
    }

    /// Enable or disable superinstruction fusion at O1/O2.
    ///
    /// Fusion never changes the virtual clock (fused costs are the sum of
    /// their parts and compilation charges by *source* length), so this
    /// switch only affects which instruction stream the host executes.
    #[must_use]
    pub fn with_fusion(mut self, fuse: bool) -> Optimizer {
        self.fuse = fuse;
        self
    }

    /// Compile `id` at `level`, transforming the original bytecode.
    ///
    /// The output is always re-verified (the verifier's dataflow also
    /// proves the `max_stack` bound the interpreter's arena reservation
    /// relies on); a miscompile panics. Use
    /// [`Optimizer::compile_checked`] where a structured error is
    /// preferable to a panic.
    pub fn compile(&self, program: &Program, id: FuncId, level: OptLevel) -> CompiledCode {
        self.compile_checked(program, id, level)
            .expect("optimizer produced unverifiable code")
    }

    /// Compile `id` at `level` and re-verify the emitted code in *every*
    /// build profile, returning a structured [`CompileError`] instead of
    /// letting a miscompiled function reach the interpreter.
    pub fn compile_checked(
        &self,
        program: &Program,
        id: FuncId,
        level: OptLevel,
    ) -> Result<CompiledCode, CompileError> {
        let (code, locals) = self.run_pipeline(program, id, level);
        let max_stack = Self::reverify(program, id, level, &code, locals)?;
        Ok(self.package(program, id, level, code, locals, max_stack))
    }

    /// Run the level's pass pipeline, producing transformed code and the
    /// (possibly inlining-grown) locals count.
    fn run_pipeline(&self, program: &Program, id: FuncId, level: OptLevel) -> (Vec<Instr>, u16) {
        let f = program.function(id);
        match level {
            OptLevel::Baseline | OptLevel::O0 => (f.code.clone(), f.locals),
            OptLevel::O1 => (
                self.o1_pipeline(program, f, f.code.clone(), f.locals),
                f.locals,
            ),
            OptLevel::O2 => {
                let (code, locals) = inline::run(program, id, f, self.inline_budget);
                (self.o1_pipeline(program, f, code, locals), locals)
            }
        }
    }

    /// Verify pipeline output against the surrounding program, returning
    /// the proven operand-stack bound.
    fn reverify(
        program: &Program,
        id: FuncId,
        level: OptLevel,
        code: &[Instr],
        locals: u16,
    ) -> Result<u32, CompileError> {
        let f = program.function(id);
        let check = Function {
            name: f.name.clone(),
            arity: f.arity,
            locals,
            code: code.to_vec(),
        };
        verify_function_facts(program, id, &check)
            .map(|facts| facts.max_stack as u32)
            .map_err(|source| CompileError {
                function: f.name.clone(),
                id,
                level,
                source,
            })
    }

    /// Wrap pipeline output in the [`CompiledCode`] cost accounting.
    #[allow(clippy::too_many_arguments)]
    fn package(
        &self,
        program: &Program,
        id: FuncId,
        level: OptLevel,
        code: Vec<Instr>,
        locals: u16,
        max_stack: u32,
    ) -> CompiledCode {
        let f = program.function(id);
        let compile_cycles = level.compile_cost_per_instr() * f.code.len() as u64;
        let quality = level.quality_for(&f.name);
        let quality_milli = level.quality_milli_for(&f.name);
        let cost_milli = code.iter().map(|i| i.base_cost() * quality_milli).collect();
        CompiledCode {
            level,
            code: Arc::new(code),
            locals,
            compile_cycles,
            quality,
            quality_milli,
            cost_milli: Arc::new(cost_milli),
            max_stack,
        }
    }

    /// The O1 pass sequence over `code` (which may already be inlined and
    /// thus use more locals than `f` declares).
    fn o1_pipeline(
        &self,
        program: &Program,
        f: &Function,
        code: Vec<Instr>,
        locals: u16,
    ) -> Vec<Instr> {
        let mut code = code;
        // Two rounds reach a fixpoint for virtually all code we generate;
        // quickening and dead-store elimination sit between them so the
        // second round folds specialized forms and erases the producers of
        // stores the first round proved dead.
        for round in 0..2 {
            code = fold::run(&code);
            code = peephole::run(&code);
            code = dce::run(&code, f.arity, locals);
            if round == 0 {
                let tmp = Function {
                    name: f.name.clone(),
                    arity: f.arity,
                    locals,
                    code,
                };
                code = quicken::run(program, &tmp);
                code = dse::run(&code, locals);
            }
        }
        // Fusion runs last: it only ever *merges* adjacent instructions
        // the earlier passes decided to keep, so nothing downstream has
        // to understand fused forms.
        if self.fuse {
            code = fuse::run(&code);
        }
        code
    }
}

/// Transform a whole program through the `level` pipeline: every function
/// is compiled at `level`, re-verified, and reassembled into a new
/// [`Program`] with the same strings and entry.
///
/// Because [`Optimizer::compile`] is deterministic, the result is exactly
/// the code a VM executes when its policy pins every method at `level` —
/// which makes this the program a linter or static analyzer should look at
/// to police the optimizer's output.
///
/// # Errors
///
/// Returns the first [`CompileError`] if any function's emitted code fails
/// re-verification.
pub fn optimize_program(program: &Program, level: OptLevel) -> Result<Program, CompileError> {
    let optimizer = Optimizer::new();
    let mut functions = Vec::with_capacity(program.functions().len());
    for (i, f) in program.functions().iter().enumerate() {
        let id = FuncId(i as u32);
        let cc = optimizer.compile_checked(program, id, level)?;
        functions.push(Function {
            name: f.name.clone(),
            arity: f.arity,
            locals: cc.locals,
            code: cc.code.to_vec(),
        });
    }
    Ok(Program::from_parts(
        functions,
        program.strings().to_vec(),
        program.entry(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;
    use evovm_bytecode::scalar::{BinOp, CmpOp};

    const PROGRAM: &str = "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 2
  const 3
  mul
  const 94
  add
  cmpge
  jumpif end
  load 0
  call double
  print
  load 0
  const 1
  add
  store 0
  jump top
end:
  null
  return
}
func double/1 {
  load 0
  const 2
  mul
  return
}";

    #[test]
    fn baseline_and_o0_keep_code_verbatim() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        for level in [OptLevel::Baseline, OptLevel::O0] {
            let cc = opt.compile(&p, p.entry(), level);
            assert_eq!(*cc.code, p.function(p.entry()).code);
        }
    }

    #[test]
    fn o1_folds_and_quickens() {
        let p = parse(PROGRAM).unwrap();
        // With fusion off: 2*3+94 folded to 100, loop arithmetic
        // quickened to the int-specialized forms.
        let unfused = Optimizer::new()
            .with_fusion(false)
            .compile(&p, p.entry(), OptLevel::O1);
        assert!(
            unfused.code.contains(&Instr::Const(100)),
            "{:?}",
            unfused.code
        );
        assert!(unfused.code.contains(&Instr::ICmpGe));
        assert!(unfused.code.contains(&Instr::IAdd));
        assert!(unfused.code.len() < p.function(p.entry()).code.len());
        // The default pipeline additionally fuses those results into
        // superinstructions: the folded constant and quickened ops
        // survive inside the fused forms.
        let cc = Optimizer::new().compile(&p, p.entry(), OptLevel::O1);
        assert!(cc.code.contains(&Instr::LoadConst(0, 100)), "{:?}", cc.code);
        assert!(cc
            .code
            .iter()
            .any(|i| matches!(i, Instr::ICmpBr(CmpOp::Ge, _, true))));
        assert!(cc.code.contains(&Instr::IBinStore(BinOp::Add, 0)));
        assert!(cc.code.len() < unfused.code.len());
    }

    #[test]
    fn o2_inlines_the_callee() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        let cc = opt.compile(&p, p.entry(), OptLevel::O2);
        assert!(!cc.code.iter().any(|i| matches!(i, Instr::Call(_))));
        assert!(cc.locals > p.function(p.entry()).locals);
    }

    #[test]
    fn cost_table_is_the_folded_product() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        for level in OptLevel::ALL {
            let cc = opt.compile(&p, p.entry(), level);
            assert_eq!(cc.cost_milli.len(), cc.code.len());
            assert_eq!(cc.quality_milli, (cc.quality * 1000.0).round() as u64);
            for (instr, cost) in cc.code.iter().zip(cc.cost_milli.iter()) {
                assert_eq!(*cost, instr.base_cost() * cc.quality_milli);
            }
        }
    }

    #[test]
    fn compile_cost_scales_with_level() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        let costs: Vec<u64> = OptLevel::ALL
            .iter()
            .map(|&l| opt.compile(&p, p.entry(), l).compile_cycles)
            .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
    }

    #[test]
    fn compile_checked_matches_compile_on_good_code() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        for level in OptLevel::ALL {
            let checked = opt.compile_checked(&p, p.entry(), level).unwrap();
            let plain = opt.compile(&p, p.entry(), level);
            assert_eq!(*checked.code, *plain.code);
            assert_eq!(checked.locals, plain.locals);
            assert_eq!(checked.compile_cycles, plain.compile_cycles);
        }
    }

    #[test]
    fn optimize_program_reassembles_every_function_verified() {
        let p = parse(PROGRAM).unwrap();
        for level in OptLevel::ALL {
            let out = optimize_program(&p, level).unwrap();
            assert_eq!(out.functions().len(), p.functions().len());
            assert_eq!(out.entry(), p.entry());
            assert_eq!(out.strings(), p.strings());
            evovm_bytecode::verify::verify(&out).expect("transformed program verifies whole");
            let opt = Optimizer::new();
            for (i, f) in out.functions().iter().enumerate() {
                let cc = opt.compile(&p, FuncId(i as u32), level);
                assert_eq!(
                    f.code, *cc.code,
                    "optimize_program must equal compile at {level}"
                );
                assert_eq!(f.locals, cc.locals);
            }
        }
    }

    #[test]
    fn quality_improves_with_level_for_most_methods() {
        let p = parse(PROGRAM).unwrap();
        let opt = Optimizer::new();
        let q: Vec<f64> = [OptLevel::Baseline, OptLevel::O0, OptLevel::O1]
            .iter()
            .map(|&l| opt.compile(&p, p.entry(), l).quality)
            .collect();
        assert!(q.windows(2).all(|w| w[0] > w[1]), "{q:?}");
    }
}
