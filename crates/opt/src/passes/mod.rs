//! The optimization passes.
//!
//! Each pass is a pure function from a function's code (plus program
//! context) to new code; the [`crate::pipeline`] module sequences them per
//! level. All passes preserve the observable semantics of the verified
//! input — the workspace's differential tests execute every workload at
//! every level and compare outputs instruction-for-instruction.

pub mod dce;
pub mod dse;
pub mod fold;
pub mod fuse;
pub mod inline;
pub mod peephole;
pub mod quicken;

use evovm_bytecode::Instr;

/// Positions that are branch targets (or the entry); patterns that fuse an
/// instruction with its successor must not fuse across these.
pub(crate) fn leaders(code: &[Instr]) -> Vec<bool> {
    let mut is_leader = vec![false; code.len()];
    if !code.is_empty() {
        is_leader[0] = true;
    }
    for (pc, instr) in code.iter().enumerate() {
        if let Some(t) = instr.branch_target() {
            is_leader[t as usize] = true;
        }
        if (instr.is_branch() || matches!(instr, Instr::Return)) && pc + 1 < code.len() {
            is_leader[pc + 1] = true;
        }
    }
    is_leader
}
