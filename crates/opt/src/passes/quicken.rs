//! Quickening: specialize generic (polymorphic) arithmetic and comparison
//! opcodes into typed variants when intra-procedural type inference proves
//! the operand types.
//!
//! This is the bytecode-level analog of what real JITs gain from replacing
//! dynamically-dispatched operations with direct machine instructions; in
//! our cost model the typed variants execute at a fraction of the generic
//! opcodes' cycle cost ([`Instr::base_cost`]).

use evovm_bytecode::program::{Function, Program};
use evovm_bytecode::Instr;

use crate::analysis::{infer, Ty, TypeInfo};

/// Quicken `f`'s code using type inference over `program`.
pub fn run(program: &Program, f: &Function) -> Vec<Instr> {
    let info = infer(program, f);
    f.code
        .iter()
        .enumerate()
        .map(|(pc, instr)| rewrite(*instr, pc, &info))
        .collect()
}

fn rewrite(instr: Instr, pc: usize, info: &TypeInfo) -> Instr {
    let bin = info.bin_operands.get(pc).copied().flatten();
    let un = info.un_operands.get(pc).copied().flatten();
    let both_int = matches!(bin, Some((Ty::Int, Ty::Int)));
    let both_float = matches!(bin, Some((Ty::Float, Ty::Float)));
    match instr {
        Instr::Add if both_int => Instr::IAdd,
        Instr::Sub if both_int => Instr::ISub,
        Instr::Mul if both_int => Instr::IMul,
        Instr::Div if both_int => Instr::IDiv,
        Instr::Rem if both_int => Instr::IRem,
        Instr::Add if both_float => Instr::FAdd,
        Instr::Sub if both_float => Instr::FSub,
        Instr::Mul if both_float => Instr::FMul,
        Instr::Div if both_float => Instr::FDiv,

        Instr::CmpEq if both_int => Instr::ICmpEq,
        Instr::CmpNe if both_int => Instr::ICmpNe,
        Instr::CmpLt if both_int => Instr::ICmpLt,
        Instr::CmpLe if both_int => Instr::ICmpLe,
        Instr::CmpGt if both_int => Instr::ICmpGt,
        Instr::CmpGe if both_int => Instr::ICmpGe,
        Instr::CmpEq if both_float => Instr::FCmpEq,
        Instr::CmpNe if both_float => Instr::FCmpNe,
        Instr::CmpLt if both_float => Instr::FCmpLt,
        Instr::CmpLe if both_float => Instr::FCmpLe,
        Instr::CmpGt if both_float => Instr::FCmpGt,
        Instr::CmpGe if both_float => Instr::FCmpGe,

        Instr::Neg if un == Some(Ty::Int) => Instr::INeg,
        Instr::Neg if un == Some(Ty::Float) => Instr::FNeg,

        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;

    fn quicken_entry(src: &str) -> Vec<Instr> {
        let p = parse(src).unwrap();
        evovm_bytecode::verify::verify(&p).unwrap();
        run(&p, p.function(p.entry()))
    }

    #[test]
    fn specializes_int_loop_arithmetic() {
        let out = quicken_entry(
            "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 100
  cmpge
  jumpif end
  load 0
  const 1
  add
  store 0
  jump top
end:
  null
  return
}",
        );
        assert_eq!(out[4], Instr::ICmpGe);
        assert_eq!(out[8], Instr::IAdd);
    }

    #[test]
    fn specializes_float_chains() {
        let out = quicken_entry(
            "entry func main/0 locals=1 {
  fconst 0.5
  store 0
  load 0
  load 0
  mul
  neg
  print
  null
  return
}",
        );
        assert_eq!(out[4], Instr::FMul);
        assert_eq!(out[5], Instr::FNeg);
    }

    #[test]
    fn leaves_unknown_types_generic() {
        let src = "entry func main/0 {\n  null\n  return\n}\nfunc f/2 {\n  load 0\n  load 1\n  add\n  return\n}";
        let p = parse(src).unwrap();
        let f = p.function(p.find("f").unwrap());
        let out = run(&p, f);
        assert_eq!(out[2], Instr::Add);
    }

    #[test]
    fn leaves_mixed_types_generic() {
        let out = quicken_entry(
            "entry func main/0 {\n  const 1\n  fconst 2.0\n  add\n  print\n  null\n  return\n}",
        );
        assert_eq!(out[2], Instr::Add);
    }

    #[test]
    fn code_length_is_preserved() {
        let src = "entry func main/0 {\n  const 1\n  const 2\n  add\n  print\n  null\n  return\n}";
        let p = parse(src).unwrap();
        let f = p.function(p.entry());
        assert_eq!(run(&p, f).len(), f.code.len());
    }
}
