//! Dead-store elimination, backed by backward liveness analysis of local
//! slots.
//!
//! A `Store(n)` whose slot is never loaded again before being overwritten
//! (or before the function returns) is replaced by `Pop`; the peephole
//! pass then erases the producer/`Pop` pair when the stored value was
//! side-effect-free. Together with inlining this cleans up the argument
//! shuffling of inlined call sites whose parameters fold away.

use evovm_bytecode::Instr;

/// Locals bitset; functions with more than 128 slots skip the pass
/// (none of our code generators produce that many).
type LiveSet = u128;

/// Run dead-store elimination over `code` with `locals` slots.
pub fn run(code: &[Instr], locals: u16) -> Vec<Instr> {
    if locals == 0 || locals > 128 || code.is_empty() {
        return code.to_vec();
    }
    let live_out = liveness(code);
    code.iter()
        .enumerate()
        .map(|(pc, instr)| match instr {
            Instr::Store(n) if live_out[pc] & (1u128 << n) == 0 => Instr::Pop,
            other => *other,
        })
        .collect()
}

/// Backward dataflow: for every instruction, the set of locals live
/// *after* it executes.
fn liveness(code: &[Instr]) -> Vec<LiveSet> {
    let len = code.len();
    // Predecessors of every instruction.
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); len];
    for (pc, instr) in code.iter().enumerate() {
        if let Some(t) = instr.branch_target() {
            preds[t as usize].push(pc as u32);
        }
        if !instr.is_terminator() && pc + 1 < len {
            preds[pc + 1].push(pc as u32);
        }
    }
    let mut live_in: Vec<LiveSet> = vec![0; len];
    let mut live_out: Vec<LiveSet> = vec![0; len];
    // Seed the worklist with everything; iterate to fixpoint.
    let mut work: Vec<u32> = (0..len as u32).rev().collect();
    while let Some(pc) = work.pop() {
        let i = pc as usize;
        let instr = &code[i];
        let mut out: LiveSet = 0;
        if let Some(t) = instr.branch_target() {
            out |= live_in[t as usize];
        }
        if !instr.is_terminator() && i + 1 < len {
            out |= live_in[i + 1];
        }
        let inn = match instr {
            Instr::Load(n) => out | (1u128 << n),
            Instr::Store(n) => out & !(1u128 << n),
            _ => out,
        };
        if out != live_out[i] || inn != live_in[i] {
            live_out[i] = out;
            live_in[i] = inn;
            work.extend(preds[i].iter().copied());
        }
    }
    live_out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_a_store_never_read() {
        let code = vec![
            Instr::Const(5),
            Instr::Store(0), // dead: slot 0 never loaded
            Instr::Const(7),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code, 1);
        assert_eq!(out[1], Instr::Pop);
    }

    #[test]
    fn keeps_a_store_that_is_read() {
        let code = vec![
            Instr::Const(5),
            Instr::Store(0),
            Instr::Load(0),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code, 1), code);
    }

    #[test]
    fn overwritten_store_is_dead() {
        let code = vec![
            Instr::Const(1),
            Instr::Store(0), // dead: overwritten before any load
            Instr::Const(2),
            Instr::Store(0),
            Instr::Load(0),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code, 1);
        assert_eq!(out[1], Instr::Pop);
        assert_eq!(out[3], Instr::Store(0));
    }

    #[test]
    fn loop_carried_locals_stay_live() {
        // i is stored before the loop and read inside it via a back edge.
        let code = vec![
            Instr::Const(0),
            Instr::Store(0), // live around the loop
            Instr::Load(0),  // 2: loop head
            Instr::Const(10),
            Instr::ICmpGe,
            Instr::JumpIf(11),
            Instr::Load(0),
            Instr::Const(1),
            Instr::IAdd,
            Instr::Store(0), // live: read by the back edge
            Instr::Jump(2),
            Instr::Null, // 11
            Instr::Return,
        ];
        assert_eq!(run(&code, 1), code);
    }

    #[test]
    fn store_live_on_one_branch_only_is_kept() {
        let code = vec![
            Instr::Const(9),
            Instr::Store(0),
            Instr::Const(1),
            Instr::JumpIf(6),
            Instr::Load(0), // only this path reads slot 0
            Instr::Print,
            Instr::Null, // 6
            Instr::Return,
        ];
        assert_eq!(run(&code, 1), code);
    }

    #[test]
    fn stores_dead_on_all_paths_are_removed() {
        let code = vec![
            Instr::Const(9),
            Instr::Store(0), // dead on both paths
            Instr::Const(1),
            Instr::JumpIf(5),
            Instr::Nop,
            Instr::Null, // 5
            Instr::Return,
        ];
        let out = run(&code, 1);
        assert_eq!(out[1], Instr::Pop);
    }

    #[test]
    fn too_many_locals_skips_safely() {
        let code = vec![Instr::Const(1), Instr::Store(0), Instr::Null, Instr::Return];
        assert_eq!(run(&code, 200), code);
    }
}
