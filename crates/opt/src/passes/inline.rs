//! Method inlining (the O2 flagship pass).
//!
//! A call site `... args, Call(g) ...` is expanded into
//!
//! ```text
//!   store argN-1 .. store arg0        ; into fresh local slots
//!   <g's body, locals remapped, Return -> Jump(after)>
//! after:
//! ```
//!
//! Every `Return` in the callee leaves exactly the return value on the
//! stack (the verifier guarantees it), so rewriting it to a jump past the
//! inlined body preserves the call's stack effect exactly.

use evovm_bytecode::program::{Function, Program};
use evovm_bytecode::{FuncId, Instr};

/// Inlining thresholds.
#[derive(Debug, Clone, Copy)]
pub struct InlineBudget {
    /// Maximum callee size (instructions) considered for inlining.
    pub max_callee_len: usize,
    /// Maximum total instructions added to one caller.
    pub max_growth: usize,
}

impl Default for InlineBudget {
    fn default() -> InlineBudget {
        InlineBudget {
            max_callee_len: 32,
            max_growth: 256,
        }
    }
}

/// Inline eligible call sites of `f` (which has id `self_id` in
/// `program`). Returns the new code and the new local-slot count.
pub fn run(
    program: &Program,
    self_id: FuncId,
    f: &Function,
    budget: InlineBudget,
) -> (Vec<Instr>, u16) {
    // Select sites.
    let mut growth = 0usize;
    let mut expanded: Vec<Option<FuncId>> = Vec::with_capacity(f.code.len());
    for instr in &f.code {
        let mut site = None;
        if let Instr::Call(callee_id) = instr {
            if *callee_id != self_id {
                let callee = program.function(*callee_id);
                let cost = callee.arity as usize + callee.code.len();
                if callee.code.len() <= budget.max_callee_len
                    && growth + cost <= budget.max_growth
                    && u32::from(f.locals) + u32::from(callee.locals) <= u16::MAX as u32
                {
                    site = Some(*callee_id);
                    growth += cost; // replaces 1 Call with `cost` instrs
                }
            }
        }
        expanded.push(site);
    }
    if expanded.iter().all(Option::is_none) {
        return (f.code.clone(), f.locals);
    }

    // Compute the new position of every old pc.
    let mut new_at = vec![0u32; f.code.len() + 1];
    let mut pos = 0u32;
    for (pc, site) in expanded.iter().enumerate() {
        new_at[pc] = pos;
        pos += match site {
            Some(callee_id) => {
                let callee = program.function(*callee_id);
                (callee.arity as usize + callee.code.len()) as u32
            }
            None => 1,
        };
    }
    new_at[f.code.len()] = pos;

    // Emit.
    let mut out: Vec<Instr> = Vec::with_capacity(pos as usize);
    let mut locals = f.locals;
    for (pc, instr) in f.code.iter().enumerate() {
        match expanded[pc] {
            None => {
                let rewritten = match instr.branch_target() {
                    Some(t) => instr.with_branch_target(new_at[t as usize]),
                    None => *instr,
                };
                out.push(rewritten);
            }
            Some(callee_id) => {
                let callee = program.function(callee_id);
                let base = locals;
                locals += callee.locals;
                // Arguments are on the stack with the last on top.
                for i in (0..callee.arity).rev() {
                    out.push(Instr::Store(base + i));
                }
                let body_start = new_at[pc] + callee.arity as u32;
                let after = new_at[pc + 1];
                for body_instr in &callee.code {
                    let remapped = match body_instr {
                        Instr::Load(n) => Instr::Load(base + n),
                        Instr::Store(n) => Instr::Store(base + n),
                        Instr::Return => Instr::Jump(after),
                        other => match other.branch_target() {
                            Some(t) => other.with_branch_target(body_start + t),
                            None => *other,
                        },
                    };
                    out.push(remapped);
                }
            }
        }
    }
    debug_assert_eq!(out.len(), pos as usize);
    (out, locals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;
    use evovm_bytecode::program::Function;
    use evovm_bytecode::verify::verify_function;

    fn inline_main(src: &str) -> (Vec<Instr>, u16, evovm_bytecode::Program) {
        let p = parse(src).unwrap();
        evovm_bytecode::verify::verify(&p).unwrap();
        let id = p.entry();
        let f = p.function(id);
        let (code, locals) = run(&p, id, f, InlineBudget::default());
        // The inlined code must itself verify.
        let nf = Function {
            name: "main_inlined".into(),
            arity: f.arity,
            locals,
            code: code.clone(),
        };
        verify_function(&p, id, &nf).unwrap();
        (code, locals, p)
    }

    #[test]
    fn inlines_a_leaf_call() {
        let (code, locals, _) = inline_main(
            "entry func main/0 {
  const 5
  call double
  print
  null
  return
}
func double/1 {
  load 0
  const 2
  imul
  return
}",
        );
        // Call replaced by store + 4-instruction body (Return -> Jump).
        assert!(!code.iter().any(|i| matches!(i, Instr::Call(_))));
        assert_eq!(locals, 1); // main had 0 locals; callee adds 1
        assert_eq!(
            code,
            vec![
                Instr::Const(5),
                Instr::Store(0),
                Instr::Load(0),
                Instr::Const(2),
                Instr::IMul,
                Instr::Jump(6),
                Instr::Print,
                Instr::Null,
                Instr::Return,
            ]
        );
    }

    #[test]
    fn remaps_caller_branches_around_expansion() {
        let (code, _, _) = inline_main(
            "entry func main/0 {
  const 1
  jumpif skip
  const 5
  call double
  print
skip:
  null
  return
}
func double/1 {
  load 0
  const 2
  imul
  return
}",
        );
        // The jumpif must now target the Null after the expanded body.
        let target = code
            .iter()
            .find_map(|i| match i {
                Instr::JumpIf(t) => Some(*t),
                _ => None,
            })
            .unwrap();
        assert_eq!(code[target as usize], Instr::Null);
    }

    #[test]
    fn multiple_returns_become_jumps() {
        let (code, _, _) = inline_main(
            "entry func main/0 {
  const 5
  call sign
  print
  null
  return
}
func sign/1 {
  load 0
  const 0
  icmplt
  jumpif negcase
  const 1
  return
negcase:
  const -1
  return
}",
        );
        let jumps: Vec<u32> = code
            .iter()
            .filter_map(|i| match i {
                Instr::Jump(t) => Some(*t),
                _ => None,
            })
            .collect();
        // Both returns jump to the same after-site position.
        assert_eq!(jumps.len(), 2);
        assert_eq!(jumps[0], jumps[1]);
        assert_eq!(code[jumps[0] as usize], Instr::Print);
    }

    #[test]
    fn does_not_inline_recursion() {
        let src = "entry func main/0 {
  const 5
  call fact
  print
  null
  return
}
func fact/1 {
  load 0
  const 1
  icmple
  jumpifnot recurse
  const 1
  return
recurse:
  load 0
  load 0
  const 1
  isub
  call fact
  imul
  return
}";
        let p = parse(src).unwrap();
        let fact_id = p.find("fact").unwrap();
        let fact = p.function(fact_id);
        let (code, _) = run(&p, fact_id, fact, InlineBudget::default());
        // The self-call stays.
        assert!(code
            .iter()
            .any(|i| matches!(i, Instr::Call(id) if *id == fact_id)));
    }

    #[test]
    fn respects_callee_size_budget() {
        let mut body = String::new();
        for _ in 0..40 {
            body.push_str("  const 1\n  pop\n");
        }
        let src = format!(
            "entry func main/0 {{\n  const 1\n  call big\n  print\n  null\n  return\n}}\nfunc big/1 {{\n{body}  load 0\n  return\n}}"
        );
        let p = parse(&src).unwrap();
        let id = p.entry();
        let (code, _) = run(&p, id, p.function(id), InlineBudget::default());
        assert!(code.iter().any(|i| matches!(i, Instr::Call(_))));
    }

    #[test]
    fn nested_locals_do_not_collide() {
        let (code, locals, _) = inline_main(
            "entry func main/0 locals=1 {
  const 7
  store 0
  const 5
  call addone
  print
  load 0
  print
  null
  return
}
func addone/1 locals=2 {
  load 0
  const 1
  iadd
  store 1
  load 1
  return
}",
        );
        assert_eq!(locals, 3);
        // Caller's local 0 is untouched by the inlined body.
        assert!(code.contains(&Instr::Store(1)) || code.contains(&Instr::Store(2)));
    }
}
