//! Superinstruction fusion: merge hot adjacent instruction pairs into
//! single fused opcodes.
//!
//! The pair set is chosen from the measured opcode-pair distribution in
//! `BENCH_dispatch.json` (regenerate with
//! `cargo run --release --example perf_sweep -- --dispatch`). Fusion is a
//! pure host-side dispatch optimization: every fused instruction's
//! `base_cost` is exactly the sum of its components and it reports its
//! component count to the retired-instruction counter, so the virtual
//! clock, sampling and instruction totals are bit-identical to unfused
//! execution (`tests/dispatch_profile.rs` proves it).
//!
//! The pass runs *last* in the O1/O2 pipeline: it only merges adjacent
//! instructions earlier passes decided to keep, never across a branch
//! target (the second instruction of a pair must not be a leader) and
//! never starting at a branch, terminator or call.

use evovm_bytecode::scalar::{BinOp, BitOp, CmpOp};
use evovm_bytecode::Instr;

use crate::passes::leaders;
use crate::util;

/// Fuse hot adjacent pairs until no more fusion applies (iterating lets
/// chains like `Const; ICmpLt; JumpIf` first become `ConstICmpLt; JumpIf`
/// and then a single branch-fused triple).
pub fn run(code: &[Instr]) -> Vec<Instr> {
    let mut code = code.to_vec();
    loop {
        let (next, changed) = fuse_once(&code);
        code = next;
        if !changed {
            return code;
        }
    }
}

/// One left-to-right fusion sweep over non-overlapping adjacent pairs.
fn fuse_once(code: &[Instr]) -> (Vec<Instr>, bool) {
    let is_leader = leaders(code);
    let mut out = code.to_vec();
    let mut keep = vec![true; code.len()];
    let mut changed = false;
    let mut pc = 0;
    while pc + 1 < code.len() {
        // Never fuse across a control-flow seam: the second instruction
        // must not be reachable on its own, and the first must fall
        // through into it.
        if is_leader[pc + 1] || code[pc].is_branch() || code[pc].is_terminator() {
            pc += 1;
            continue;
        }
        if let Some(fused) = fuse_pair(code[pc], code[pc + 1]) {
            out[pc] = fused;
            keep[pc + 1] = false;
            changed = true;
            pc += 2;
        } else {
            pc += 1;
        }
    }
    if changed {
        (util::compact(&out, &keep), true)
    } else {
        (out, false)
    }
}

/// The fused-pair table. Returns the superinstruction replacing
/// `first; second`, or `None` if the pair is not in the fusion set.
///
/// The set covers the top of the measured pair distribution
/// (`BENCH_dispatch.json`): `load;load` 14.2%, `load;const` 7.6%,
/// `store;load` 5.6%, `store;jump` 3.6% (loop back-edges), `const`
/// feeding arithmetic/bitwise/compares ~9%, and compare-then-branch
/// ~4.9%. A second tier picks up the next band: arithmetic/bitwise
/// results flowing straight into a store (`iadd;store` 2.3%, `band;store`
/// 2.2%) and locals feeding an op or array read (`load;isub` 1.9%,
/// `load;aload` 1.5%) — the shapes left over once `load;const` pairs
/// have been consumed by the first tier. A third tier pairs the fused
/// forms themselves, covering the three- and four-instruction chains
/// that dominate the *residual* distribution once tiers 1–2 have run
/// (profiled with fusion on): `loadload;cmpbr` 4.4%, the
/// `constbit;storeload` mask-store seam 3.1%, the
/// `constibin;storejump` back-edge 2.9%, `loadconst;imul` 2.3% and
/// `loadload;mul` (11% of mtrt/raytracer dispatches). `Div`/`Rem` stay
/// unfused so a divide-by-zero trap keeps its own program counter;
/// float-specialized compares stay unfused because their dispatch cost
/// differs from the generic forms the fused costs encode.
fn fuse_pair(first: Instr, second: Instr) -> Option<Instr> {
    use Instr::{Const, Jump, JumpIf, JumpIfNot, Load, Store};
    Some(match (first, second) {
        (Load(a), Load(b)) => Instr::LoadLoad(a, b),
        (Load(n), Const(v)) => Instr::LoadConst(n, v),
        (Load(n), Instr::IAdd) => Instr::LoadIBin(BinOp::Add, n),
        (Load(n), Instr::ISub) => Instr::LoadIBin(BinOp::Sub, n),
        (Load(n), Instr::IMul) => Instr::LoadIBin(BinOp::Mul, n),
        (Load(n), Instr::Add) => Instr::LoadBin(BinOp::Add, n),
        (Load(n), Instr::Sub) => Instr::LoadBin(BinOp::Sub, n),
        (Load(n), Instr::Mul) => Instr::LoadBin(BinOp::Mul, n),
        (Load(n), Instr::ALoad) => Instr::LoadALoad(n),
        (Store(n), Load(m)) => Instr::StoreLoad(n, m),
        (Store(n), Jump(t)) => Instr::StoreJump(n, t),
        (Instr::IAdd, Store(n)) => Instr::IBinStore(BinOp::Add, n),
        (Instr::ISub, Store(n)) => Instr::IBinStore(BinOp::Sub, n),
        (Instr::IMul, Store(n)) => Instr::IBinStore(BinOp::Mul, n),
        (Instr::Add, Store(n)) => Instr::BinStore(BinOp::Add, n),
        (Instr::Sub, Store(n)) => Instr::BinStore(BinOp::Sub, n),
        (Instr::Mul, Store(n)) => Instr::BinStore(BinOp::Mul, n),
        (Instr::Shl, Store(n)) => Instr::BitStore(BitOp::Shl, n),
        (Instr::Shr, Store(n)) => Instr::BitStore(BitOp::Shr, n),
        (Instr::BitAnd, Store(n)) => Instr::BitStore(BitOp::And, n),
        (Instr::BitOr, Store(n)) => Instr::BitStore(BitOp::Or, n),
        (Instr::BitXor, Store(n)) => Instr::BitStore(BitOp::Xor, n),
        (Const(v), Instr::IAdd) => Instr::ConstIBin(BinOp::Add, v),
        (Const(v), Instr::ISub) => Instr::ConstIBin(BinOp::Sub, v),
        (Const(v), Instr::IMul) => Instr::ConstIBin(BinOp::Mul, v),
        (Const(v), Instr::Add) => Instr::ConstBin(BinOp::Add, v),
        (Const(v), Instr::Sub) => Instr::ConstBin(BinOp::Sub, v),
        (Const(v), Instr::Mul) => Instr::ConstBin(BinOp::Mul, v),
        (Const(v), Instr::Shl) => Instr::ConstBit(BitOp::Shl, v),
        (Const(v), Instr::Shr) => Instr::ConstBit(BitOp::Shr, v),
        (Const(v), Instr::BitAnd) => Instr::ConstBit(BitOp::And, v),
        (Const(v), Instr::BitOr) => Instr::ConstBit(BitOp::Or, v),
        (Const(v), Instr::BitXor) => Instr::ConstBit(BitOp::Xor, v),
        (Const(v), second) => Instr::ConstICmp(icmp_op(second)?, v),
        (Instr::ConstICmp(op, v), JumpIf(t)) => Instr::ConstICmpBr(op, v, t, true),
        (Instr::ConstICmp(op, v), JumpIfNot(t)) => Instr::ConstICmpBr(op, v, t, false),
        // Tier 3: the left element is itself a pair formed by an earlier
        // sweep, so these only arise on the second fixpoint round.
        (Instr::LoadLoad(a, b), Instr::Add) => Instr::LoadLoadBin(BinOp::Add, a, b),
        (Instr::LoadLoad(a, b), Instr::Sub) => Instr::LoadLoadBin(BinOp::Sub, a, b),
        (Instr::LoadLoad(a, b), Instr::Mul) => Instr::LoadLoadBin(BinOp::Mul, a, b),
        (Instr::LoadLoad(a, b), Instr::CmpBr(op, t, when)) => {
            Instr::LoadLoadCmpBr(op, a, b, t, when)
        }
        (Instr::LoadConst(n, v), Instr::IAdd) => Instr::LoadConstIBin(BinOp::Add, n, v),
        (Instr::LoadConst(n, v), Instr::ISub) => Instr::LoadConstIBin(BinOp::Sub, n, v),
        (Instr::LoadConst(n, v), Instr::IMul) => Instr::LoadConstIBin(BinOp::Mul, n, v),
        (Instr::ConstBit(op, v), Instr::StoreLoad(n, m)) => Instr::ConstBitStoreLoad(op, v, n, m),
        (Instr::ConstIBin(op, v), Instr::StoreJump(n, t))
            if !matches!(op, BinOp::Div | BinOp::Rem) =>
        {
            Instr::ConstIBinStoreJump(op, v, n, t)
        }
        (first, JumpIf(t)) => match icmp_op(first) {
            Some(op) => Instr::ICmpBr(op, t, true),
            None => Instr::CmpBr(generic_cmp_op(first)?, t, true),
        },
        (first, JumpIfNot(t)) => match icmp_op(first) {
            Some(op) => Instr::ICmpBr(op, t, false),
            None => Instr::CmpBr(generic_cmp_op(first)?, t, false),
        },
        _ => return None,
    })
}

/// The comparison operator of an int-specialized compare.
fn icmp_op(i: Instr) -> Option<CmpOp> {
    Some(match i {
        Instr::ICmpEq => CmpOp::Eq,
        Instr::ICmpNe => CmpOp::Ne,
        Instr::ICmpLt => CmpOp::Lt,
        Instr::ICmpLe => CmpOp::Le,
        Instr::ICmpGt => CmpOp::Gt,
        Instr::ICmpGe => CmpOp::Ge,
        _ => return None,
    })
}

/// The comparison operator of a generic compare.
fn generic_cmp_op(i: Instr) -> Option<CmpOp> {
    Some(match i {
        Instr::CmpEq => CmpOp::Eq,
        Instr::CmpNe => CmpOp::Ne,
        Instr::CmpLt => CmpOp::Lt,
        Instr::CmpLe => CmpOp::Le,
        Instr::CmpGt => CmpOp::Gt,
        Instr::CmpGe => CmpOp::Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuses_straightline_pairs() {
        let code = vec![
            Instr::Load(1),
            Instr::Load(0),
            Instr::Const(3),
            Instr::IMul,
            Instr::Const(255),
            Instr::BitAnd,
            Instr::IAdd,
            Instr::Store(2),
            Instr::Return,
        ];
        assert_eq!(
            run(&code),
            vec![
                Instr::LoadLoad(1, 0),
                Instr::ConstIBin(BinOp::Mul, 3),
                Instr::ConstBit(BitOp::And, 255),
                Instr::IBinStore(BinOp::Add, 2),
                Instr::Return,
            ]
        );
    }

    #[test]
    fn fuses_op_store_and_load_op_pairs() {
        // `x = x & mask` / `acc += a[i]` shapes from the bench corpus:
        // load;const pairs first, freeing the op;store tail to fuse too.
        let code = vec![
            Instr::Load(0),
            Instr::Const(255),
            Instr::BitAnd,
            Instr::Store(0),
            Instr::Load(1),
            Instr::ALoad,
            Instr::Load(2),
            Instr::IAdd,
            Instr::Return,
        ];
        assert_eq!(
            run(&code),
            vec![
                Instr::LoadConst(0, 255),
                Instr::BitStore(BitOp::And, 0),
                Instr::LoadALoad(1),
                Instr::LoadIBin(BinOp::Add, 2),
                Instr::Return,
            ]
        );
    }

    #[test]
    fn iterates_to_the_branch_fused_triple() {
        // Round 1 fuses const+icmpge, round 2 folds in the branch. (The
        // const must not follow a fusable load, or the greedy sweep pairs
        // load+const instead — also correct, but a different shape.)
        let code = vec![
            Instr::Pop,
            Instr::Const(10),
            Instr::ICmpGe,
            Instr::JumpIf(5),
            Instr::Nop,
            Instr::Return,
        ];
        assert_eq!(
            run(&code),
            vec![
                Instr::Pop,
                Instr::ConstICmpBr(CmpOp::Ge, 10, 3, true),
                Instr::Nop,
                Instr::Return,
            ]
        );
    }

    #[test]
    fn loop_head_fuses_to_loadconst_and_icmpbr() {
        // The canonical counted-loop head: load i; const N; icmpge; jumpif.
        // Greedy left-to-right pairs load+const first, then cmp+branch:
        // four dispatches become two.
        let code = vec![
            Instr::Load(0),
            Instr::Const(10),
            Instr::ICmpGe,
            Instr::JumpIf(5),
            Instr::Nop,
            Instr::Return,
        ];
        assert_eq!(
            run(&code),
            vec![
                Instr::LoadConst(0, 10),
                Instr::ICmpBr(CmpOp::Ge, 3, true),
                Instr::Nop,
                Instr::Return,
            ]
        );
    }

    #[test]
    fn never_fuses_across_a_branch_target() {
        // pc 1 is the target of the jump, so load;load must stay split.
        let code = vec![Instr::Load(0), Instr::Load(1), Instr::Jump(1)];
        assert_eq!(run(&code), code);
    }

    #[test]
    fn remaps_targets_after_compaction() {
        // Fusing pcs 0-1 shifts the branch target at pc 3 down by one.
        let code = vec![Instr::Load(0), Instr::Load(1), Instr::Pop, Instr::Jump(2)];
        assert_eq!(
            run(&code),
            vec![Instr::LoadLoad(0, 1), Instr::Pop, Instr::Jump(1)]
        );
    }

    #[test]
    fn second_round_builds_tier3_chains() {
        // A realistic loop body: the first sweep forms loadload, constbit
        // and constibin/storejump seams; the second folds them into 3- and
        // 4-component superinstructions. Seven source instructions end as
        // two dispatches, and a counted-loop head (load;load;cmplt;jumpif)
        // becomes one.
        let code = vec![
            Instr::Load(0),
            Instr::Load(1),
            Instr::Mul,
            Instr::Const(255),
            Instr::BitAnd,
            Instr::Store(2),
            Instr::Load(3),
            Instr::Return,
        ];
        assert_eq!(
            run(&code),
            vec![
                Instr::LoadLoadBin(BinOp::Mul, 0, 1),
                Instr::ConstBitStoreLoad(BitOp::And, 255, 2, 3),
                Instr::Return,
            ]
        );
        let head = vec![
            Instr::Load(0),
            Instr::Load(1),
            Instr::CmpLt,
            Instr::JumpIf(5),
            Instr::Nop,
            Instr::Return,
        ];
        assert_eq!(
            run(&head),
            vec![
                Instr::LoadLoadCmpBr(CmpOp::Lt, 0, 1, 2, true),
                Instr::Nop,
                Instr::Return,
            ]
        );
        // The back-edge `i += step; jump top` tail: const+iadd fuses in
        // round 1, store+jump in round 1 too, then the pair merges.
        let tail = vec![
            Instr::Pop,
            Instr::Const(1),
            Instr::IAdd,
            Instr::Store(0),
            Instr::Jump(0),
        ];
        assert_eq!(
            run(&tail),
            vec![Instr::Pop, Instr::ConstIBinStoreJump(BinOp::Add, 1, 0, 0),]
        );
    }

    #[test]
    fn leaves_trapping_and_float_pairs_alone() {
        let code = vec![
            Instr::Const(0),
            Instr::IDiv,
            Instr::FCmpLt,
            Instr::JumpIf(0),
        ];
        // Only the compare-branch stays unfused too: FCmpLt has its own
        // dispatch cost, so no CmpBr is formed.
        assert_eq!(run(&code), code);
    }
}
