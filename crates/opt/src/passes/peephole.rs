//! Peephole simplification and jump threading.
//!
//! Window rewrites over adjacent instructions (never across basic-block
//! boundaries) plus branch retargeting through chains of unconditional
//! jumps.

use evovm_bytecode::Instr;

use crate::passes::leaders;
use crate::util::compact;

/// Run peephole rewrites, returning the new code.
pub fn run(code: &[Instr]) -> Vec<Instr> {
    let threaded = thread_jumps(code);
    let is_leader = leaders(&threaded);
    let mut keep = vec![true; threaded.len()];

    for pc in 0..threaded.len() {
        if !keep[pc] {
            continue;
        }
        // Fusions with the next instruction require the successor to not be
        // a join point.
        let next = pc + 1;
        let fusable = next < threaded.len() && !is_leader[next] && keep[next];
        match (threaded[pc], fusable.then(|| threaded[next])) {
            // pure push immediately discarded
            (
                Instr::Const(_) | Instr::FConst(_) | Instr::Null | Instr::Load(_) | Instr::Dup,
                Some(Instr::Pop),
            ) => {
                keep[pc] = false;
                keep[next] = false;
            }
            // double negation
            (Instr::Neg, Some(Instr::Neg))
            | (Instr::INeg, Some(Instr::INeg))
            | (Instr::FNeg, Some(Instr::FNeg))
            | (Instr::Swap, Some(Instr::Swap)) => {
                keep[pc] = false;
                keep[next] = false;
            }
            // jump to the immediately following instruction
            (Instr::Jump(t), _) if t as usize == pc + 1 => {
                keep[pc] = false;
            }
            // no-ops are always removable
            (Instr::Nop, _) => {
                keep[pc] = false;
            }
            _ => {}
        }
    }
    compact(&threaded, &keep)
}

/// Retarget branches that land on unconditional jumps, bounded to avoid
/// cycling through jump loops.
pub fn thread_jumps(code: &[Instr]) -> Vec<Instr> {
    let resolve = |mut t: u32| -> u32 {
        for _ in 0..8 {
            match code[t as usize] {
                Instr::Jump(u) if u != t => t = u,
                _ => break,
            }
        }
        t
    };
    code.iter()
        .map(|instr| match instr.branch_target() {
            Some(t) => instr.with_branch_target(resolve(t)),
            None => *instr,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_push_pop_pairs() {
        let code = vec![
            Instr::Const(1),
            Instr::Pop,
            Instr::Load(0),
            Instr::Pop,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code), vec![Instr::Null, Instr::Return]);
    }

    #[test]
    fn keeps_push_pop_across_block_boundary() {
        // The Pop is a branch target, so another path reaches it with its
        // own value on the stack: the pair must not be fused.
        let code = vec![
            Instr::Const(1),  // 0
            Instr::JumpIf(3), // 1 -> makes 3 a leader... target is Pop? no:
            Instr::Const(9),  // 2
            Instr::Pop,       // 3 (leader)
            Instr::Null,      // 4
            Instr::Return,    // 5
        ];
        let out = run(&code);
        assert!(out.contains(&Instr::Pop));
        assert!(out.contains(&Instr::Const(9)));
    }

    #[test]
    fn threads_jump_chains() {
        let code = vec![
            Instr::JumpIf(2), // 0 -> will thread to 4
            Instr::Nop,       // 1
            Instr::Jump(4),   // 2
            Instr::Nop,       // 3
            Instr::Null,      // 4
            Instr::Return,    // 5
        ];
        let out = thread_jumps(&code);
        assert_eq!(out[0], Instr::JumpIf(4));
    }

    #[test]
    fn removes_jump_to_next() {
        let code = vec![Instr::Jump(1), Instr::Null, Instr::Return];
        assert_eq!(run(&code), vec![Instr::Null, Instr::Return]);
    }

    #[test]
    fn removes_double_negation() {
        let code = vec![Instr::Load(0), Instr::INeg, Instr::INeg, Instr::Return];
        assert_eq!(run(&code), vec![Instr::Load(0), Instr::Return]);
    }

    #[test]
    fn drops_nops() {
        let code = vec![Instr::Nop, Instr::Null, Instr::Nop, Instr::Return];
        assert_eq!(run(&code), vec![Instr::Null, Instr::Return]);
    }

    #[test]
    fn jump_loop_does_not_hang() {
        let code = vec![Instr::Jump(1), Instr::Jump(0), Instr::Null, Instr::Return];
        let _ = run(&code);
    }
}
