//! Dead-code elimination: removes instructions in unreachable basic blocks
//! (typically exposed by constant branch folding).

use evovm_bytecode::cfg::Cfg;
use evovm_bytecode::program::Function;
use evovm_bytecode::Instr;

use crate::util::compact;

/// Remove unreachable instructions from `code`.
///
/// `arity`/`locals` are only needed to build a temporary [`Function`] for
/// CFG construction.
pub fn run(code: &[Instr], arity: u16, locals: u16) -> Vec<Instr> {
    if code.is_empty() {
        return Vec::new();
    }
    let f = Function {
        name: String::new(),
        arity,
        locals,
        code: code.to_vec(),
    };
    let cfg = Cfg::build(&f);
    let reachable_blocks = cfg.reachable();
    let mut keep = vec![false; code.len()];
    for (b, block) in cfg.blocks().iter().enumerate() {
        if reachable_blocks[b] {
            for pc in block.range() {
                keep[pc] = true;
            }
        }
    }
    compact(code, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_code_after_return() {
        let code = vec![
            Instr::Null,
            Instr::Return,
            Instr::Const(1),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code, 0, 0), vec![Instr::Null, Instr::Return]);
    }

    #[test]
    fn keeps_reachable_branch_targets() {
        let code = vec![
            Instr::Load(0),
            Instr::JumpIf(4),
            Instr::Null,
            Instr::Return,
            Instr::Const(1),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code, 1, 1), code);
    }

    #[test]
    fn removes_block_orphaned_by_branch_folding() {
        // After fold turned `jumpif` into `jump 4`, pcs 1..=3 are dead.
        let code = vec![
            Instr::Jump(4),
            Instr::Const(7),
            Instr::Print,
            Instr::Jump(4),
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code, 0, 0);
        assert_eq!(out, vec![Instr::Jump(1), Instr::Null, Instr::Return]);
    }
}
