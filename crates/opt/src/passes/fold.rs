//! Block-local constant folding, algebraic simplification and constant
//! branch folding.
//!
//! The pass symbolically executes each basic block with an abstract stack
//! whose entries remember (a) a known constant value, if any, and (b) the
//! in-block instruction that produced them. When an operation's operands
//! are all known, the producers are deleted and the operation is replaced
//! by the folded constant — evaluated through [`evovm_bytecode::scalar`],
//! the same semantics the interpreter uses. Conditional branches on known
//! conditions become unconditional (or disappear), exposing dead blocks to
//! the DCE pass.

use evovm_bytecode::scalar::{self, BinOp, BitOp, CmpOp, Scalar};
use evovm_bytecode::Instr;

use crate::passes::leaders;
use crate::util::compact;

/// One abstract stack entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Known constant value, if provable.
    value: Option<Scalar>,
    /// In-block pc of the instruction that pushed this value, when that
    /// instruction can be deleted if the value is consumed by a fold.
    producer: Option<usize>,
}

impl Entry {
    fn unknown() -> Entry {
        Entry {
            value: None,
            producer: None,
        }
    }
}

/// Run constant folding over `code`, returning the rewritten code.
pub fn run(code: &[Instr]) -> Vec<Instr> {
    let mut out: Vec<Instr> = code.to_vec();
    let mut keep = vec![true; code.len()];
    let is_leader = leaders(code);
    let mut stack: Vec<Entry> = Vec::new();

    for pc in 0..code.len() {
        if is_leader[pc] {
            // Unknown stack contents flow in at block boundaries.
            stack.clear();
        }
        let instr = out[pc];
        // Pop helper that models values flowing in from before the block.
        macro_rules! pop {
            () => {
                stack.pop().unwrap_or_else(Entry::unknown)
            };
        }
        macro_rules! push_const {
            ($v:expr, $pc:expr) => {{
                let v: Scalar = $v;
                out[$pc] = match v {
                    Scalar::Int(i) => Instr::Const(i),
                    Scalar::Float(f) => Instr::FConst(f),
                };
                stack.push(Entry {
                    value: Some(v),
                    producer: Some($pc),
                });
            }};
        }

        match instr {
            Instr::Const(v) => stack.push(Entry {
                value: Some(Scalar::Int(v)),
                producer: Some(pc),
            }),
            Instr::FConst(v) => stack.push(Entry {
                value: Some(Scalar::Float(v)),
                producer: Some(pc),
            }),
            Instr::Null | Instr::Load(_) | Instr::NewArray => {
                if matches!(instr, Instr::NewArray) {
                    pop!();
                }
                stack.push(Entry::unknown());
            }
            Instr::Store(_) | Instr::Pop | Instr::Print | Instr::Publish(_) => {
                pop!();
            }
            Instr::Dup => {
                match stack.last_mut() {
                    // Dup of a known constant: rematerialize it as an
                    // explicit constant push, so the copy and the original
                    // have independent, individually deletable producers.
                    Some(top) if top.value.is_some() => {
                        let v = top.value.expect("checked");
                        out[pc] = match v {
                            Scalar::Int(i) => Instr::Const(i),
                            Scalar::Float(f) => Instr::FConst(f),
                        };
                        stack.push(Entry {
                            value: Some(v),
                            producer: Some(pc),
                        });
                    }
                    // Unknown value: the original now has two consumers, so
                    // its producer can no longer be deleted on a fold (the
                    // Dup would be left reading a missing value).
                    Some(top) => {
                        top.producer = None;
                        stack.push(Entry {
                            value: None,
                            producer: Some(pc),
                        });
                    }
                    None => stack.push(Entry::unknown()),
                }
            }
            Instr::Swap => {
                // A surviving Swap between producer and consumer would be
                // left with missing operands if either producer were
                // deleted, so both sides become non-deletable.
                let mut b = pop!();
                let mut a = pop!();
                a.producer = None;
                b.producer = None;
                stack.push(b);
                stack.push(a);
            }

            // --- binary arithmetic ---
            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::IAdd
            | Instr::ISub
            | Instr::IMul
            | Instr::IDiv
            | Instr::IRem
            | Instr::FAdd
            | Instr::FSub
            | Instr::FMul
            | Instr::FDiv => {
                let op = bin_op_of(instr);
                let b = pop!();
                let a = pop!();
                let folded = match (a.value, a.producer, b.value, b.producer) {
                    (Some(x), Some(pa), Some(y), Some(pb)) => {
                        match scalar::binop(op, x, y) {
                            Ok(v) => {
                                keep[pa] = false;
                                keep[pb] = false;
                                push_const!(v, pc);
                                true
                            }
                            Err(_) => false, // keep the trap
                        }
                    }
                    _ => false,
                };
                if !folded {
                    // Algebraic identities on the top operand.
                    let identity = match (op, b.value) {
                        (BinOp::Add | BinOp::Sub, Some(Scalar::Int(0))) => true,
                        (BinOp::Mul | BinOp::Div, Some(Scalar::Int(1))) => true,
                        (BinOp::Mul | BinOp::Div, Some(Scalar::Float(f))) => {
                            // Only safe for float-typed ops: 1.0 promotes an
                            // int left operand to float under generic ops.
                            f == 1.0 && matches!(instr, Instr::FMul | Instr::FDiv)
                        }
                        _ => false,
                    };
                    if identity {
                        if let Some(pb) = b.producer {
                            keep[pb] = false;
                            keep[pc] = false;
                            stack.push(a);
                        } else {
                            stack.push(Entry::unknown());
                        }
                    } else {
                        stack.push(Entry::unknown());
                    }
                }
            }

            // --- unary arithmetic ---
            Instr::Neg | Instr::INeg | Instr::FNeg => {
                let a = pop!();
                match (a.value, a.producer) {
                    (Some(x), Some(pa)) => {
                        keep[pa] = false;
                        push_const!(scalar::neg(x), pc);
                    }
                    _ => stack.push(Entry::unknown()),
                }
            }

            // --- bitwise ---
            Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => {
                let op = bit_op_of(instr);
                let b = pop!();
                let a = pop!();
                match (a.value, a.producer, b.value, b.producer) {
                    (Some(x), Some(pa), Some(y), Some(pb)) => match scalar::bitop(op, x, y) {
                        Ok(v) => {
                            keep[pa] = false;
                            keep[pb] = false;
                            push_const!(v, pc);
                        }
                        Err(_) => stack.push(Entry::unknown()),
                    },
                    _ => stack.push(Entry::unknown()),
                }
            }

            // --- comparisons ---
            Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe
            | Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe
            | Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => {
                let op = cmp_op_of(instr);
                let b = pop!();
                let a = pop!();
                match (a.value, a.producer, b.value, b.producer) {
                    (Some(x), Some(pa), Some(y), Some(pb)) => {
                        keep[pa] = false;
                        keep[pb] = false;
                        push_const!(scalar::cmp(op, x, y), pc);
                    }
                    _ => stack.push(Entry::unknown()),
                }
            }

            // --- conversions ---
            Instr::ToFloat => {
                let a = pop!();
                match (a.value, a.producer) {
                    (Some(x), Some(pa)) => {
                        keep[pa] = false;
                        push_const!(scalar::to_float(x), pc);
                    }
                    _ => stack.push(Entry::unknown()),
                }
            }
            Instr::ToInt => {
                let a = pop!();
                match (a.value, a.producer) {
                    (Some(x), Some(pa)) => {
                        keep[pa] = false;
                        push_const!(scalar::to_int(x), pc);
                    }
                    _ => stack.push(Entry::unknown()),
                }
            }

            // --- math intrinsics ---
            Instr::Math(m) => {
                if m.arity() == 1 {
                    let a = pop!();
                    match (a.value, a.producer) {
                        (Some(x), Some(pa)) => {
                            keep[pa] = false;
                            push_const!(scalar::math1(m, x), pc);
                        }
                        _ => stack.push(Entry::unknown()),
                    }
                } else {
                    let b = pop!();
                    let a = pop!();
                    match (a.value, a.producer, b.value, b.producer) {
                        (Some(x), Some(pa), Some(y), Some(pb)) => {
                            keep[pa] = false;
                            keep[pb] = false;
                            push_const!(scalar::math2(m, x, y), pc);
                        }
                        _ => stack.push(Entry::unknown()),
                    }
                }
            }

            // --- constant branch folding ---
            Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                let c = pop!();
                if let (Some(v), Some(pa)) = (c.value, c.producer) {
                    let taken = v.truthy() == matches!(instr, Instr::JumpIf(_));
                    keep[pa] = false;
                    if taken {
                        out[pc] = Instr::Jump(t);
                    } else {
                        keep[pc] = false;
                    }
                }
                stack.clear();
            }
            Instr::Jump(_) | Instr::Return => {
                stack.clear();
            }
            Instr::Call(_) => {
                // Conservatively clear: we do not track callee arity here;
                // values below the arguments stay unknown anyway after a
                // clear, which is always safe.
                stack.clear();
                stack.push(Entry::unknown());
            }
            Instr::ALoad => {
                pop!();
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::AStore => {
                pop!();
                pop!();
                pop!();
            }
            Instr::ALen => {
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::Done | Instr::Nop => {}

            // Fused superinstructions only appear after the fusion pass,
            // which runs after folding; model them conservatively so the
            // pass stays total (and safe) on already-fused input.
            Instr::LoadLoad(_, _) | Instr::LoadConst(_, _) => {
                stack.push(Entry::unknown());
                stack.push(Entry::unknown());
            }
            Instr::StoreLoad(_, _) => {
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::ConstIBin(_, _)
            | Instr::ConstBin(_, _)
            | Instr::ConstBit(_, _)
            | Instr::ConstICmp(_, _) => {
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::IBinStore(_, _) | Instr::BinStore(_, _) | Instr::BitStore(_, _) => {
                pop!();
                pop!();
            }
            Instr::LoadIBin(_, _) | Instr::LoadBin(_, _) | Instr::LoadALoad(_) => {
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::LoadLoadBin(_, _, _) | Instr::LoadConstIBin(_, _, _) => {
                stack.push(Entry::unknown());
            }
            Instr::ConstBitStoreLoad(_, _, _, _) => {
                pop!();
                stack.push(Entry::unknown());
            }
            Instr::StoreJump(_, _) | Instr::ConstIBinStoreJump(_, _, _, _) => stack.clear(),
            Instr::ICmpBr(_, _, _)
            | Instr::CmpBr(_, _, _)
            | Instr::ConstICmpBr(_, _, _, _)
            | Instr::LoadLoadCmpBr(_, _, _, _, _) => {
                stack.clear();
            }
        }
    }

    compact(&out, &keep)
}

fn bin_op_of(i: Instr) -> BinOp {
    match i {
        Instr::Add | Instr::IAdd | Instr::FAdd => BinOp::Add,
        Instr::Sub | Instr::ISub | Instr::FSub => BinOp::Sub,
        Instr::Mul | Instr::IMul | Instr::FMul => BinOp::Mul,
        Instr::Div | Instr::IDiv | Instr::FDiv => BinOp::Div,
        Instr::Rem | Instr::IRem => BinOp::Rem,
        _ => unreachable!("not a binary arithmetic instruction"),
    }
}

fn cmp_op_of(i: Instr) -> CmpOp {
    match i {
        Instr::CmpEq | Instr::ICmpEq | Instr::FCmpEq => CmpOp::Eq,
        Instr::CmpNe | Instr::ICmpNe | Instr::FCmpNe => CmpOp::Ne,
        Instr::CmpLt | Instr::ICmpLt | Instr::FCmpLt => CmpOp::Lt,
        Instr::CmpLe | Instr::ICmpLe | Instr::FCmpLe => CmpOp::Le,
        Instr::CmpGt | Instr::ICmpGt | Instr::FCmpGt => CmpOp::Gt,
        Instr::CmpGe | Instr::ICmpGe | Instr::FCmpGe => CmpOp::Ge,
        _ => unreachable!("not a comparison instruction"),
    }
}

fn bit_op_of(i: Instr) -> BitOp {
    match i {
        Instr::Shl => BitOp::Shl,
        Instr::Shr => BitOp::Shr,
        Instr::BitAnd => BitOp::And,
        Instr::BitOr => BitOp::Or,
        Instr::BitXor => BitOp::Xor,
        _ => unreachable!("not a bitwise instruction"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::MathFn;

    #[test]
    fn folds_constant_arithmetic() {
        let code = vec![
            Instr::Const(21),
            Instr::Const(2),
            Instr::Mul,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Const(42), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn folds_chains() {
        // (2 + 3) * 4 -> 20
        let code = vec![
            Instr::Const(2),
            Instr::Const(3),
            Instr::IAdd,
            Instr::Const(4),
            Instr::IMul,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Const(20), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn keeps_division_by_zero_trap() {
        let code = vec![
            Instr::Const(1),
            Instr::Const(0),
            Instr::IDiv,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code), code);
    }

    #[test]
    fn add_zero_identity() {
        let code = vec![
            Instr::Load(0),
            Instr::Const(0),
            Instr::Add,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Load(0), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn generic_float_one_is_not_an_identity() {
        // load x; fconst 1.0; mul  — folding away the multiply would keep x
        // an int where the original promoted to float, so it must stay.
        let code = vec![
            Instr::Load(0),
            Instr::FConst(1.0),
            Instr::Mul,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        assert_eq!(run(&code), code);
    }

    #[test]
    fn fmul_by_one_is_an_identity() {
        let code = vec![
            Instr::Load(0),
            Instr::FConst(1.0),
            Instr::FMul,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Load(0), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn folds_constant_condition_to_jump() {
        let code = vec![
            Instr::Const(1),
            Instr::JumpIf(4),
            Instr::Const(7),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(out[0], Instr::Jump(3));
    }

    #[test]
    fn deletes_never_taken_branch() {
        let code = vec![
            Instr::Const(0),
            Instr::JumpIf(4),
            Instr::Const(7),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Const(7), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn does_not_fold_across_block_boundaries() {
        // The Const(1) is in a previous block (pc 2 is a branch target), so
        // the Add's operands are unknown at the block entry.
        let code = vec![
            Instr::Const(1),
            Instr::Jump(2),
            Instr::Const(2),
            Instr::Add,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        // Block at pc 2 starts fresh: Const(2) has a producer but the other
        // operand is unknown, so nothing folds.
        assert!(out.contains(&Instr::Add));
    }

    #[test]
    fn folds_math_intrinsics() {
        let code = vec![
            Instr::Const(9),
            Instr::Math(MathFn::Sqrt),
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(out[0], Instr::FConst(3.0));
    }

    #[test]
    fn folds_dup() {
        let code = vec![
            Instr::Const(3),
            Instr::Dup,
            Instr::IMul,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(
            out,
            vec![Instr::Const(9), Instr::Print, Instr::Null, Instr::Return]
        );
    }

    #[test]
    fn folds_comparisons_and_conversions() {
        let code = vec![
            Instr::Const(3),
            Instr::Const(4),
            Instr::ICmpLt,
            Instr::Print,
            Instr::FConst(2.5),
            Instr::ToInt,
            Instr::Print,
            Instr::Null,
            Instr::Return,
        ];
        let out = run(&code);
        assert_eq!(out[0], Instr::Const(1));
        assert_eq!(out[2], Instr::Const(2));
    }
}
