//! The multi-level optimizing JIT of the evolvable VM.
//!
//! Mirrors the structure of the Jikes RVM optimizing compiler at the scale
//! of this reproduction: four compilation levels (−1/0/1/2 — see
//! [`OptLevel`]) with rising compile cost and rising code quality. The
//! higher levels run *real* bytecode-to-bytecode passes:
//!
//! - [`passes::fold`] — block-local constant folding, algebraic identities
//!   and constant branch folding;
//! - [`passes::quicken`] — type-inference-driven specialization of generic
//!   arithmetic into typed opcodes (backed by [`analysis`]);
//! - [`passes::peephole`] — window rewrites and jump threading;
//! - [`passes::dce`] — unreachable-code elimination;
//! - [`passes::dse`] — liveness-based dead-store elimination;
//! - [`passes::inline`] — method inlining (O2 only).
//!
//! Code-quality effects beyond what bytecode transformation can express
//! (register allocation, instruction selection) are modelled by the level's
//! execution-cycle multiplier ([`OptLevel::quality_for`]); this is the one
//! simulated component of the JIT, documented in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use evovm_bytecode::asm::parse;
//! use evovm_opt::{Optimizer, OptLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse(
//!     "entry func main/0 {\n  const 6\n  const 7\n  mul\n  print\n  null\n  return\n}",
//! )?;
//! let compiled = Optimizer::new().compile(&program, program.entry(), OptLevel::O1);
//! assert!(compiled.code.len() < program.function(program.entry()).code.len());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod levels;
pub mod passes;
pub mod pipeline;
mod util;

pub use levels::OptLevel;
pub use pipeline::{optimize_program, CompileError, CompiledCode, Optimizer};
