//! Intra-procedural type inference for quickening.
//!
//! A forward dataflow over the (verified) bytecode tracks an abstract type
//! for every stack slot and local. The result records, for every
//! instruction, the inferred types of its popped operands, which the
//! quickening pass uses to replace generic arithmetic with typed variants.
//!
//! The lattice is deliberately small:
//!
//! ```text
//!        Any
//!      / | | \
//!   Int Float Ref Null      (Null ⊔ Ref = Ref)
//! ```
//!
//! Function parameters are `Any` (inference is intra-procedural), so
//! quickening only fires where types are locally provable — constants,
//! conversions, array lengths, intrinsic results and values derived from
//! them.

use evovm_bytecode::program::{Function, Program};
use evovm_bytecode::{FuncId, Instr, MathFn};

/// Abstract value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Definitely a 64-bit integer.
    Int,
    /// Definitely a float.
    Float,
    /// Definitely an array reference.
    Ref,
    /// Definitely null.
    Null,
    /// Unknown / could be anything.
    Any,
}

impl Ty {
    /// Lattice join.
    pub fn join(self, other: Ty) -> Ty {
        use Ty::{Null, Ref};
        match (self, other) {
            (a, b) if a == b => a,
            (Null, Ref) | (Ref, Null) => Ref,
            _ => Ty::Any,
        }
    }
}

/// Per-instruction operand types produced by [`infer`].
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// For each pc of a binary stack operation: `(below, top)` operand
    /// types, joined over all paths reaching the instruction.
    pub bin_operands: Vec<Option<(Ty, Ty)>>,
    /// For each pc of a unary stack operation: its operand type.
    pub un_operands: Vec<Option<Ty>>,
}

#[derive(Debug, Clone, PartialEq)]
struct State {
    stack: Vec<Ty>,
    locals: Vec<Ty>,
}

impl State {
    fn join_into(&self, into: &mut State) -> bool {
        debug_assert_eq!(self.stack.len(), into.stack.len());
        let mut changed = false;
        for (a, b) in into.stack.iter_mut().zip(&self.stack) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        for (a, b) in into.locals.iter_mut().zip(&self.locals) {
            let j = a.join(*b);
            if j != *a {
                *a = j;
                changed = true;
            }
        }
        changed
    }
}

/// Infer operand types for every instruction of `f`.
///
/// Requires verified code (consistent stack depths); panics on underflow
/// otherwise.
pub fn infer(program: &Program, f: &Function) -> TypeInfo {
    let len = f.code.len();
    let mut info = TypeInfo {
        bin_operands: vec![None; len],
        un_operands: vec![None; len],
    };
    let mut states: Vec<Option<State>> = vec![None; len];
    let mut locals = vec![Ty::Any; f.locals as usize];
    // Non-argument locals start as Null in the VM.
    for slot in locals.iter_mut().skip(f.arity as usize) {
        *slot = Ty::Null;
    }
    let entry = State {
        stack: Vec::new(),
        locals,
    };
    let mut work: Vec<(u32, State)> = vec![(0, entry)];
    let arity_of = |id: FuncId| program.function(id).arity as usize;

    while let Some((pc, state)) = work.pop() {
        let slot = &mut states[pc as usize];
        match slot {
            Some(existing) => {
                if !state.join_into(existing) {
                    continue;
                }
            }
            None => *slot = Some(state),
        }
        let mut s = states[pc as usize].clone().expect("just set");
        let instr = f.code[pc as usize];
        let record_bin = |info: &mut TypeInfo, a: Ty, b: Ty| {
            let e = &mut info.bin_operands[pc as usize];
            *e = Some(match *e {
                Some((pa, pb)) => (pa.join(a), pb.join(b)),
                None => (a, b),
            });
        };
        let record_un = |info: &mut TypeInfo, a: Ty| {
            let e = &mut info.un_operands[pc as usize];
            *e = Some(match *e {
                Some(p) => p.join(a),
                None => a,
            });
        };

        let mut next_pcs: Vec<u32> = Vec::new();
        match instr {
            Instr::Const(_) => s.stack.push(Ty::Int),
            Instr::FConst(_) => s.stack.push(Ty::Float),
            Instr::Null => s.stack.push(Ty::Null),
            Instr::Load(n) => s.stack.push(s.locals[n as usize]),
            Instr::Store(n) => {
                let t = s.stack.pop().expect("verified");
                s.locals[n as usize] = t;
            }
            Instr::Dup => {
                let t = *s.stack.last().expect("verified");
                s.stack.push(t);
            }
            Instr::Pop => {
                s.stack.pop();
            }
            Instr::Swap => {
                let n = s.stack.len();
                s.stack.swap(n - 1, n - 2);
            }
            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem => {
                let b = s.stack.pop().expect("verified");
                let a = s.stack.pop().expect("verified");
                record_bin(&mut info, a, b);
                s.stack.push(arith_result(a, b));
            }
            Instr::IAdd | Instr::ISub | Instr::IMul | Instr::IDiv | Instr::IRem => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::FAdd | Instr::FSub | Instr::FMul | Instr::FDiv => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(Ty::Float);
            }
            Instr::Neg => {
                let a = s.stack.pop().expect("verified");
                record_un(&mut info, a);
                s.stack.push(match a {
                    Ty::Int => Ty::Int,
                    Ty::Float => Ty::Float,
                    _ => Ty::Any,
                });
            }
            Instr::INeg => {
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::FNeg => {
                s.stack.pop();
                s.stack.push(Ty::Float);
            }
            Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe => {
                let b = s.stack.pop().expect("verified");
                let a = s.stack.pop().expect("verified");
                record_bin(&mut info, a, b);
                s.stack.push(Ty::Int);
            }
            Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe
            | Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::ToFloat => {
                let a = s.stack.pop().expect("verified");
                record_un(&mut info, a);
                s.stack.push(Ty::Float);
            }
            Instr::ToInt => {
                let a = s.stack.pop().expect("verified");
                record_un(&mut info, a);
                s.stack.push(Ty::Int);
            }
            Instr::Jump(t) => next_pcs.push(t),
            Instr::JumpIf(t) | Instr::JumpIfNot(t) => {
                s.stack.pop();
                next_pcs.push(t);
            }
            Instr::Call(id) => {
                for _ in 0..arity_of(id) {
                    s.stack.pop();
                }
                s.stack.push(Ty::Any);
            }
            Instr::Return => {
                // No successors.
                continue;
            }
            Instr::NewArray => {
                s.stack.pop();
                s.stack.push(Ty::Ref);
            }
            Instr::ALoad => {
                s.stack.pop();
                s.stack.pop();
                s.stack.push(Ty::Any);
            }
            Instr::AStore => {
                s.stack.pop();
                s.stack.pop();
                s.stack.pop();
            }
            Instr::ALen => {
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::Math(m) => {
                let result = match m {
                    MathFn::Floor => {
                        s.stack.pop();
                        Ty::Int
                    }
                    MathFn::Abs => {
                        let a = s.stack.pop().expect("verified");
                        match a {
                            Ty::Int => Ty::Int,
                            Ty::Float => Ty::Float,
                            _ => Ty::Any,
                        }
                    }
                    MathFn::Min | MathFn::Max => {
                        let b = s.stack.pop().expect("verified");
                        let a = s.stack.pop().expect("verified");
                        arith_result(a, b)
                    }
                    MathFn::Pow => {
                        s.stack.pop();
                        s.stack.pop();
                        Ty::Float
                    }
                    _ => {
                        s.stack.pop();
                        Ty::Float
                    }
                };
                s.stack.push(result);
            }
            Instr::Print | Instr::Publish(_) => {
                s.stack.pop();
            }
            Instr::Done | Instr::Nop => {}

            // Fused superinstructions only exist after the fusion pass,
            // which runs last in the pipeline — these arms keep the
            // analysis total (and sound) if it ever sees fused code.
            Instr::LoadLoad(a, b) => {
                s.stack.push(s.locals[a as usize]);
                s.stack.push(s.locals[b as usize]);
            }
            Instr::LoadConst(n, _) => {
                s.stack.push(s.locals[n as usize]);
                s.stack.push(Ty::Int);
            }
            Instr::StoreLoad(n, m) => {
                let t = s.stack.pop().expect("verified");
                s.locals[n as usize] = t;
                s.stack.push(s.locals[m as usize]);
            }
            Instr::StoreJump(n, t) => {
                let ty = s.stack.pop().expect("verified");
                s.locals[n as usize] = ty;
                next_pcs.push(t);
            }
            Instr::ConstIBin(_, _) | Instr::ConstBit(_, _) | Instr::ConstICmp(_, _) => {
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::ConstBin(_, _) => {
                let a = s.stack.pop().expect("verified");
                s.stack.push(arith_result(a, Ty::Int));
            }
            Instr::ICmpBr(_, t, _) | Instr::CmpBr(_, t, _) => {
                s.stack.pop();
                s.stack.pop();
                next_pcs.push(t);
            }
            Instr::ConstICmpBr(_, _, t, _) => {
                s.stack.pop();
                next_pcs.push(t);
            }
            Instr::IBinStore(_, n) | Instr::BitStore(_, n) => {
                s.stack.pop();
                s.stack.pop();
                s.locals[n as usize] = Ty::Int;
            }
            Instr::BinStore(_, n) => {
                let b = s.stack.pop().expect("verified");
                let a = s.stack.pop().expect("verified");
                s.locals[n as usize] = arith_result(a, b);
            }
            Instr::LoadIBin(_, _) => {
                s.stack.pop();
                s.stack.push(Ty::Int);
            }
            Instr::LoadBin(_, n) => {
                let a = s.stack.pop().expect("verified");
                s.stack.push(arith_result(a, s.locals[n as usize]));
            }
            Instr::LoadALoad(_) => {
                s.stack.pop();
                s.stack.push(Ty::Any);
            }
            Instr::LoadLoadBin(_, a, b) => {
                s.stack
                    .push(arith_result(s.locals[a as usize], s.locals[b as usize]));
            }
            Instr::LoadConstIBin(_, _, _) => {
                s.stack.push(Ty::Int);
            }
            Instr::LoadLoadCmpBr(_, _, _, t, _) => {
                next_pcs.push(t);
            }
            Instr::ConstBitStoreLoad(_, _, n, m) => {
                s.stack.pop();
                s.locals[n as usize] = Ty::Int;
                s.stack.push(s.locals[m as usize]);
            }
            Instr::ConstIBinStoreJump(_, _, n, t) => {
                s.stack.pop();
                s.locals[n as usize] = Ty::Int;
                next_pcs.push(t);
            }
        }

        if !instr.is_terminator() {
            next_pcs.push(pc + 1);
        }
        // Write back the post-state used for successor propagation; the
        // recorded state for this pc stays the *pre*-state join, which is
        // what the operand records were computed from.
        for t in next_pcs {
            work.push((t, s.clone()));
        }
    }
    info
}

fn arith_result(a: Ty, b: Ty) -> Ty {
    match (a, b) {
        (Ty::Int, Ty::Int) => Ty::Int,
        (Ty::Float, _) | (_, Ty::Float) => Ty::Float,
        _ => Ty::Any,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;

    fn infer_entry(src: &str) -> (TypeInfo, evovm_bytecode::Program) {
        let p = parse(src).unwrap();
        evovm_bytecode::verify::verify(&p).unwrap();
        let info = infer(&p, p.function(p.entry()));
        (info, p)
    }

    #[test]
    fn constants_give_int_operands() {
        let (info, _) = infer_entry(
            "entry func main/0 {\n  const 1\n  const 2\n  add\n  print\n  null\n  return\n}",
        );
        assert_eq!(info.bin_operands[2], Some((Ty::Int, Ty::Int)));
    }

    #[test]
    fn floats_flow_through_locals() {
        let (info, _) = infer_entry(
            "entry func main/0 locals=1 {
  fconst 1.5
  store 0
  load 0
  load 0
  mul
  print
  null
  return
}",
        );
        assert_eq!(info.bin_operands[4], Some((Ty::Float, Ty::Float)));
    }

    #[test]
    fn parameters_are_any() {
        let src = "entry func main/0 {\n  null\n  return\n}\nfunc f/1 {\n  load 0\n  load 0\n  add\n  return\n}";
        let p = parse(src).unwrap();
        let f = p.function(p.find("f").unwrap());
        let info = infer(&p, f);
        assert_eq!(info.bin_operands[2], Some((Ty::Any, Ty::Any)));
    }

    #[test]
    fn join_at_merge_points() {
        // One branch stores an int, the other a float; after the join the
        // local is Any... actually Int ⊔ Float = Any.
        let (info, _) = infer_entry(
            "entry func main/0 locals=1 {
  const 1
  jumpif right
  const 10
  store 0
  jump join
right:
  fconst 1.0
  store 0
join:
  load 0
  load 0
  add
  print
  null
  return
}",
        );
        // `add` is at pc 9 (0-based): const,jumpif,const,store,jump,fconst,store,load,load,add
        assert_eq!(info.bin_operands[9], Some((Ty::Any, Ty::Any)));
    }

    #[test]
    fn loop_carried_types_converge() {
        let (info, _) = infer_entry(
            "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 100
  cmpge
  jumpif end
  load 0
  const 1
  add
  store 0
  jump top
end:
  null
  return
}",
        );
        // cmpge at pc 4, add at pc 8; both see (Int, Int).
        assert_eq!(info.bin_operands[4], Some((Ty::Int, Ty::Int)));
        assert_eq!(info.bin_operands[8], Some((Ty::Int, Ty::Int)));
    }

    #[test]
    fn intrinsics_and_arrays_type_results() {
        let (info, _) = infer_entry(
            "entry func main/0 locals=1 {
  const 4
  newarray
  store 0
  load 0
  alen
  const 1
  add
  math sqrt
  fconst 2.0
  add
  print
  null
  return
}",
        );
        // alen->Int, +1 -> (Int,Int); sqrt -> Float; +2.0 -> (Float,Float)
        assert_eq!(info.bin_operands[6], Some((Ty::Int, Ty::Int)));
        assert_eq!(info.bin_operands[9], Some((Ty::Float, Ty::Float)));
    }

    #[test]
    fn null_joins_ref_to_ref() {
        assert_eq!(Ty::Null.join(Ty::Ref), Ty::Ref);
        assert_eq!(Ty::Ref.join(Ty::Null), Ty::Ref);
        assert_eq!(Ty::Int.join(Ty::Float), Ty::Any);
        assert_eq!(Ty::Any.join(Ty::Int), Ty::Any);
    }
}
