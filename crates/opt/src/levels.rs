//! Optimization levels and their cost/quality model.
//!
//! The evolvable VM mirrors Jikes RVM's four compilation levels: the
//! *baseline* compiler (level −1) plus optimizing levels 0, 1 and 2.
//! Each level has
//!
//! - a **compilation cost** in virtual cycles per input instruction
//!   (higher levels run more passes and more expensive register
//!   allocation), and
//! - an **execution quality multiplier** applied to every executed
//!   instruction's base cost (lower is faster; it models native code
//!   quality beyond the bytecode-level pass effects we apply for real).
//!
//! Higher levels are *usually but not always* faster: level 2 carries a
//! deterministic per-method perturbation ([`OptLevel::quality_for`]) so a
//! small fraction of methods regress at O2, matching the paper's remark
//! that higher levels "often (not always)" produce faster code.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A JIT compilation level, ordered from cheapest to most aggressive.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum OptLevel {
    /// The baseline compiler (Jikes level −1): instant, poor code.
    #[default]
    Baseline,
    /// Level 0: cheap compilation, moderate code quality.
    O0,
    /// Level 1: folding, quickening, peephole, DCE.
    O1,
    /// Level 2: O1 plus inlining, at a much higher compile cost.
    O2,
}

impl OptLevel {
    /// All levels in ascending order.
    pub const ALL: [OptLevel; 4] = [OptLevel::Baseline, OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// The numeric level as reported by Jikes RVM (−1, 0, 1, 2).
    pub fn as_i8(self) -> i8 {
        match self {
            OptLevel::Baseline => -1,
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
        }
    }

    /// Parse from the Jikes numeric level.
    pub fn from_i8(v: i8) -> Option<OptLevel> {
        match v {
            -1 => Some(OptLevel::Baseline),
            0 => Some(OptLevel::O0),
            1 => Some(OptLevel::O1),
            2 => Some(OptLevel::O2),
            _ => None,
        }
    }

    /// The next level up, if any.
    pub fn next(self) -> Option<OptLevel> {
        match self {
            OptLevel::Baseline => Some(OptLevel::O0),
            OptLevel::O0 => Some(OptLevel::O1),
            OptLevel::O1 => Some(OptLevel::O2),
            OptLevel::O2 => None,
        }
    }

    /// Compilation cost in virtual cycles per input instruction.
    ///
    /// Calibrated so that, over the workloads' input ranges, the ideal
    /// level of a hot method genuinely varies with the input: short runs
    /// cannot amortize O2's cost while long runs can — the tension the
    /// paper's input-specific prediction exploits.
    pub fn compile_cost_per_instr(self) -> u64 {
        match self {
            OptLevel::Baseline => 8,
            OptLevel::O0 => 200,
            OptLevel::O1 => 1_200,
            OptLevel::O2 => 6_000,
        }
    }

    /// Nominal execution quality multiplier (cycles scale; lower = faster).
    pub fn quality(self) -> f64 {
        match self {
            OptLevel::Baseline => 12.0,
            OptLevel::O0 => 5.0,
            OptLevel::O1 => 3.0,
            OptLevel::O2 => 2.0,
        }
    }

    /// [`OptLevel::quality_for`] in the integer milli-cycle domain the
    /// interpreter charges in: the per-executed-instruction multiplier,
    /// rounded once here so every consumer (the VM's clock, the folded
    /// cost tables, benefit estimation) agrees on the exact `u64` value.
    pub fn quality_milli_for(self, method_name: &str) -> u64 {
        let milli = (self.quality_for(method_name) * 1000.0).round();
        // Qualities are small positive reals; the cast cannot truncate.
        milli as u64
    }

    /// Per-method execution quality: the nominal [`OptLevel::quality`]
    /// perturbed deterministically by the method name at O2 (±12%), so
    /// that for a small fraction of methods O2 code is *slower* than O1
    /// code — higher optimization is usually, but not always, better.
    pub fn quality_for(self, method_name: &str) -> f64 {
        match self {
            OptLevel::O2 => {
                let h = fnv1a(method_name.as_bytes());
                // Map hash to [-0.12, +0.60]: mostly small perturbation,
                // with a tail of methods where O2 hurts (quality above O1's
                // 3.0 requires +50%, reached by ~7% of hashes).
                let unit = (h % 10_000) as f64 / 10_000.0; // [0,1)
                let skew = if unit > 0.93 {
                    0.30 + (unit - 0.93) * 6.0 // up to +0.72
                } else {
                    (unit - 0.5) * 0.24 // ±0.12
                };
                self.quality() * (1.0 + skew)
            }
            _ => self.quality(),
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_i8())
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_aggressiveness() {
        assert!(OptLevel::Baseline < OptLevel::O0);
        assert!(OptLevel::O1 < OptLevel::O2);
    }

    #[test]
    fn numeric_roundtrip() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::from_i8(l.as_i8()), Some(l));
        }
        assert_eq!(OptLevel::from_i8(3), None);
    }

    #[test]
    fn costs_rise_and_quality_improves_with_level() {
        for w in OptLevel::ALL.windows(2) {
            assert!(w[0].compile_cost_per_instr() < w[1].compile_cost_per_instr());
            assert!(w[0].quality() > w[1].quality());
        }
    }

    #[test]
    fn next_walks_the_ladder() {
        assert_eq!(OptLevel::Baseline.next(), Some(OptLevel::O0));
        assert_eq!(OptLevel::O2.next(), None);
    }

    #[test]
    fn o2_quality_varies_by_method_and_sometimes_regresses() {
        let names: Vec<String> = (0..400).map(|i| format!("m{i}")).collect();
        let mut worse_than_o1 = 0;
        for n in &names {
            let q = OptLevel::O2.quality_for(n);
            assert!(q > 0.0);
            if q > OptLevel::O1.quality() {
                worse_than_o1 += 1;
            }
        }
        // Some but not many methods regress at O2.
        assert!(worse_than_o1 > 0, "expected some O2 regressions");
        assert!(
            (worse_than_o1 as f64) < 0.2 * names.len() as f64,
            "too many O2 regressions: {worse_than_o1}"
        );
        // Deterministic.
        assert_eq!(
            OptLevel::O2.quality_for("foo"),
            OptLevel::O2.quality_for("foo")
        );
    }

    #[test]
    fn lower_levels_have_stable_quality() {
        for l in [OptLevel::Baseline, OptLevel::O0, OptLevel::O1] {
            assert_eq!(l.quality_for("anything"), l.quality());
        }
    }

    #[test]
    fn quality_milli_matches_the_float_quality_rounded() {
        for l in OptLevel::ALL {
            for name in ["main", "work", "trace", "m17"] {
                assert_eq!(
                    l.quality_milli_for(name),
                    (l.quality_for(name) * 1000.0).round() as u64
                );
            }
        }
    }
}
