//! Shared rewriting utilities: deleting instructions while keeping branch
//! targets consistent.

use evovm_bytecode::Instr;

/// Remove the instructions whose `keep` flag is false, remapping every
/// branch target to the first surviving instruction at or after the old
/// target.
///
/// Deleting a `Jump`/`Return`'s *target* is safe; deleting the final
/// instruction a branch points *past* is the caller's responsibility to
/// avoid (passes here only delete provably-dead or fused instructions and
/// always keep terminators).
///
/// # Panics
///
/// Panics if `keep.len() != code.len()` or if a surviving branch targets a
/// position with no surviving instruction at or after it.
pub fn compact(code: &[Instr], keep: &[bool]) -> Vec<Instr> {
    assert_eq!(code.len(), keep.len());
    // new_at[i] = index the instruction at old position i will have; for
    // deleted positions, the index of the next surviving instruction.
    let mut new_at = vec![0u32; code.len() + 1];
    let mut n = 0u32;
    for i in 0..code.len() {
        new_at[i] = n;
        if keep[i] {
            n += 1;
        }
    }
    new_at[code.len()] = n;
    let mut out = Vec::with_capacity(n as usize);
    for (i, instr) in code.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let rewritten = match instr.branch_target() {
            Some(t) => {
                let nt = new_at[t as usize];
                assert!(nt < n, "branch target beyond surviving code");
                instr.with_branch_target(nt)
            }
            None => *instr,
        };
        out.push(rewritten);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaps_targets_past_deletions() {
        // 0: const 1 (deleted)
        // 1: jump 3
        // 2: nop (deleted)
        // 3: return
        let code = vec![Instr::Const(1), Instr::Jump(3), Instr::Nop, Instr::Return];
        let keep = vec![false, true, false, true];
        let out = compact(&code, &keep);
        assert_eq!(out, vec![Instr::Jump(1), Instr::Return]);
    }

    #[test]
    fn target_on_deleted_instruction_slides_forward() {
        // jump 1 where 1 is deleted -> should land on old 2 (new 1).
        let code = vec![Instr::Jump(1), Instr::Nop, Instr::Return];
        let keep = vec![true, false, true];
        let out = compact(&code, &keep);
        assert_eq!(out, vec![Instr::Jump(1), Instr::Return]);
    }

    #[test]
    fn identity_when_everything_kept() {
        let code = vec![Instr::Const(1), Instr::Pop, Instr::Null, Instr::Return];
        let keep = vec![true; 4];
        assert_eq!(compact(&code, &keep), code);
    }
}
