//! `fop` — the DaCapo XSL-FO formatter analog.
//!
//! Parses an FO document of `LINES` lines, lays it out, and renders to the
//! format selected by `-fmt` (`pdf`, `ps` or `txt`). Each renderer is a
//! distinct method with a distinct per-line cost, so the categorical
//! format option decides which method the optimizer should focus on.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# fop: output format option (categorical), FO document operand
option {name=-fmt; type=str; attr=VAL; default=pdf; has_arg=y}
operand {position=1; type=file; attr=LINES:SIZE}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

/// `fmt_id`: 0 = pdf (8 units/line), 1 = ps (4), 2 = txt (1).
fn source(lines: u64, fmt_id: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn parse_fo(lines, seed) {{
    let doc = new [lines];
    let s = seed;
    for (let i = 0; i < lines; i = i + 1) {{
        s = lcg(s);
        doc[i] = s % 80 + 1;
    }}
    return doc;
}}

fn layout(doc, lines) {{
    let height = 0;
    for (let i = 0; i < lines; i = i + 1) {{
        let w = doc[i];
        let breaks = 0;
        while (w > 20) {{
            w = w - 20;
            breaks = breaks + 1;
        }}
        height = height + breaks + 1;
    }}
    return height;
}}

fn render_line(width, per_line, salt) {{
    let out = 0;
    let work = width * per_line;
    for (let k = 0; k < work; k = k + 1) {{
        out = (out * 131 + k + salt) & 1073741823;
    }}
    return out;
}}

fn render_pdf(doc, lines) {{
    let out = 0;
    for (let i = 0; i < lines; i = i + 1) {{
        out = (out + render_line(doc[i], 8, 17)) & 1073741823;
    }}
    return out;
}}

fn render_ps(doc, lines) {{
    let out = 0;
    for (let i = 0; i < lines; i = i + 1) {{
        out = (out + render_line(doc[i], 4, 29)) & 1073741823;
    }}
    return out;
}}

fn render_txt(doc, lines) {{
    let out = 0;
    for (let i = 0; i < lines; i = i + 1) {{
        out = (out + render_line(doc[i], 1, 43)) & 1073741823;
    }}
    return out;
}}

fn main() {{
    let lines = {lines};
    let fmt = {fmt_id};
    let doc = parse_fo(lines, {seed});
    print layout(doc, lines);
    if (fmt == 0) {{
        print render_pdf(doc, lines);
    }} else if (fmt == 1) {{
        print render_ps(doc, lines);
    }} else {{
        print render_txt(doc, lines);
    }}
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    const FMTS: [&str; 3] = ["pdf", "ps", "txt"];
    let mut inputs = Vec::with_capacity(30);
    for i in 0..30u64 {
        let lines = log_uniform_int(rng, 60, 4_000);
        let fmt_id = rng.gen_range(0..FMTS.len());
        let seed = rng.gen_range(1..1_000_000u64);
        let name = format!("doc_{i}.fo");
        let mut vfs = evovm_xicl::Vfs::new();
        // One VFS line per document line so LINES matches.
        let mut body = String::new();
        for l in 0..lines {
            body.push_str(&format!("<fo:block line=\"{l}\"/>\n"));
        }
        vfs.write(name.clone(), body);
        inputs.push(GeneratedInput {
            args: vec!["-fmt".into(), FMTS[fmt_id].into(), name],
            vfs,
            source: source(lines, fmt_id as u64, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "fop",
        suite: Suite::Dacapo,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("fop does not publish"),
        }
    }

    #[test]
    fn formats_have_distinct_costs() {
        let (_, pdf) = run(&source(200, 0, 3));
        let (_, ps) = run(&source(200, 1, 3));
        let (_, txt) = run(&source(200, 2, 3));
        assert!(pdf > ps);
        assert!(ps > txt);
    }

    #[test]
    fn lines_feature_matches_document() {
        let mut rng = StdRng::seed_from_u64(6);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 30);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        let lines = fv.get("operand0.LINES").unwrap().as_num().unwrap();
        assert!(lines >= 60.0);
    }

    #[test]
    fn template_output_is_deterministic() {
        let (a, _) = run(&source(100, 0, 9));
        let (b, _) = run(&source(100, 0, 9));
        assert_eq!(a, b);
    }
}
