//! `bloat` — the DaCapo bytecode-optimizer analog.
//!
//! "Optimizes" a synthetic class file of `mLoc` lines: builds a CFG, then
//! runs the passes selected by the `-op` option (`dce`, `inline` or
//! `all`). The operation type is a categorical feature that decides which
//! pass methods get hot; the LoC count (the paper's user-defined feature
//! for Bloat) decides how hot.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, text_file, HeaderNum, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# bloat: operation type (categorical), class file with LoC header
option {name=-op; type=str; attr=VAL; default=all; has_arg=y}
operand {position=1; type=file; attr=mLoc:SIZE}
";

fn registry() -> Registry {
    let mut r = Registry::with_predefined();
    r.register("mLoc", HeaderNum { index: 0 });
    r
}

/// `op_id`: 0 = dce, 1 = inline, 2 = all.
fn source(loc: u64, op_id: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn build_cfg(loc, seed) {{
    let blocks = new [loc];
    let s = seed;
    for (let i = 0; i < loc; i = i + 1) {{
        s = lcg(s);
        blocks[i] = s % 100;
    }}
    return blocks;
}}

fn dce_block(v) {{
    let live = v & 1;
    let out = v;
    if (live == 0 && v > 50) {{
        out = v / 2;
    }}
    let mark = (v * 37 + 11) & 255;
    if (mark > 128) {{
        out = out + 1;
    }}
    return out;
}}

fn dce_pass(blocks, loc) {{
    let removed = 0;
    for (let r = 0; r < 3; r = r + 1) {{
        for (let i = 0; i < loc; i = i + 1) {{
            let nv = dce_block(blocks[i]);
            if (nv != blocks[i]) {{
                blocks[i] = nv;
                removed = removed + 1;
            }}
        }}
    }}
    return removed;
}}

fn inline_site(callee) {{
    let budget = callee * 4;
    let cost = 0;
    for (let k = 0; k < budget; k = k + 1) {{
        cost = (cost * 3 + k) & 4095;
    }}
    return cost;
}}

fn inline_pass(blocks, loc) {{
    let inlined = 0;
    for (let i = 0; i < loc; i = i + 1) {{
        let cost = inline_site(blocks[i] % 17);
        if (cost % 3 == 0) {{
            inlined = inlined + 1;
        }}
    }}
    return inlined;
}}

fn emit(blocks, loc) {{
    let sum = 0;
    for (let i = 0; i < loc; i = i + 1) {{
        sum = (sum * 31 + blocks[i]) & 1073741823;
    }}
    return sum;
}}

fn main() {{
    let loc = {loc};
    let op = {op_id};
    let blocks = build_cfg(loc, {seed});
    if (op == 0 || op == 2) {{
        print dce_pass(blocks, loc);
    }}
    if (op == 1 || op == 2) {{
        print inline_pass(blocks, loc);
    }}
    print emit(blocks, loc);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    const OPS: [&str; 3] = ["dce", "inline", "all"];
    let mut inputs = Vec::with_capacity(40);
    for i in 0..40u64 {
        let loc = log_uniform_int(rng, 400, 40_000);
        let op_id = rng.gen_range(0..OPS.len());
        let seed = rng.gen_range(1..1_000_000u64);
        let name = format!("Class_{i}.class");
        let mut vfs = evovm_xicl::Vfs::new();
        vfs.write(
            name.clone(),
            text_file(&format!("{loc} loc"), 200 + loc as usize / 4, seed),
        );
        inputs.push(GeneratedInput {
            args: vec!["-op".into(), OPS[op_id].into(), name],
            vfs,
            source: source(loc, op_id as u64, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "bloat",
        suite: Suite::Dacapo,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("bloat does not publish"),
        }
    }

    #[test]
    fn op_selects_the_passes() {
        let (dce, _) = run(&source(100, 0, 3));
        let (inline, _) = run(&source(100, 1, 3));
        let (all, _) = run(&source(100, 2, 3));
        assert_eq!(dce.len(), 2);
        assert_eq!(inline.len(), 2);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn inline_dominates_dce_cost() {
        let (_, dce_cycles) = run(&source(400, 0, 3));
        let (_, inline_cycles) = run(&source(400, 1, 3));
        assert!(inline_cycles > dce_cycles);
    }

    #[test]
    fn loc_feature_extracts() {
        let mut rng = StdRng::seed_from_u64(5);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 40);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert!(fv.get("operand0.mLoc").unwrap().as_num().unwrap() >= 400.0);
        assert!(fv.get("-op.VAL").unwrap().as_cat().is_some());
    }
}
