//! `search` — the Java Grande alpha-beta game-tree search analog.
//!
//! Searches a synthetic game tree with alpha-beta pruning. The search
//! depth is derived from the length of the position string — the paper's
//! feature for Search is exactly "length of input string" — and the input
//! set is small (the paper collected only a handful of legal positions).

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::LCG;
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# search: position string operand (its LENgth drives the search depth)
operand {position=1; type=str; attr=LEN:VAL}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(depth: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn evaluate(state) {{
    let v = (state * 2654435761) & 1048575;
    return v % 2001 - 1000;
}}

fn child(state, mv) {{
    return lcg(state * 4 + mv + 1);
}}

fn alphabeta(state, depth, alpha, beta) {{
    if (depth == 0) {{
        return evaluate(state);
    }}
    let best = 0 - 1000000;
    for (let mv = 0; mv < 4; mv = mv + 1) {{
        let score = 0 - alphabeta(child(state, mv), depth - 1, 0 - beta, 0 - alpha);
        if (score > best) {{
            best = score;
        }}
        if (best > alpha) {{
            alpha = best;
        }}
        if (alpha >= beta) {{
            break;
        }}
    }}
    return best;
}}

fn main() {{
    let depth = {depth};
    let root = {seed};
    print alphabeta(root, depth, 0 - 1000000, 1000000);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    // Seven legal positions, as in the paper's tiny Search input set.
    // Longer position strings mean deeper searches.
    let mut inputs = Vec::with_capacity(7);
    for len in [4u64, 5, 6, 7, 8, 9, 10] {
        let seed = rng.gen_range(1..1_000_000u64);
        let depth = 3 + len / 2; // 5..=8
        let mut position = String::new();
        let mut s = seed;
        for _ in 0..len {
            s = s.wrapping_mul(48271) % 0x7fff_ffff;
            position.push((b'a' + (s % 8) as u8) as char);
        }
        inputs.push(GeneratedInput {
            args: vec![position],
            vfs: evovm_xicl::Vfs::new(),
            source: source(depth, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "search",
        suite: Suite::Grande,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("search does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(4, 3));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn deeper_searches_cost_more() {
        let (_, shallow) = run(&source(4, 3));
        let (_, deep) = run(&source(7, 3));
        assert!(deep > 5 * shallow);
    }

    #[test]
    fn exactly_seven_inputs() {
        let mut rng = StdRng::seed_from_u64(8);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 7);
        // The LEN feature separates them.
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert_eq!(fv.get("operand0.LEN").unwrap().as_num(), Some(4.0));
    }
}
