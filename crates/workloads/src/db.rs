//! `db` — the SPECjvm98 in-memory database analog.
//!
//! Builds a key table of `mDbSize` records, shell-sorts it, then serves
//! `mQueries` binary-search lookups plus `-u` updates. The paper's two
//! user-defined features for Db — the sizes of the database and of the
//! query batch — are extracted from the input files' header lines.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, text_file, HeaderNum, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# db: update count option, database file, query file
option {name=-u; type=num; attr=VAL; default=0; has_arg=y}
operand {position=1; type=file; attr=mDbSize}
operand {position=2; type=file; attr=mQueries}
";

fn registry() -> Registry {
    let mut r = Registry::with_predefined();
    r.register("mDbSize", HeaderNum { index: 0 });
    r.register("mQueries", HeaderNum { index: 0 });
    r
}

fn source(n: u64, q: u64, u: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn build_chunk(keys, from, to, seed) {{
    let s = seed;
    for (let i = from; i < to; i = i + 1) {{
        s = lcg(s);
        keys[i] = s % 1000000;
    }}
    return s;
}}

fn build(keys, n, seed) {{
    let s = seed;
    for (let c = 0; c < n; c = c + 256) {{
        s = build_chunk(keys, c, min(c + 256, n), s);
    }}
    return s;
}}

fn insert_sorted(keys, gap, i) {{
    let v = keys[i];
    let j = i;
    while (j >= gap && keys[j - gap] > v) {{
        keys[j] = keys[j - gap];
        j = j - gap;
    }}
    keys[j] = v;
    return j;
}}

fn shellsort(keys, n) {{
    let gap = n / 2;
    while (gap > 0) {{
        for (let i = gap; i < n; i = i + 1) {{
            insert_sorted(keys, gap, i);
        }}
        gap = gap / 2;
    }}
    return n;
}}

fn bsearch(keys, n, key) {{
    let lo = 0;
    let hi = n;
    while (lo < hi) {{
        let mid = (lo + hi) / 2;
        if (keys[mid] < key) {{
            lo = mid + 1;
        }} else {{
            hi = mid;
        }}
    }}
    return lo;
}}

fn run_queries(keys, n, q, seed) {{
    let s = seed;
    let hits = 0;
    for (let i = 0; i < q; i = i + 1) {{
        s = lcg(s);
        let pos = bsearch(keys, n, s % 1000000);
        if (pos < n && keys[pos] == s % 1000000) {{
            hits = hits + 1;
        }}
    }}
    return hits;
}}

fn run_updates(keys, n, u, seed) {{
    let s = seed;
    for (let i = 0; i < u; i = i + 1) {{
        s = lcg(s);
        keys[s % n] = s % 1000000;
    }}
    return s;
}}

fn main() {{
    let n = {n};
    let q = {q};
    let u = {u};
    let keys = new [n];
    build(keys, n, {seed});
    shellsort(keys, n);
    print run_queries(keys, n, q, {seed} + 99);
    run_updates(keys, n, u, {seed} + 7);
    print keys[n / 2];
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(90);
    for i in 0..90u64 {
        let n = log_uniform_int(rng, 400, 30_000);
        let q = log_uniform_int(rng, 100, 40_000);
        let u = log_uniform_int(rng, 1, 2_000);
        let seed = rng.gen_range(1..1_000_000u64);
        let db_name = format!("db_{i}.tbl");
        let q_name = format!("queries_{i}.sql");
        let mut vfs = evovm_xicl::Vfs::new();
        vfs.write(
            db_name.clone(),
            text_file(&format!("{n} records"), 256, seed),
        );
        vfs.write(
            q_name.clone(),
            text_file(&format!("{q} queries"), 128, seed + 1),
        );
        inputs.push(GeneratedInput {
            args: vec!["-u".into(), u.to_string(), db_name, q_name],
            vfs,
            source: source(n, q, u, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "db",
        suite: Suite::Jvm98,
        campaign_runs: 70,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("db does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(100, 50, 5, 3));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn sorted_output_is_deterministic() {
        let (a, _) = run(&source(100, 50, 5, 3));
        let (b, _) = run(&source(100, 50, 5, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn both_header_features_extract() {
        let mut rng = StdRng::seed_from_u64(2);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 90);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert!(fv.get("operand0.mDbSize").unwrap().as_num().unwrap() >= 400.0);
        assert!(fv.get("operand1.mQueries").unwrap().as_num().unwrap() >= 100.0);
    }
}
