//! `moldyn` — the Java Grande molecular-dynamics analog.
//!
//! `-n` particles with an O(n²) pairwise force kernel, stepped `-s`
//! times. The force loop is by far the hottest method, and whether it
//! deserves O2 depends entirely on the input's `n²·s` product.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# moldyn: particle count and step count
option {name=-n; type=num; attr=VAL; default=24; has_arg=y}
option {name=-s; type=num; attr=VAL; default=5; has_arg=y}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(n: u64, steps: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn init_axis(n, seed) {{
    let a = new [n];
    let s = seed;
    for (let i = 0; i < n; i = i + 1) {{
        s = lcg(s);
        a[i] = float(s % 1000) / 100.0;
    }}
    return a;
}}

fn forces(x, y, fx, fy, n) {{
    let pot = 0.0;
    for (let i = 0; i < n; i = i + 1) {{
        let fxi = 0.0;
        let fyi = 0.0;
        for (let j = 0; j < n; j = j + 1) {{
            if (j != i) {{
                let dx = x[i] - x[j];
                let dy = y[i] - y[j];
                let r2 = dx * dx + dy * dy + 0.01;
                let inv = 1.0 / r2;
                let f = inv * inv - 0.5 * inv;
                fxi = fxi + dx * f;
                fyi = fyi + dy * f;
                pot = pot + inv;
            }}
        }}
        fx[i] = fxi;
        fy[i] = fyi;
    }}
    return pot;
}}

fn advance(x, y, fx, fy, n, dt) {{
    for (let i = 0; i < n; i = i + 1) {{
        x[i] = x[i] + fx[i] * dt;
        y[i] = y[i] + fy[i] * dt;
    }}
    return x[0];
}}

fn kinetic(fx, fy, n) {{
    let e = 0.0;
    for (let i = 0; i < n; i = i + 1) {{
        e = e + fx[i] * fx[i] + fy[i] * fy[i];
    }}
    return e;
}}

fn main() {{
    let n = {n};
    let steps = {steps};
    let x = init_axis(n, {seed});
    let y = init_axis(n, {seed} + 1);
    let fx = new [n];
    let fy = new [n];
    let pot = 0.0;
    for (let t = 0; t < steps; t = t + 1) {{
        pot = pot + forces(x, y, fx, fy, n);
        advance(x, y, fx, fy, n, 0.002);
    }}
    print int(pot);
    print int(kinetic(fx, fy, n) * 1000.0);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(30);
    for _ in 0..30u64 {
        let n = log_uniform_int(rng, 12, 80);
        let steps = log_uniform_int(rng, 2, 32);
        let seed = rng.gen_range(1..1_000_000u64);
        inputs.push(GeneratedInput {
            args: vec!["-n".into(), n.to_string(), "-s".into(), steps.to_string()],
            vfs: evovm_xicl::Vfs::new(),
            source: source(n, steps, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "moldyn",
        suite: Suite::Grande,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("moldyn does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(8, 3, 3));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pairwise_kernel_is_quadratic() {
        let (_, n8) = run(&source(8, 4, 3));
        let (_, n32) = run(&source(32, 4, 3));
        // 16× the pairs; allow slack for fixed costs.
        assert!(n32 > 8 * n8);
    }
}
