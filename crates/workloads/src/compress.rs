//! `compress` — the SPECjvm98 LZW-style compressor analog.
//!
//! Runs `level` passes of a rolling-hash / back-reference scan over a data
//! buffer whose size comes from the input file's size. Running time is
//! nearly linear in `SIZE × level`, giving the very wide spread the paper
//! uses to expose the rise-then-diminish speedup correlation (Figure 9b).

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, text_file, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# compress: compression level option, data file operand
option {name=-l; type=num; attr=VAL; default=3; has_arg=y}
operand {position=1; type=file; attr=SIZE:LINES}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(n: u64, level: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn fill_chunk(data, from, to, seed) {{
    let s = seed;
    for (let i = from; i < to; i = i + 1) {{
        s = lcg(s);
        data[i] = s % 251;
    }}
    return s;
}}

fn fill(data, n, seed) {{
    let s = seed;
    for (let c = 0; c < n; c = c + 256) {{
        s = fill_chunk(data, c, min(c + 256, n), s);
    }}
    return s;
}}

fn hash3(a, b, c) {{
    return ((a * 131 + b) * 131 + c) & 4095;
}}

fn compress_step(data, table, i) {{
    let h = hash3(data[i], data[i + 1], data[i + 2]);
    let prev = table[h];
    let hit = 0;
    if (prev > 0 && data[prev - 1] == data[i]) {{
        hit = 1;
    }}
    table[h] = i + 1;
    return hit;
}}

fn compress_pass(data, n, table) {{
    let matches = 0;
    for (let i = 0; i + 2 < n; i = i + 1) {{
        matches = matches + compress_step(data, table, i);
    }}
    return matches;
}}

fn checksum_chunk(data, from, to) {{
    let sum = 0;
    for (let i = from; i < to; i = i + 1) {{
        sum = (sum * 31 + data[i]) & 1073741823;
    }}
    return sum;
}}

fn checksum(data, n) {{
    let sum = 0;
    for (let c = 0; c < n; c = c + 256) {{
        let hi = min(c + 256, n);
        sum = (sum ^ checksum_chunk(data, c, hi)) & 1073741823;
    }}
    return sum;
}}

fn main() {{
    let n = {n};
    let level = {level};
    let data = new [n];
    fill(data, n, {seed});
    let table = new [4096];
    for (let t = 0; t < 4096; t = t + 1) {{
        table[t] = 0;
    }}
    let total = 0;
    for (let pass = 0; pass < level; pass = pass + 1) {{
        total = total + compress_pass(data, n, table);
    }}
    print total;
    print checksum(data, n);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(100);
    for i in 0..100u64 {
        // File sizes over two orders of magnitude; the data buffer scales
        // with the file size (4 bytes per element).
        let bytes = log_uniform_int(rng, 2_000, 250_000);
        let n = bytes / 4;
        let level = rng.gen_range(1..=4u64);
        let seed = rng.gen_range(1..1_000_000u64);
        let name = format!("data_{i}.bin");
        let mut vfs = evovm_xicl::Vfs::new();
        vfs.write(
            name.clone(),
            text_file("compress corpus", bytes as usize, seed),
        );
        inputs.push(GeneratedInput {
            args: vec!["-l".into(), level.to_string(), name],
            vfs,
            source: source(n, level, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "compress",
        suite: Suite::Jvm98,
        campaign_runs: 70,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("compress does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(200, 2, 5));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn time_scales_with_size_and_level() {
        // The 4096-entry hash-table init is a fixed cost, so compare
        // sizes well above it.
        let (_, small) = run(&source(2_000, 1, 5));
        let (_, big) = run(&source(20_000, 1, 5));
        let (_, leveled) = run(&source(2_000, 4, 5));
        assert!(big > 5 * small, "big={big} small={small}");
        assert!(leveled > 2 * small, "leveled={leveled} small={small}");
    }

    #[test]
    fn size_feature_tracks_the_buffer() {
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = generate(&mut rng);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert!(fv.get("operand0.SIZE").unwrap().as_num().unwrap() >= 2_000.0);
    }
}
