//! `euler` — the Java Grande CFD analog.
//!
//! Time-steps a 2-D Euler flow on an `n×n` grid for `-t` steps: flux
//! computation, cell update and boundary conditions. Floating-point heavy
//! (the quickening pass matters here), running time ~ `n² × t`.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# euler: grid size and time steps (the Grande 'input value')
option {name=-n; type=num; attr=VAL; default=16; has_arg=y}
option {name=-t; type=num; attr=VAL; default=10; has_arg=y}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(n: u64, steps: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn init(grid, cells, seed) {{
    let s = seed;
    for (let i = 0; i < cells; i = i + 1) {{
        s = lcg(s);
        grid[i] = float(s % 1000) / 1000.0 + 0.5;
    }}
    return s;
}}

fn flux(grid, next, n) {{
    let cells = n * n;
    for (let i = n; i < cells - n; i = i + 1) {{
        let up = grid[i - n];
        let down = grid[i + n];
        let here = grid[i];
        let f = (up - here) * 0.24 + (down - here) * 0.24;
        next[i] = here + f;
    }}
    return next[n];
}}

fn boundary(grid, n) {{
    let cells = n * n;
    for (let i = 0; i < n; i = i + 1) {{
        grid[i] = 1.0;
        grid[cells - 1 - i] = 0.5;
    }}
    return grid[0];
}}

fn energy(grid, cells) {{
    let e = 0.0;
    for (let i = 0; i < cells; i = i + 1) {{
        e = e + grid[i] * grid[i];
    }}
    return e;
}}

fn main() {{
    let n = {n};
    let steps = {steps};
    let cells = n * n;
    let grid = new [cells];
    let next = new [cells];
    init(grid, cells, {seed});
    init(next, cells, {seed} + 1);
    for (let t = 0; t < steps; t = t + 1) {{
        flux(grid, next, n);
        let tmp = grid;
        grid = next;
        next = tmp;
        boundary(grid, n);
    }}
    print int(energy(grid, cells) * 1000.0);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(30);
    for _ in 0..30u64 {
        let n = log_uniform_int(rng, 10, 56);
        let steps = log_uniform_int(rng, 4, 80);
        let seed = rng.gen_range(1..1_000_000u64);
        inputs.push(GeneratedInput {
            args: vec!["-n".into(), n.to_string(), "-t".into(), steps.to_string()],
            vfs: evovm_xicl::Vfs::new(),
            source: source(n, steps, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "euler",
        suite: Suite::Grande,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("euler does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(8, 4, 3));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cost_scales_with_grid_and_steps() {
        let (_, small) = run(&source(8, 4, 3));
        let (_, big_grid) = run(&source(24, 4, 3));
        let (_, more_steps) = run(&source(8, 32, 3));
        assert!(big_grid > 3 * small);
        assert!(more_steps > 3 * small);
    }
}
