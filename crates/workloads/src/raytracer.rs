//! `raytracer` — the Java Grande ray tracer analog.
//!
//! Unlike [`crate::mtrt`] this version takes a single numeric "input
//! value" `-n` (the Grande convention): it renders an `n×n` image of a
//! fixed 12-sphere scene without reflections, so its cost is a clean
//! quadratic function of one feature.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# raytracer: the Grande single input value (image resolution)
option {name=-n; type=num; attr=VAL; default=16; has_arg=y}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(n: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn build_scene(seed) {{
    let ns = 12;
    let scene = new [ns * 4];
    let s = seed;
    for (let i = 0; i < ns; i = i + 1) {{
        s = lcg(s);
        scene[i * 4] = float(s % 160) / 10.0 - 8.0;
        s = lcg(s);
        scene[i * 4 + 1] = float(s % 160) / 10.0 - 8.0;
        s = lcg(s);
        scene[i * 4 + 2] = float(s % 100) / 10.0 + 2.0;
        s = lcg(s);
        scene[i * 4 + 3] = 0.4 + float(s % 20) / 10.0;
    }}
    return scene;
}}

fn hit_sphere(scene, i, dx, dy, dz) {{
    let cx = scene[i * 4];
    let cy = scene[i * 4 + 1];
    let cz = scene[i * 4 + 2];
    let r = scene[i * 4 + 3];
    let b = cx * dx + cy * dy + cz * dz;
    let c = cx * cx + cy * cy + cz * cz - r * r;
    let disc = b * b - c;
    if (disc > 0.0) {{
        let t = b - sqrt(disc);
        if (t > 0.001) {{
            return int(t * 1000.0);
        }}
    }}
    return 0 - 1;
}}

fn pixel(scene, dx, dy, dz) {{
    let best = 0 - 1;
    let bestt = 1000000000;
    for (let i = 0; i < 12; i = i + 1) {{
        let t = hit_sphere(scene, i, dx, dy, dz);
        if (t >= 0 && t < bestt) {{
            bestt = t;
            best = i;
        }}
    }}
    if (best < 0) {{
        return 8;
    }}
    return 255 - best * 9 - bestt % 32;
}}

fn render(scene, n) {{
    let acc = 0;
    for (let y = 0; y < n; y = y + 1) {{
        for (let x = 0; x < n; x = x + 1) {{
            let dx = float(x) / float(n) - 0.5;
            let dy = float(y) / float(n) - 0.5;
            acc = (acc + pixel(scene, dx, dy, 1.0)) & 1073741823;
        }}
    }}
    return acc;
}}

fn main() {{
    let n = {n};
    let scene = build_scene({seed});
    print render(scene, n);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(70);
    for _ in 0..70u64 {
        let n = log_uniform_int(rng, 8, 96);
        let seed = rng.gen_range(1..1_000_000u64);
        inputs.push(GeneratedInput {
            args: vec!["-n".into(), n.to_string()],
            vfs: evovm_xicl::Vfs::new(),
            source: source(n, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "raytracer",
        suite: Suite::Grande,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("raytracer does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(8, 3));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cost_is_quadratic_in_resolution() {
        let (_, n8) = run(&source(8, 3));
        let (_, n32) = run(&source(32, 3));
        assert!(n32 > 8 * n8);
    }

    #[test]
    fn scene_seed_changes_the_image() {
        let (a, _) = run(&source(16, 3));
        let (b, _) = run(&source(16, 4));
        assert_ne!(a, b);
    }
}
