//! Shared helpers for workload generation.

use rand::rngs::StdRng;
use rand::Rng;

/// Log-uniform sample in `[lo, hi]` — running times should spread over
/// orders of magnitude, as the paper's input sets do.
pub(crate) fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi >= lo);
    let u: f64 = rng.gen();
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

/// Log-uniform integer in `[lo, hi]`.
pub(crate) fn log_uniform_int(rng: &mut StdRng, lo: u64, hi: u64) -> u64 {
    (log_uniform(rng, lo as f64, hi as f64).round() as u64).clamp(lo, hi)
}

/// The MiniJava LCG shared by all workloads: deterministic, non-negative
/// 31-bit stream.
pub(crate) const LCG: &str = "
fn lcg(s) {
    return (s * 1103515245 + 12345) & 2147483647;
}
";

/// A synthetic text file body of roughly `bytes` bytes with `header` as
/// its first line — inputs for FILE-typed XICL components.
pub(crate) fn text_file(header: &str, bytes: usize, seed: u64) -> String {
    let mut out = String::with_capacity(bytes + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(17);
    while out.len() < bytes {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let word_len = 3 + (s % 9) as usize;
        for k in 0..word_len {
            let c = b'a' + (((s >> (k * 5)) & 0x0f) % 26) as u8;
            out.push(c as char);
        }
        out.push(if s.is_multiple_of(7) { '\n' } else { ' ' });
    }
    out.push('\n');
    out
}

/// Programmer-defined extractor shared by several workloads: the `index`th
/// whitespace-separated number on the first line of a file (workload input
/// files carry their structural summary in a header line).
#[derive(Debug)]
pub(crate) struct HeaderNum {
    /// Which token of the header line to parse.
    pub index: usize,
}

impl evovm_xicl::extract::FeatureExtractor for HeaderNum {
    fn extract(
        &self,
        raw: &str,
        ctx: &evovm_xicl::extract::ExtractCtx<'_>,
    ) -> Result<evovm_xicl::FeatureValue, evovm_xicl::XiclError> {
        let contents = ctx
            .vfs
            .read(raw)
            .ok_or_else(|| evovm_xicl::XiclError::FileNotFound(raw.to_owned()))?;
        let v = contents
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(self.index))
            .and_then(|w| w.parse::<f64>().ok())
            .unwrap_or(0.0);
        Ok(evovm_xicl::FeatureValue::Num(v))
    }

    fn cost(&self, raw: &str, _ctx: &evovm_xicl::extract::ExtractCtx<'_>) -> u64 {
        // Header-only read: cheap regardless of file size.
        raw.len() as u64 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn log_uniform_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let v = log_uniform_int(&mut rng, 10, 1000);
            assert!((10..=1000).contains(&v));
        }
    }

    #[test]
    fn log_uniform_covers_low_decades() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<u64> = (0..200)
            .map(|_| log_uniform_int(&mut rng, 10, 10_000))
            .collect();
        assert!(samples.iter().any(|&v| v < 100));
        assert!(samples.iter().any(|&v| v > 1_000));
    }

    #[test]
    fn text_files_have_headers_and_size() {
        let f = text_file("42 rules", 500, 7);
        assert!(f.starts_with("42 rules\n"));
        assert!(f.len() >= 500);
        assert_eq!(f, text_file("42 rules", 500, 7), "deterministic");
        assert_ne!(f, text_file("42 rules", 500, 8), "seed-sensitive");
    }
}
