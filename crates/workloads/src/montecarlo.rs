//! `montecarlo` — the Java Grande Monte Carlo pricing analog.
//!
//! Simulates `-p` random-walk paths of `-s` steps each and aggregates
//! their statistics. The path kernel mixes integer PRNG work with float
//! accumulation.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# montecarlo: path count and steps per path
option {name=-p; type=num; attr=VAL; default=500; has_arg=y}
option {name=-s; type=num; attr=VAL; default=32; has_arg=y}
";

fn registry() -> Registry {
    Registry::with_predefined()
}

fn source(paths: u64, steps: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn sim_path(seed, steps) {{
    let s = seed;
    let value = 100.0;
    for (let t = 0; t < steps; t = t + 1) {{
        s = lcg(s);
        let shock = float(s % 2001 - 1000) / 10000.0;
        value = value * (1.0 + shock);
    }}
    return value;
}}

fn stats_update(sum, sq, v) {{
    // packs (sum, sumsq) into an array for multi-value return
    let out = new [2];
    out[0] = sum + v;
    out[1] = sq + v * v;
    return out;
}}

fn main() {{
    let paths = {paths};
    let steps = {steps};
    let sum = 0.0;
    let sq = 0.0;
    let s = {seed};
    for (let p = 0; p < paths; p = p + 1) {{
        s = lcg(s + p);
        let v = sim_path(s, steps);
        let acc = stats_update(sum, sq, v);
        sum = acc[0];
        sq = acc[1];
    }}
    let mean = sum / float(paths);
    let var = sq / float(paths) - mean * mean;
    print int(mean * 100.0);
    print int(var);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(30);
    for _ in 0..30u64 {
        let paths = log_uniform_int(rng, 100, 12_000);
        let steps = log_uniform_int(rng, 8, 96);
        let seed = rng.gen_range(1..1_000_000u64);
        inputs.push(GeneratedInput {
            args: vec![
                "-p".into(),
                paths.to_string(),
                "-s".into(),
                steps.to_string(),
            ],
            vfs: evovm_xicl::Vfs::new(),
            source: source(paths, steps, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "montecarlo",
        suite: Suite::Grande,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        match vm.run().unwrap() {
            evovm_vm::Outcome::Finished(r) => (r.output, r.total_cycles),
            evovm_vm::Outcome::FeaturesReady => panic!("montecarlo does not publish"),
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(50, 8, 3));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn cost_scales_with_paths_times_steps() {
        let (_, small) = run(&source(50, 8, 3));
        let (_, large) = run(&source(500, 16, 3));
        assert!(large > 10 * small);
    }

    #[test]
    fn different_seeds_change_the_estimate() {
        let (a, _) = run(&source(100, 16, 3));
        let (b, _) = run(&source(100, 16, 4));
        assert_ne!(a, b);
    }
}
