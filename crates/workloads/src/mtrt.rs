//! `mtrt` — the SPECjvm98 multi-threaded ray tracer analog.
//!
//! Renders a `W×H` image of a procedurally generated sphere scene with
//! reflection depth `D`. The per-pixel cost scales with the sphere count,
//! so running time — and therefore the ideal optimization levels of
//! `intersect`/`trace` — is a strong function of the input. The program
//! publishes the scene size through the runtime feature channel and calls
//! `done` (paper §III-B.3's `updateV`/`done` path), so campaigns exercise
//! the pause-predict-resume protocol.

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, HeaderNum, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# mtrt: W/H resolution options, reflection depth, scene file
option {name=-w; type=num; attr=VAL; default=16; has_arg=y}
option {name=-h; type=num; attr=VAL; default=16; has_arg=y}
option {name=-d; type=num; attr=VAL; default=2; has_arg=y}
operand {position=1; type=file; attr=mSpheres}
";

fn registry() -> Registry {
    let mut r = Registry::with_predefined();
    r.register("mSpheres", HeaderNum { index: 0 });
    r
}

fn source(w: u64, h: u64, depth: u64, ns: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn make_axis(ns, seed, scale) {{
    let a = new [ns];
    let s = seed;
    for (let i = 0; i < ns; i = i + 1) {{
        s = lcg(s);
        a[i] = float(s % 1000) / 1000.0 * scale - scale / 2.0;
    }}
    return a;
}}

fn intersect(px, py, pz, dx, dy, dz, sx, sy, sz, sr, ns) {{
    let best = 0 - 1;
    let bestd = 1000000000.0;
    for (let i = 0; i < ns; i = i + 1) {{
        let ox = sx[i] - px;
        let oy = sy[i] - py;
        let oz = sz[i] - pz;
        let b = ox * dx + oy * dy + oz * dz;
        let c = ox * ox + oy * oy + oz * oz - sr[i] * sr[i];
        let disc = b * b - c;
        if (disc > 0.0) {{
            let t = b - sqrt(disc);
            if (t > 0.001 && t < bestd) {{
                bestd = t;
                best = i;
            }}
        }}
    }}
    return best;
}}

fn shade(hit, depth, px, py, pz, dx, dy, dz, sx, sy, sz, sr, ns) {{
    let base = 200 - hit * 3;
    if (depth <= 1) {{
        return base;
    }}
    // bounce: perturb the ray off the hit sphere
    let rdx = dy + sx[hit] * 0.01;
    let rdy = dz - sy[hit] * 0.01;
    let rdz = dx + sz[hit] * 0.01;
    let bounce = trace(px + dx, py + dy, pz + dz, rdx, rdy, rdz, depth - 1, sx, sy, sz, sr, ns);
    return base + bounce / 2;
}}

fn trace(px, py, pz, dx, dy, dz, depth, sx, sy, sz, sr, ns) {{
    let hit = intersect(px, py, pz, dx, dy, dz, sx, sy, sz, sr, ns);
    if (hit < 0) {{
        return 16;
    }}
    return shade(hit, depth, px, py, pz, dx, dy, dz, sx, sy, sz, sr, ns);
}}

fn render(w, h, depth, sx, sy, sz, sr, ns) {{
    let acc = 0;
    for (let y = 0; y < h; y = y + 1) {{
        for (let x = 0; x < w; x = x + 1) {{
            let dx = float(x) / float(w) - 0.5;
            let dy = float(y) / float(h) - 0.5;
            let dz = 1.0;
            acc = acc + trace(0.0, 0.0, 0.0 - 4.0, dx, dy, dz, depth, sx, sy, sz, sr, ns);
        }}
    }}
    return acc;
}}

fn main() {{
    let w = {w};
    let h = {h};
    let depth = {depth};
    let ns = {ns};
    publish \"spheres\", ns;
    done;
    let sx = make_axis(ns, {seed}, 8.0);
    let sy = make_axis(ns, {seed} + 1, 8.0);
    let sz = make_axis(ns, {seed} + 2, 6.0);
    let sr = new [ns];
    let s = {seed} + 3;
    for (let i = 0; i < ns; i = i + 1) {{
        s = lcg(s);
        sr[i] = 0.3 + float(s % 100) / 100.0;
    }}
    for (let i = 0; i < ns; i = i + 1) {{
        sz[i] = sz[i] + 6.0;
    }}
    print render(w, h, depth, sx, sy, sz, sr, ns);
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    let mut inputs = Vec::with_capacity(100);
    for i in 0..100u64 {
        let w = log_uniform_int(rng, 8, 40);
        let h = log_uniform_int(rng, 8, 40);
        let depth = rng.gen_range(1..=3u64);
        let ns = log_uniform_int(rng, 4, 48);
        let seed = rng.gen_range(1..1_000_000u64);
        let scene_name = format!("scene_{i}.txt");
        let mut scene = format!("{ns} spheres\n");
        let mut s = seed;
        for _ in 0..ns {
            s = s.wrapping_mul(1103515245).wrapping_add(12345) & 0x7fff_ffff;
            scene.push_str(&format!(
                "{} {} {} {}\n",
                s % 17,
                (s >> 3) % 17,
                (s >> 6) % 13,
                1 + s % 3
            ));
        }
        let mut vfs = evovm_xicl::Vfs::new();
        vfs.write(scene_name.clone(), scene);
        inputs.push(GeneratedInput {
            args: vec![
                "-w".into(),
                w.to_string(),
                "-h".into(),
                h.to_string(),
                "-d".into(),
                depth.to_string(),
                scene_name,
            ],
            vfs,
            source: source(w, h, depth, ns, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "mtrt",
        suite: Suite::Jvm98,
        campaign_runs: 70,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn template_compiles_and_runs() {
        let src = source(4, 4, 2, 3, 7);
        let program = Arc::new(evovm_minijava::compile(&src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        // First outcome is the pause at `done`.
        let evovm_vm::Outcome::FeaturesReady = vm.run().unwrap() else {
            panic!("expected a pause at done")
        };
        assert_eq!(vm.published()[0].0, "spheres");
        let evovm_vm::Outcome::Finished(result) = vm.run().unwrap() else {
            panic!("expected completion")
        };
        assert_eq!(result.output.len(), 1);
    }

    #[test]
    fn features_extract_from_generated_inputs() {
        let mut rng = StdRng::seed_from_u64(3);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 100);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert!(fv.get("operand0.mSpheres").unwrap().as_num().unwrap() >= 4.0);
        assert!(fv.get("-w.VAL").unwrap().as_num().unwrap() >= 8.0);
    }

    #[test]
    fn output_is_input_sensitive() {
        let run = |src: &str| {
            let program = Arc::new(evovm_minijava::compile(src).unwrap());
            let mut vm = evovm_vm::Vm::new(
                program,
                Box::new(evovm_vm::BaselineOnlyPolicy),
                evovm_vm::VmConfig::default(),
            )
            .unwrap();
            loop {
                match vm.run().unwrap() {
                    evovm_vm::Outcome::Finished(r) => return (r.output, r.total_cycles),
                    evovm_vm::Outcome::FeaturesReady => continue,
                }
            }
        };
        let (small_out, small_cycles) = run(&source(4, 4, 1, 3, 7));
        let (large_out, large_cycles) = run(&source(12, 12, 3, 24, 7));
        assert_ne!(small_out, large_out);
        assert!(large_cycles > 4 * small_cycles);
    }
}
