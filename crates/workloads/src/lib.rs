//! The benchmark workloads of the reproduction: eleven input-sensitive
//! MiniJava programs mirroring the paper's Table I benchmark mix
//! (SPECjvm98, DaCapo and Java Grande analogs).
//!
//! Each workload bundles
//!
//! - a MiniJava **program template** whose input parameters are baked into
//!   the bytecode per input (the toy VM has no argv, see `DESIGN.md`),
//! - an **XICL spec** (with programmer-defined extractors where the paper
//!   used them: db/query sizes for Db, rule counts for Antlr, LoC for
//!   Bloat, scene sizes for Mtrt),
//! - an **input generator** producing the paper's per-benchmark input-set
//!   sizes with wide running-time spreads.
//!
//! | name | suite | inputs | key features | hot-method story |
//! |---|---|---|---|---|
//! | `mtrt` | jvm98 | 100 | `-w/-h/-d`, `mSpheres`, runtime publish | per-pixel trace/intersect over a scene |
//! | `compress` | jvm98 | 100 | `-l`, file `SIZE`/`LINES` | per-element hash/back-reference scan |
//! | `db` | jvm98 | 90 | `-u`, `mDbSize`, `mQueries` | shellsort inserts + binary-search queries |
//! | `antlr` | dacapo | 40 | `-o`/`-lang` (categorical), `mRules`, publish | quadratic closures + language-selected emitter |
//! | `bloat` | dacapo | 40 | `-op` (categorical), `mLoc` | pass selection flips the hot method |
//! | `fop` | dacapo | 30 | `-fmt` (categorical), `LINES` | renderer choice flips the hot method |
//! | `euler` | grande | 30 | `-n`, `-t` | per-step flux kernel, float-heavy |
//! | `moldyn` | grande | 30 | `-n`, `-s` | O(n²) pairwise forces per step |
//! | `montecarlo` | grande | 30 | `-p`, `-s` | per-path simulation kernel |
//! | `search` | grande | 7 | position string `LEN` | recursive alpha-beta, depth from input |
//! | `raytracer` | grande | 70 | `-n` | n² pixels over a fixed scene |
//!
//! # Example
//!
//! ```
//! let bench = evovm_workloads::by_name("search").expect("bundled workload");
//! assert!(!bench.inputs.is_empty());
//! assert!(bench.check_consistent());
//! ```

mod antlr;
mod bloat;
mod common;
mod compress;
mod db;
mod euler;
mod fop;
mod moldyn;
mod montecarlo;
mod mtrt;
mod raytracer;
mod search;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

use evovm::{AppInput, Bench};
use evovm_xicl::extract::Registry;
use evovm_xicl::{spec, Translator, Vfs};

/// Which suite the original benchmark came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPECjvm98.
    Jvm98,
    /// DaCapo.
    Dacapo,
    /// Java Grande.
    Grande,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Jvm98 => write!(f, "jvm98"),
            Suite::Dacapo => write!(f, "dacapo"),
            Suite::Grande => write!(f, "grande"),
        }
    }
}

/// One generated input before compilation.
pub struct GeneratedInput {
    /// Command-line arguments.
    pub args: Vec<String>,
    /// Files the arguments reference.
    pub vfs: Vfs,
    /// The MiniJava source with this input's parameters baked in.
    pub source: String,
}

/// A workload definition (internal registry entry).
pub(crate) struct Def {
    pub name: &'static str,
    pub suite: Suite,
    /// Paper-style campaign length (30, or 70 for input-rich programs).
    pub campaign_runs: usize,
    pub spec: &'static str,
    pub registry: fn() -> Registry,
    pub generate: fn(&mut StdRng) -> Vec<GeneratedInput>,
}

/// Descriptive metadata of a workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadInfo {
    /// Benchmark name.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Campaign length used by the paper-style experiments.
    pub campaign_runs: usize,
}

fn defs() -> Vec<Def> {
    vec![
        mtrt::def(),
        compress::def(),
        db::def(),
        antlr::def(),
        bloat::def(),
        fop::def(),
        euler::def(),
        moldyn::def(),
        montecarlo::def(),
        search::def(),
        raytracer::def(),
    ]
}

/// Names of all bundled workloads, in Table I order.
pub fn names() -> Vec<&'static str> {
    defs().iter().map(|d| d.name).collect()
}

/// Metadata for a bundled workload.
pub fn info(name: &str) -> Option<WorkloadInfo> {
    defs()
        .into_iter()
        .find(|d| d.name == name)
        .map(|d| WorkloadInfo {
            name: d.name,
            suite: d.suite,
            campaign_runs: d.campaign_runs,
        })
}

/// Materialize a workload into a runnable [`Bench`] with a specific input
/// generation seed.
///
/// Returns `None` for an unknown name.
///
/// # Panics
///
/// Panics if a bundled template fails to compile — a workspace bug caught
/// by this crate's tests, never by downstream users.
pub fn materialize(name: &str, seed: u64) -> Option<Bench> {
    let def = defs().into_iter().find(|d| d.name == name)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let generated = (def.generate)(&mut rng);
    let inputs = generated
        .into_iter()
        .map(|g| {
            let program = evovm_minijava::compile(&g.source).unwrap_or_else(|e| {
                panic!("workload `{}` template failed to compile: {e}", def.name)
            });
            AppInput {
                args: g.args,
                vfs: g.vfs,
                program: Arc::new(program),
            }
        })
        .collect();
    let xicl_spec = spec::parse(def.spec)
        .unwrap_or_else(|e| panic!("workload `{}` spec failed to parse: {e}", def.name));
    Some(Bench {
        name: def.name.to_owned(),
        translator: Translator::new(xicl_spec, (def.registry)()),
        inputs,
    })
}

/// Materialize a workload with the default seed (42).
pub fn by_name(name: &str) -> Option<Bench> {
    materialize(name, 42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eleven_workloads_exist() {
        let names = names();
        assert_eq!(names.len(), 11);
        for expected in [
            "mtrt",
            "compress",
            "db",
            "antlr",
            "bloat",
            "fop",
            "euler",
            "moldyn",
            "montecarlo",
            "search",
            "raytracer",
        ] {
            assert!(names.contains(&expected), "missing workload {expected}");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        assert!(by_name("javac").is_none());
        assert!(info("javac").is_none());
    }

    #[test]
    fn seeds_change_inputs_deterministically() {
        let a = materialize("search", 1).unwrap();
        let b = materialize("search", 1).unwrap();
        let c = materialize("search", 2).unwrap();
        assert_eq!(a.inputs.len(), b.inputs.len());
        assert_eq!(a.inputs[0].args, b.inputs[0].args);
        // Different seed should produce at least one differing input.
        let differs = a
            .inputs
            .iter()
            .zip(&c.inputs)
            .any(|(x, y)| x.args != y.args || x.program != y.program);
        assert!(differs, "seed should influence generation");
    }
}
