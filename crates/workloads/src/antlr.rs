//! `antlr` — the DaCapo parser-generator analog.
//!
//! Reads a grammar of `mRules` rules and computes FIRST/FOLLOW-style
//! closures (quadratic in the rule count) before emitting code for the
//! target language. The output format and language options are
//! *categorical* features — the paper's motivation for separating
//! categorical from quantitative features — and the language choice flips
//! which emitter method becomes hot. Publishes the rule count through the
//! runtime channel (`updateV`/`done`).

use rand::rngs::StdRng;
use rand::Rng;

use evovm_xicl::extract::Registry;

use crate::common::{log_uniform_int, text_file, HeaderNum, LCG};
use crate::{Def, GeneratedInput, Suite};

const SPEC: &str = "
# antlr: output format and target language (categorical), grammar file
option {name=-o; type=str; attr=VAL; default=text; has_arg=y}
option {name=-lang; type=str; attr=VAL; default=java; has_arg=y}
operand {position=1; type=file; attr=mRules}
";

fn registry() -> Registry {
    let mut r = Registry::with_predefined();
    r.register("mRules", HeaderNum { index: 0 });
    r
}

/// `lang_id`: 0 = java (emitter heavy), 1 = cpp (twice the emit work).
fn source(rules: u64, lang_id: u64, fmt_id: u64, seed: u64) -> String {
    format!(
        "{LCG}
fn parse_grammar(rules, seed) {{
    let table = new [rules];
    let s = seed;
    for (let i = 0; i < rules; i = i + 1) {{
        s = lcg(s);
        table[i] = s % 64 + 1;
    }}
    return table;
}}

fn first_of(table, rules, i) {{
    let acc = 0;
    for (let j = 0; j < rules; j = j + 1) {{
        acc = (acc + table[j] * (i + 1)) & 65535;
    }}
    return acc;
}}

fn first_sets(table, rules) {{
    let first = new [rules];
    for (let i = 0; i < rules; i = i + 1) {{
        first[i] = first_of(table, rules, i);
    }}
    return first;
}}

fn follow_of(table, rules, f) {{
    let acc = 0;
    for (let j = 0; j < rules; j = j + 1) {{
        acc = (acc + f ^ table[j]) & 1048575;
    }}
    return acc;
}}

fn follow_sets(table, first, rules) {{
    let acc = 0;
    for (let i = 0; i < rules; i = i + 1) {{
        acc = (acc + follow_of(table, rules, first[i])) & 1048575;
    }}
    return acc;
}}

fn emit_rule(len, i, fmt, mult) {{
    let out = 0;
    let work = len * mult;
    for (let k = 0; k < work; k = k + 1) {{
        out = (out * 33 + i + k * fmt) & 1073741823;
    }}
    return out;
}}

fn emit_java(table, rules, fmt) {{
    let out = 0;
    for (let i = 0; i < rules; i = i + 1) {{
        out = (out + emit_rule(table[i], i, fmt, 6)) & 1073741823;
    }}
    return out;
}}

fn emit_cpp(table, rules, fmt) {{
    let out = 0;
    for (let i = 0; i < rules; i = i + 1) {{
        out = (out + emit_rule(table[i], i * 2, fmt, 12)) & 1073741823;
    }}
    return out;
}}

fn main() {{
    let rules = {rules};
    let lang = {lang_id};
    let fmt = {fmt_id} + 1;
    publish \"rules\", rules;
    done;
    let table = parse_grammar(rules, {seed});
    let first = first_sets(table, rules);
    print follow_sets(table, first, rules);
    if (lang == 0) {{
        print emit_java(table, rules, fmt);
    }} else {{
        print emit_cpp(table, rules, fmt);
    }}
}}
"
    )
}

fn generate(rng: &mut StdRng) -> Vec<GeneratedInput> {
    const LANGS: [&str; 2] = ["java", "cpp"];
    const FMTS: [&str; 3] = ["text", "html", "diagnostic"];
    let mut inputs = Vec::with_capacity(40);
    for i in 0..40u64 {
        let rules = log_uniform_int(rng, 24, 420);
        let lang_id = rng.gen_range(0..LANGS.len());
        let fmt_id = rng.gen_range(0..FMTS.len());
        let seed = rng.gen_range(1..1_000_000u64);
        let name = format!("grammar_{i}.g");
        let mut vfs = evovm_xicl::Vfs::new();
        vfs.write(
            name.clone(),
            text_file(&format!("{rules} rules"), 64 + rules as usize * 12, seed),
        );
        inputs.push(GeneratedInput {
            args: vec![
                "-o".into(),
                FMTS[fmt_id].into(),
                "-lang".into(),
                LANGS[lang_id].into(),
                name,
            ],
            vfs,
            source: source(rules, lang_id as u64, fmt_id as u64, seed),
        });
    }
    inputs
}

pub(crate) fn def() -> Def {
    Def {
        name: "antlr",
        suite: Suite::Dacapo,
        campaign_runs: 30,
        spec: SPEC,
        registry,
        generate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn run(src: &str) -> (Vec<String>, u64) {
        let program = Arc::new(evovm_minijava::compile(src).unwrap());
        let mut vm = evovm_vm::Vm::new(
            program,
            Box::new(evovm_vm::BaselineOnlyPolicy),
            evovm_vm::VmConfig::default(),
        )
        .unwrap();
        loop {
            match vm.run().unwrap() {
                evovm_vm::Outcome::Finished(r) => return (r.output, r.total_cycles),
                evovm_vm::Outcome::FeaturesReady => continue,
            }
        }
    }

    #[test]
    fn template_compiles_and_runs() {
        let (out, _) = run(&source(20, 0, 1, 3));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn language_flips_the_hot_emitter() {
        // cpp emit is roughly twice the java emit work for equal rules.
        let (_, java) = run(&source(60, 0, 0, 3));
        let (_, cpp) = run(&source(60, 1, 0, 3));
        assert!(cpp > java);
    }

    #[test]
    fn categorical_features_extract() {
        let mut rng = StdRng::seed_from_u64(4);
        let inputs = generate(&mut rng);
        assert_eq!(inputs.len(), 40);
        let spec = evovm_xicl::spec::parse(SPEC).unwrap();
        let t = evovm_xicl::Translator::new(spec, registry());
        let (fv, _) = t.translate(&inputs[0].args, &inputs[0].vfs).unwrap();
        assert!(fv.get("-lang.VAL").unwrap().as_cat().is_some());
        assert!(fv.get("-o.VAL").unwrap().as_cat().is_some());
        assert!(fv.get("operand0.mRules").unwrap().as_num().unwrap() >= 24.0);
    }
}
