//! Control-flow graphs, dominators and natural loops.
//!
//! The optimizer builds a [`Cfg`] per function to drive unreachable-code
//! elimination, jump threading and loop-aware passes. Blocks are maximal
//! straight-line instruction ranges; edges follow branches and fall-through.

use std::collections::BTreeSet;

use crate::instr::Instr;
use crate::program::Function;

/// Index of a basic block within a [`Cfg`].
pub type BlockId = usize;

/// One basic block: the instruction range `[start, end)` plus its edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: u32,
    /// One past the last instruction index.
    pub end: u32,
    /// Successor blocks in control-flow order (branch target first for
    /// conditional branches, then fall-through).
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

impl Block {
    /// Instruction indices covered by the block.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start as usize..self.end as usize
    }
}

/// A natural loop discovered from a back edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header block.
    pub header: BlockId,
    /// All blocks in the loop body (including the header).
    pub body: BTreeSet<BlockId>,
}

/// Control-flow graph over a function's bytecode.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// For every instruction index, the block containing it.
    block_of_instr: Vec<BlockId>,
}

impl Cfg {
    /// Build the CFG of `f`. Block 0 is the entry block.
    pub fn build(f: &Function) -> Cfg {
        assert!(!f.code.is_empty(), "cannot build a CFG for empty code");
        let len = f.code.len();
        // Find leaders: 0, branch targets, instruction after a branch.
        let mut is_leader = vec![false; len];
        is_leader[0] = true;
        for (pc, instr) in f.code.iter().enumerate() {
            if let Some(t) = instr.branch_target() {
                is_leader[t as usize] = true;
            }
            if (instr.is_branch() || matches!(instr, Instr::Return)) && pc + 1 < len {
                is_leader[pc + 1] = true;
            }
        }
        // Carve blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of_instr = vec![0usize; len];
        let mut start = 0usize;
        for pc in 0..len {
            block_of_instr[pc] = blocks.len();
            let last = pc + 1 == len || is_leader[pc + 1];
            if last {
                blocks.push(Block {
                    start: start as u32,
                    end: (pc + 1) as u32,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
                start = pc + 1;
            }
        }
        // Wire edges.
        let n = blocks.len();
        for b in 0..n {
            let last_pc = blocks[b].end as usize - 1;
            let instr = f.code[last_pc];
            let mut succs = Vec::new();
            if let Some(t) = instr.branch_target() {
                succs.push(block_of_instr[t as usize]);
            }
            if !instr.is_terminator() && last_pc + 1 < len {
                succs.push(block_of_instr[last_pc + 1]);
            }
            blocks[b].succs = succs.clone();
            for s in succs {
                blocks[s].preds.push(b);
            }
        }
        Cfg {
            blocks,
            block_of_instr,
        }
    }

    /// The basic blocks, entry first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block containing instruction `pc`.
    pub fn block_of(&self, pc: u32) -> BlockId {
        self.block_of_instr[pc as usize]
    }

    /// Blocks reachable from the entry, as a boolean mask.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut work = vec![0usize];
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            work.extend(self.blocks[b].succs.iter().copied());
        }
        seen
    }

    /// Immediate-style dominator sets: `dom[b]` contains every block that
    /// dominates `b` (including `b` itself). Unreachable blocks dominate
    /// nothing and are dominated by everything (the conventional lattice
    /// top); callers should mask with [`Cfg::reachable`].
    pub fn dominators(&self) -> Vec<BTreeSet<BlockId>> {
        let n = self.blocks.len();
        let all: BTreeSet<BlockId> = (0..n).collect();
        let mut dom: Vec<BTreeSet<BlockId>> = vec![all; n];
        dom[0] = BTreeSet::from([0]);
        let reachable = self.reachable();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..n {
                if !reachable[b] {
                    continue;
                }
                let mut new: Option<BTreeSet<BlockId>> = None;
                for &p in &self.blocks[b].preds {
                    if !reachable[p] {
                        continue;
                    }
                    new = Some(match new {
                        None => dom[p].clone(),
                        Some(acc) => acc.intersection(&dom[p]).copied().collect(),
                    });
                }
                let mut new = new.unwrap_or_default();
                new.insert(b);
                if new != dom[b] {
                    dom[b] = new;
                    changed = true;
                }
            }
        }
        dom
    }

    /// Natural loops: for every back edge `tail -> header` (where `header`
    /// dominates `tail`), the set of blocks that can reach `tail` without
    /// passing through `header`.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let dom = self.dominators();
        let reachable = self.reachable();
        let mut loops = Vec::new();
        for (tail, block) in self.blocks.iter().enumerate() {
            if !reachable[tail] {
                continue;
            }
            for &header in &block.succs {
                if !dom[tail].contains(&header) {
                    continue;
                }
                // Back edge tail -> header: flood backwards from tail.
                let mut body = BTreeSet::from([header, tail]);
                let mut work = vec![tail];
                while let Some(b) = work.pop() {
                    if b == header {
                        continue;
                    }
                    for &p in &self.blocks[b].preds {
                        if body.insert(p) {
                            work.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop { header, body });
            }
        }
        loops
    }

    /// Per-block loop-nesting depth: how many natural loops contain each
    /// block. Straight-line blocks are depth 0; a block inside two nested
    /// loops is depth 2. Back edges to the same header each contribute a
    /// distinct natural loop, so depths from irreducible-looking multi-
    /// latch loops over-count rather than under-count — the conservative
    /// direction for the static cost weighting in [`crate::analysis`].
    pub fn loop_depths(&self) -> Vec<usize> {
        let mut depths = vec![0usize; self.blocks.len()];
        for l in self.natural_loops() {
            for &b in &l.body {
                depths[b] += 1;
            }
        }
        depths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;

    fn cfg_of(src: &str) -> Cfg {
        let p = parse(src).unwrap();
        Cfg::build(p.function(p.entry()))
    }

    const LOOP: &str = "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 5
  icmpge
  jumpif end
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}";

    #[test]
    fn blocks_and_edges_of_a_loop() {
        let cfg = cfg_of(LOOP);
        // entry, header(top..jumpif), body(..jump top), exit(end..)
        assert_eq!(cfg.blocks().len(), 4);
        let entry = &cfg.blocks()[0];
        assert_eq!(entry.succs, vec![1]);
        let header = &cfg.blocks()[1];
        assert_eq!(header.succs, vec![3, 2]); // branch target first
        let body = &cfg.blocks()[2];
        assert_eq!(body.succs, vec![1]);
        let exit = &cfg.blocks()[3];
        assert!(exit.succs.is_empty());
    }

    #[test]
    fn finds_the_natural_loop() {
        let cfg = cfg_of(LOOP);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].body, BTreeSet::from([1, 2]));
    }

    #[test]
    fn loop_depths_count_nesting() {
        let cfg = cfg_of(
            "entry func main/0 locals=2 {
  const 0
  store 0
outer:
  load 0
  const 3
  icmpge
  jumpif end
  const 0
  store 1
inner:
  load 1
  const 3
  icmpge
  jumpif step
  load 1
  const 1
  iadd
  store 1
  jump inner
step:
  load 0
  const 1
  iadd
  store 0
  jump outer
end:
  null
  return
}",
        );
        let depths = cfg.loop_depths();
        assert_eq!(depths.iter().max(), Some(&2), "{depths:?}");
        assert_eq!(depths[0], 0, "entry block is outside all loops");
    }

    #[test]
    fn dominators_of_a_diamond() {
        let cfg = cfg_of(
            "entry func main/0 locals=1 {
  const 1
  jumpif right
  const 10
  store 0
  jump join
right:
  const 20
  store 0
join:
  null
  return
}",
        );
        assert_eq!(cfg.blocks().len(), 4);
        let dom = cfg.dominators();
        // The join block (3) is dominated only by the entry and itself.
        assert_eq!(dom[3], BTreeSet::from([0, 3]));
    }

    #[test]
    fn unreachable_block_detected() {
        let cfg = cfg_of(
            "entry func main/0 {
  null
  return
  const 1
  pop
  null
  return
}",
        );
        let reach = cfg.reachable();
        assert!(reach[0]);
        assert!(reach.iter().any(|r| !r), "dead block should be unreachable");
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let cfg = cfg_of("entry func main/0 {\n  const 1\n  const 2\n  iadd\n  return\n}");
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert_eq!(cfg.block_of(2), 0);
    }
}
