//! Label-based construction of programs and functions.
//!
//! [`ProgramBuilder`] supports forward references (declare all function ids
//! first, then define bodies in any order), which mutual recursion needs.
//! [`FunctionBuilder`] provides fresh labels, deferred binding and automatic
//! branch fix-ups.

use std::collections::HashMap;

use crate::instr::Instr;
use crate::program::{FuncId, Function, Program, StrId};
use crate::BytecodeError;

/// A forward-referenceable position in a function under construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Builds one function; created by [`ProgramBuilder::function`].
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    parent: &'p mut ProgramBuilder,
    id: FuncId,
    arity: u16,
    next_local: u16,
    code: Vec<Instr>,
    labels: Vec<Option<u32>>,
    fixups: Vec<(usize, Label)>,
}

impl<'p> FunctionBuilder<'p> {
    /// Append an instruction; returns its index.
    pub fn emit(&mut self, instr: Instr) -> u32 {
        let at = self.code.len() as u32;
        self.code.push(instr);
        at
    }

    /// Allocate a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.labels.len() as u32);
        self.labels.push(None);
        l
    }

    /// Bind `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
    }

    /// Emit an unconditional jump to `label` (bound now or later).
    pub fn jump(&mut self, label: Label) {
        let at = self.code.len();
        self.code.push(Instr::Jump(u32::MAX));
        self.fixups.push((at, label));
    }

    /// Emit a jump-if-truthy to `label`.
    pub fn jump_if(&mut self, label: Label) {
        let at = self.code.len();
        self.code.push(Instr::JumpIf(u32::MAX));
        self.fixups.push((at, label));
    }

    /// Emit a jump-if-falsy to `label`.
    pub fn jump_if_not(&mut self, label: Label) {
        let at = self.code.len();
        self.code.push(Instr::JumpIfNot(u32::MAX));
        self.fixups.push((at, label));
    }

    /// Allocate a fresh local slot beyond the arguments.
    pub fn new_local(&mut self) -> u16 {
        let l = self.next_local;
        self.next_local += 1;
        l
    }

    /// Intern a string in the parent program and return its id.
    pub fn intern(&mut self, s: &str) -> StrId {
        self.parent.intern(s)
    }

    /// Current instruction count.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if no instructions have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Resolve labels and install the body into the program.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::UnboundLabel`] if any referenced label was
    /// never bound, and [`BytecodeError::Redefined`] if this function id was
    /// already defined.
    pub fn finish(self) -> Result<FuncId, BytecodeError> {
        let FunctionBuilder {
            parent,
            id,
            arity,
            next_local,
            mut code,
            labels,
            fixups,
        } = self;
        for (at, label) in fixups {
            let target = labels[label.0 as usize].ok_or(BytecodeError::UnboundLabel(label.0))?;
            code[at] = code[at].with_branch_target(target);
        }
        parent.define(
            id,
            Function {
                name: parent.name_of(id),
                arity,
                locals: next_local,
                code,
            },
        )
    }
}

/// Builds a [`Program`]: declare ids, define bodies, intern strings, build.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    names: Vec<String>,
    arities: Vec<u16>,
    bodies: Vec<Option<Function>>,
    strings: Vec<String>,
    string_ids: HashMap<String, StrId>,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Declare a function id without defining its body yet.
    pub fn declare(&mut self, name: &str, arity: u16) -> FuncId {
        let id = FuncId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.arities.push(arity);
        self.bodies.push(None);
        id
    }

    /// Declared arity of `id`.
    pub fn arity(&self, id: FuncId) -> u16 {
        self.arities[id.index()]
    }

    /// Declared name of `id`.
    pub fn name_of(&self, id: FuncId) -> String {
        self.names[id.index()].clone()
    }

    /// Find a declared function by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| FuncId(i as u32))
    }

    /// Start building the body of a declared function. `extra_locals` is
    /// the number of non-argument local slots initially allocated; more can
    /// be added with [`FunctionBuilder::new_local`].
    pub fn function(&mut self, id: FuncId, extra_locals: u16) -> FunctionBuilder<'_> {
        let arity = self.arities[id.index()];
        FunctionBuilder {
            parent: self,
            id,
            arity,
            next_local: arity + extra_locals,
            code: Vec::new(),
            labels: Vec::new(),
            fixups: Vec::new(),
        }
    }

    /// Install a fully-formed body for a declared function.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::Redefined`] if the id already has a body.
    pub fn define(&mut self, id: FuncId, function: Function) -> Result<FuncId, BytecodeError> {
        let slot = &mut self.bodies[id.index()];
        if slot.is_some() {
            return Err(BytecodeError::Redefined(self.names[id.index()].clone()));
        }
        *slot = Some(function);
        Ok(id)
    }

    /// Intern a string, deduplicating.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(&id) = self.string_ids.get(s) {
            return id;
        }
        let id = StrId(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.string_ids.insert(s.to_owned(), id);
        id
    }

    /// Finish the program with `entry` as the start function.
    ///
    /// # Errors
    ///
    /// Returns [`BytecodeError::UndefinedFunction`] if any declared function
    /// lacks a body, and [`BytecodeError::BadEntry`] if the entry has
    /// nonzero arity.
    pub fn build(self, entry: FuncId) -> Result<Program, BytecodeError> {
        if self.arities.get(entry.index()).copied() != Some(0) {
            let name = self
                .names
                .get(entry.index())
                .cloned()
                .unwrap_or_else(|| format!("{entry}"));
            return Err(BytecodeError::BadEntry(name));
        }
        let mut functions = Vec::with_capacity(self.bodies.len());
        for (i, body) in self.bodies.into_iter().enumerate() {
            match body {
                Some(f) => functions.push(f),
                None => return Err(BytecodeError::UndefinedFunction(self.names[i].clone())),
            }
        }
        Ok(Program::from_parts(functions, self.strings, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_fixups_resolve() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let mut f = pb.function(main, 1);
        let l_end = f.new_label();
        f.emit(Instr::Const(0));
        f.emit(Instr::Store(0));
        let l_top = f.new_label();
        f.bind(l_top);
        f.emit(Instr::Load(0));
        f.emit(Instr::Const(3));
        f.emit(Instr::ICmpGe);
        f.jump_if(l_end);
        f.emit(Instr::Load(0));
        f.emit(Instr::Const(1));
        f.emit(Instr::IAdd);
        f.emit(Instr::Store(0));
        f.jump(l_top);
        f.bind(l_end);
        f.emit(Instr::Null);
        f.emit(Instr::Return);
        f.finish().unwrap();
        let p = pb.build(main).unwrap();
        let code = &p.function(main).code;
        assert_eq!(code[5], Instr::JumpIf(11));
        assert_eq!(code[10], Instr::Jump(2));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let mut f = pb.function(main, 0);
        let l = f.new_label();
        f.jump(l);
        assert!(matches!(f.finish(), Err(BytecodeError::UnboundLabel(_))));
    }

    #[test]
    fn redefinition_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let body = Function {
            name: "main".into(),
            arity: 0,
            locals: 0,
            code: vec![Instr::Null, Instr::Return],
        };
        pb.define(main, body.clone()).unwrap();
        assert!(matches!(
            pb.define(main, body),
            Err(BytecodeError::Redefined(_))
        ));
    }

    #[test]
    fn missing_body_is_an_error() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let _helper = pb.declare("helper", 1);
        let mut f = pb.function(main, 0);
        f.emit(Instr::Null);
        f.emit(Instr::Return);
        f.finish().unwrap();
        assert!(matches!(
            pb.build(main),
            Err(BytecodeError::UndefinedFunction(_))
        ));
    }

    #[test]
    fn entry_must_have_zero_arity() {
        let mut pb = ProgramBuilder::new();
        let f1 = pb.declare("f", 2);
        let mut f = pb.function(f1, 0);
        f.emit(Instr::Null);
        f.emit(Instr::Return);
        f.finish().unwrap();
        assert!(matches!(pb.build(f1), Err(BytecodeError::BadEntry(_))));
    }

    #[test]
    fn intern_deduplicates() {
        let mut pb = ProgramBuilder::new();
        let a = pb.intern("x");
        let b = pb.intern("x");
        let c = pb.intern("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
