//! Scalar arithmetic semantics of the ISA.
//!
//! The interpreter (in `evovm-vm`) and the constant folder (in `evovm-opt`)
//! both evaluate arithmetic through this module, so compiled code provably
//! computes the same values as interpreted code.
//!
//! Semantics summary:
//!
//! - integer arithmetic wraps (two's complement, like the JVM);
//! - mixed int/float operands promote to float;
//! - integer division/remainder by zero is a trap ([`ArithError::DivByZero`]);
//!   float division by zero follows IEEE-754;
//! - bitwise ops require two integers; shift counts are masked to 6 bits;
//! - `to_int` uses Rust's saturating float→int cast (NaN becomes 0);
//! - comparisons yield `Int(1)` or `Int(0)`.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::instr::MathFn;

/// A scalar value: the arithmetic subset of the VM's value domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
}

impl Scalar {
    /// The value as a float (ints convert exactly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::Int(v) => v as f64,
            Scalar::Float(v) => v,
        }
    }

    /// Truthiness: nonzero is true.
    pub fn truthy(self) -> bool {
        match self {
            Scalar::Int(v) => v != 0,
            Scalar::Float(v) => v != 0.0,
        }
    }

    /// True if this is an [`Scalar::Int`].
    pub fn is_int(self) -> bool {
        matches!(self, Scalar::Int(_))
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Int(v) => write!(f, "{v}"),
            Scalar::Float(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Scalar {
        Scalar::Int(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Scalar {
        Scalar::Float(v)
    }
}

/// Arithmetic trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithError {
    /// Integer division or remainder by zero.
    DivByZero,
    /// A bitwise operation saw a float operand.
    TypeError,
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::DivByZero => write!(f, "integer division by zero"),
            ArithError::TypeError => write!(f, "bitwise operation on a float"),
        }
    }
}

impl std::error::Error for ArithError {}

/// The binary arithmetic operators (generic or specialized — the semantics
/// are identical; specialization only changes dispatch cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
}

impl BinOp {
    /// Stable lowercase name, used by the fused-instruction assembly
    /// syntax (`constibin add 3`).
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
        }
    }

    /// Inverse of [`BinOp::name`].
    pub fn from_name(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            _ => return None,
        })
    }
}

/// The comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CmpOp {
    /// Stable lowercase name, used by the fused-instruction assembly
    /// syntax (`consticmp lt 3`).
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Inverse of [`CmpOp::name`].
    pub fn from_name(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }
}

/// The bitwise operators (integers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitOp {
    /// Shift left (count masked to 6 bits).
    Shl,
    /// Arithmetic shift right (count masked to 6 bits).
    Shr,
    /// And.
    And,
    /// Or.
    Or,
    /// Xor.
    Xor,
}

impl BitOp {
    /// Stable lowercase name, used by the fused-instruction assembly
    /// syntax (`constbit and 255`).
    pub fn name(self) -> &'static str {
        match self {
            BitOp::Shl => "shl",
            BitOp::Shr => "shr",
            BitOp::And => "and",
            BitOp::Or => "or",
            BitOp::Xor => "xor",
        }
    }

    /// Inverse of [`BitOp::name`].
    pub fn from_name(s: &str) -> Option<BitOp> {
        Some(match s {
            "shl" => BitOp::Shl,
            "shr" => BitOp::Shr,
            "and" => BitOp::And,
            "or" => BitOp::Or,
            "xor" => BitOp::Xor,
            _ => return None,
        })
    }
}

/// Evaluate a binary arithmetic operator.
///
/// # Errors
///
/// [`ArithError::DivByZero`] for integer `Div`/`Rem` with a zero divisor.
pub fn binop(op: BinOp, a: Scalar, b: Scalar) -> Result<Scalar, ArithError> {
    use Scalar::{Float, Int};
    Ok(match (a, b) {
        (Int(x), Int(y)) => match op {
            BinOp::Add => Int(x.wrapping_add(y)),
            BinOp::Sub => Int(x.wrapping_sub(y)),
            BinOp::Mul => Int(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(ArithError::DivByZero);
                }
                Int(x.wrapping_div(y))
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(ArithError::DivByZero);
                }
                Int(x.wrapping_rem(y))
            }
        },
        _ => {
            let (x, y) = (a.as_f64(), b.as_f64());
            Float(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Rem => x % y,
            })
        }
    })
}

/// Evaluate negation.
pub fn neg(a: Scalar) -> Scalar {
    match a {
        Scalar::Int(v) => Scalar::Int(v.wrapping_neg()),
        Scalar::Float(v) => Scalar::Float(-v),
    }
}

/// Evaluate a comparison, producing `Int(1)` or `Int(0)`.
pub fn cmp(op: CmpOp, a: Scalar, b: Scalar) -> Scalar {
    use Scalar::Int;
    let r = match (a, b) {
        (Int(x), Int(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => {
            let (x, y) = (a.as_f64(), b.as_f64());
            match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }
        }
    };
    Int(r as i64)
}

/// Evaluate a bitwise operator.
///
/// # Errors
///
/// [`ArithError::TypeError`] if either operand is a float.
pub fn bitop(op: BitOp, a: Scalar, b: Scalar) -> Result<Scalar, ArithError> {
    let (Scalar::Int(x), Scalar::Int(y)) = (a, b) else {
        return Err(ArithError::TypeError);
    };
    Ok(Scalar::Int(match op {
        BitOp::Shl => x.wrapping_shl((y & 63) as u32),
        BitOp::Shr => x.wrapping_shr((y & 63) as u32),
        BitOp::And => x & y,
        BitOp::Or => x | y,
        BitOp::Xor => x ^ y,
    }))
}

/// Convert to float (`ToFloat`).
pub fn to_float(a: Scalar) -> Scalar {
    Scalar::Float(a.as_f64())
}

/// Convert to int (`ToInt`): floats truncate with saturation, NaN maps to 0.
pub fn to_int(a: Scalar) -> Scalar {
    match a {
        Scalar::Int(v) => Scalar::Int(v),
        Scalar::Float(v) => Scalar::Int(v as i64),
    }
}

/// Evaluate a unary math intrinsic.
///
/// # Panics
///
/// Panics if called with a binary intrinsic ([`MathFn::arity`] == 2).
pub fn math1(m: MathFn, a: Scalar) -> Scalar {
    match m {
        MathFn::Sqrt => Scalar::Float(a.as_f64().sqrt()),
        MathFn::Sin => Scalar::Float(a.as_f64().sin()),
        MathFn::Cos => Scalar::Float(a.as_f64().cos()),
        MathFn::Exp => Scalar::Float(a.as_f64().exp()),
        MathFn::Log => Scalar::Float(a.as_f64().ln()),
        MathFn::Abs => match a {
            Scalar::Int(v) => Scalar::Int(v.wrapping_abs()),
            Scalar::Float(v) => Scalar::Float(v.abs()),
        },
        MathFn::Floor => Scalar::Int(a.as_f64().floor() as i64),
        MathFn::Pow | MathFn::Min | MathFn::Max => {
            panic!("{m} is a binary intrinsic; use math2")
        }
    }
}

/// Evaluate a binary math intrinsic.
///
/// # Panics
///
/// Panics if called with a unary intrinsic.
pub fn math2(m: MathFn, a: Scalar, b: Scalar) -> Scalar {
    use Scalar::{Float, Int};
    match m {
        MathFn::Pow => Float(a.as_f64().powf(b.as_f64())),
        MathFn::Min => match (a, b) {
            (Int(x), Int(y)) => Int(x.min(y)),
            _ => Float(a.as_f64().min(b.as_f64())),
        },
        MathFn::Max => match (a, b) {
            (Int(x), Int(y)) => Int(x.max(y)),
            _ => Float(a.as_f64().max(b.as_f64())),
        },
        other => panic!("{other} is a unary intrinsic; use math1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Scalar::{Float, Int};

    #[test]
    fn int_arithmetic_wraps() {
        assert_eq!(binop(BinOp::Add, Int(i64::MAX), Int(1)), Ok(Int(i64::MIN)));
        assert_eq!(binop(BinOp::Mul, Int(1 << 62), Int(4)), Ok(Int(0)));
        assert_eq!(neg(Int(i64::MIN)), Int(i64::MIN));
    }

    #[test]
    fn mixed_operands_promote_to_float() {
        assert_eq!(binop(BinOp::Add, Int(1), Float(0.5)), Ok(Float(1.5)));
        assert_eq!(cmp(CmpOp::Lt, Float(0.5), Int(1)), Int(1));
    }

    #[test]
    fn integer_division_by_zero_traps() {
        assert_eq!(
            binop(BinOp::Div, Int(1), Int(0)),
            Err(ArithError::DivByZero)
        );
        assert_eq!(
            binop(BinOp::Rem, Int(1), Int(0)),
            Err(ArithError::DivByZero)
        );
        // Float division by zero is IEEE.
        assert_eq!(
            binop(BinOp::Div, Float(1.0), Float(0.0)),
            Ok(Float(f64::INFINITY))
        );
    }

    #[test]
    fn shifts_mask_their_count() {
        assert_eq!(bitop(BitOp::Shl, Int(1), Int(64)), Ok(Int(1)));
        assert_eq!(bitop(BitOp::Shr, Int(-8), Int(1)), Ok(Int(-4)));
        assert_eq!(
            bitop(BitOp::And, Int(1), Float(1.0)).unwrap_err(),
            ArithError::TypeError
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(to_float(Int(3)), Float(3.0));
        assert_eq!(to_int(Float(3.9)), Int(3));
        assert_eq!(to_int(Float(f64::NAN)), Int(0));
        assert_eq!(to_int(Float(1e300)), Int(i64::MAX));
    }

    #[test]
    fn math_intrinsics() {
        assert_eq!(math1(MathFn::Sqrt, Int(9)), Float(3.0));
        assert_eq!(math1(MathFn::Abs, Int(-5)), Int(5));
        assert_eq!(math1(MathFn::Floor, Float(2.7)), Int(2));
        assert_eq!(math2(MathFn::Min, Int(2), Int(5)), Int(2));
        assert_eq!(math2(MathFn::Max, Float(2.0), Int(5)), Float(5.0));
        assert_eq!(math2(MathFn::Pow, Int(2), Int(10)), Float(1024.0));
    }

    #[test]
    fn truthiness() {
        assert!(Int(-1).truthy());
        assert!(!Int(0).truthy());
        assert!(Float(0.1).truthy());
        assert!(!Float(0.0).truthy());
    }
}
