//! The program model: functions, string pool and entry point.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::instr::Instr;

/// Index of a function within a [`Program`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The index as a `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// Index into a program's interned string pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StrId(pub u32);

impl StrId {
    /// The index as a `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "str#{}", self.0)
    }
}

/// One function: a name, an arity, a number of local slots (including the
/// arguments, which occupy slots `0..arity`) and a code vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Number of arguments.
    pub arity: u16,
    /// Total local slots, `>= arity`.
    pub locals: u16,
    /// The instruction stream.
    pub code: Vec<Instr>,
}

impl Function {
    /// Sum of the base cycle costs of all instructions — a static size
    /// proxy used by the compilation cost model.
    pub fn static_cost(&self) -> u64 {
        self.code.iter().map(Instr::base_cost).sum()
    }
}

/// A complete, executable bytecode program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    functions: Vec<Function>,
    strings: Vec<String>,
    entry: FuncId,
}

impl Program {
    /// Assemble a program from parts. Prefer [`crate::ProgramBuilder`].
    pub fn from_parts(functions: Vec<Function>, strings: Vec<String>, entry: FuncId) -> Program {
        Program {
            functions,
            strings,
            entry,
        }
    }

    /// The entry function (arity 0).
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// All functions, indexable by [`FuncId::index`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Look up a function by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (a verified program never produces
    /// out-of-range ids).
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function (used by the JIT's code installation).
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Find a function id by name.
    pub fn find(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The interned string pool.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Resolve an interned string.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn string(&self, id: StrId) -> &str {
        &self.strings[id.index()]
    }

    /// Total instruction count across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Program {
        Program::from_parts(
            vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 0,
                code: vec![Instr::Null, Instr::Return],
            }],
            vec!["greeting".into()],
            FuncId(0),
        )
    }

    #[test]
    fn lookup_by_name() {
        let p = tiny();
        assert_eq!(p.find("main"), Some(FuncId(0)));
        assert_eq!(p.find("nope"), None);
    }

    #[test]
    fn string_pool() {
        let p = tiny();
        assert_eq!(p.string(StrId(0)), "greeting");
        assert_eq!(p.strings().len(), 1);
    }

    #[test]
    fn static_cost_sums_base_costs() {
        let p = tiny();
        let f = p.function(FuncId(0));
        assert_eq!(f.static_cost(), 1 + 5);
        assert_eq!(p.instruction_count(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let p = tiny();
        let json = serde_json::to_string(&p).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
