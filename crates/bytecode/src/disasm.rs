//! Disassembler: renders programs in the textual assembly format accepted
//! by [`crate::asm::parse`], so `parse(disassemble(p)) == p` up to label
//! naming.

use std::fmt::Write as _;

use crate::instr::Instr;
use crate::program::{FuncId, Function, Program};

/// Render a whole program as assembly text.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for (i, f) in program.functions().iter().enumerate() {
        let id = FuncId(i as u32);
        if id == program.entry() {
            out.push_str("entry ");
        }
        disassemble_function(program, f, &mut out);
        out.push('\n');
    }
    out
}

/// Render a single function.
pub fn disassemble_function(program: &Program, f: &Function, out: &mut String) {
    let _ = writeln!(out, "func {}/{} locals={} {{", f.name, f.arity, f.locals);
    // Collect branch targets so we can emit labels.
    let mut targets: Vec<u32> = f.code.iter().filter_map(Instr::branch_target).collect();
    targets.sort_unstable();
    targets.dedup();
    let label_of = |pc: u32| -> Option<usize> { targets.binary_search(&pc).ok() };
    for (pc, instr) in f.code.iter().enumerate() {
        if let Some(l) = label_of(pc as u32) {
            let _ = writeln!(out, "L{l}:");
        }
        let _ = write!(out, "  ");
        let _ = writeln!(out, "{}", render(program, instr, &label_of));
    }
    // A label may point one past the last instruction only in malformed
    // code; the verifier rejects that, so we do not render it.
    out.push_str("}\n");
}

fn render(program: &Program, instr: &Instr, label_of: &dyn Fn(u32) -> Option<usize>) -> String {
    let lbl = |t: u32| match label_of(t) {
        Some(l) => format!("L{l}"),
        None => format!("@{t}"),
    };
    match instr {
        Instr::Const(v) => format!("const {v}"),
        Instr::FConst(v) => {
            // Keep a decimal point so the assembler can distinguish floats.
            if v.fract() == 0.0 && v.is_finite() {
                format!("fconst {v:.1}")
            } else {
                format!("fconst {v}")
            }
        }
        Instr::Null => "null".into(),
        Instr::Load(n) => format!("load {n}"),
        Instr::Store(n) => format!("store {n}"),
        Instr::Dup => "dup".into(),
        Instr::Pop => "pop".into(),
        Instr::Swap => "swap".into(),
        Instr::Add => "add".into(),
        Instr::Sub => "sub".into(),
        Instr::Mul => "mul".into(),
        Instr::Div => "div".into(),
        Instr::Rem => "rem".into(),
        Instr::Neg => "neg".into(),
        Instr::IAdd => "iadd".into(),
        Instr::ISub => "isub".into(),
        Instr::IMul => "imul".into(),
        Instr::IDiv => "idiv".into(),
        Instr::IRem => "irem".into(),
        Instr::INeg => "ineg".into(),
        Instr::FAdd => "fadd".into(),
        Instr::FSub => "fsub".into(),
        Instr::FMul => "fmul".into(),
        Instr::FDiv => "fdiv".into(),
        Instr::FNeg => "fneg".into(),
        Instr::Shl => "shl".into(),
        Instr::Shr => "shr".into(),
        Instr::BitAnd => "band".into(),
        Instr::BitOr => "bor".into(),
        Instr::BitXor => "bxor".into(),
        Instr::CmpEq => "cmpeq".into(),
        Instr::CmpNe => "cmpne".into(),
        Instr::CmpLt => "cmplt".into(),
        Instr::CmpLe => "cmple".into(),
        Instr::CmpGt => "cmpgt".into(),
        Instr::CmpGe => "cmpge".into(),
        Instr::ICmpEq => "icmpeq".into(),
        Instr::ICmpNe => "icmpne".into(),
        Instr::ICmpLt => "icmplt".into(),
        Instr::ICmpLe => "icmple".into(),
        Instr::ICmpGt => "icmpgt".into(),
        Instr::ICmpGe => "icmpge".into(),
        Instr::FCmpEq => "fcmpeq".into(),
        Instr::FCmpNe => "fcmpne".into(),
        Instr::FCmpLt => "fcmplt".into(),
        Instr::FCmpLe => "fcmple".into(),
        Instr::FCmpGt => "fcmpgt".into(),
        Instr::FCmpGe => "fcmpge".into(),
        Instr::ToFloat => "tofloat".into(),
        Instr::ToInt => "toint".into(),
        Instr::Jump(t) => format!("jump {}", lbl(*t)),
        Instr::JumpIf(t) => format!("jumpif {}", lbl(*t)),
        Instr::JumpIfNot(t) => format!("jumpifnot {}", lbl(*t)),
        Instr::Call(id) => format!("call {}", program.function(*id).name),
        Instr::Return => "return".into(),
        Instr::NewArray => "newarray".into(),
        Instr::ALoad => "aload".into(),
        Instr::AStore => "astore".into(),
        Instr::ALen => "alen".into(),
        Instr::Math(m) => format!("math {m}"),
        Instr::Print => "print".into(),
        Instr::Publish(s) => format!("publish {:?}", program.string(*s)),
        Instr::Done => "done".into(),
        Instr::Nop => "nop".into(),
        Instr::LoadLoad(a, b) => format!("loadload {a} {b}"),
        Instr::LoadConst(n, v) => format!("loadconst {n} {v}"),
        Instr::StoreLoad(n, m) => format!("storeload {n} {m}"),
        Instr::StoreJump(n, t) => format!("storejump {n} {}", lbl(*t)),
        Instr::ConstIBin(op, v) => format!("constibin {} {v}", op.name()),
        Instr::ConstBin(op, v) => format!("constbin {} {v}", op.name()),
        Instr::ConstBit(op, v) => format!("constbit {} {v}", op.name()),
        Instr::ConstICmp(op, v) => format!("consticmp {} {v}", op.name()),
        Instr::ICmpBr(op, t, when) => {
            format!("icmpbr {} {} {}", op.name(), when_name(*when), lbl(*t))
        }
        Instr::CmpBr(op, t, when) => {
            format!("cmpbr {} {} {}", op.name(), when_name(*when), lbl(*t))
        }
        Instr::ConstICmpBr(op, v, t, when) => format!(
            "consticmpbr {} {v} {} {}",
            op.name(),
            when_name(*when),
            lbl(*t)
        ),
        Instr::IBinStore(op, n) => format!("ibinstore {} {n}", op.name()),
        Instr::BinStore(op, n) => format!("binstore {} {n}", op.name()),
        Instr::BitStore(op, n) => format!("bitstore {} {n}", op.name()),
        Instr::LoadIBin(op, n) => format!("loadibin {} {n}", op.name()),
        Instr::LoadBin(op, n) => format!("loadbin {} {n}", op.name()),
        Instr::LoadALoad(n) => format!("loadaload {n}"),
        Instr::LoadLoadBin(op, a, b) => format!("loadloadbin {} {a} {b}", op.name()),
        Instr::LoadConstIBin(op, n, v) => format!("loadconstibin {} {n} {v}", op.name()),
        Instr::LoadLoadCmpBr(op, a, b, t, when) => {
            format!(
                "loadloadcmpbr {} {} {a} {b} {}",
                op.name(),
                when_name(*when),
                lbl(*t)
            )
        }
        Instr::ConstBitStoreLoad(op, v, n, m) => {
            format!("constbitstoreload {} {v} {n} {m}", op.name())
        }
        Instr::ConstIBinStoreJump(op, v, n, t) => {
            format!("constibinstorejump {} {v} {n} {}", op.name(), lbl(*t))
        }
    }
}

/// The branch-sense keyword of the fused compare-and-branch forms:
/// `if` branches when the compare is truthy (a fused `jumpif`), `ifnot`
/// when it is falsy.
fn when_name(when: bool) -> &'static str {
    if when {
        "if"
    } else {
        "ifnot"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn renders_labels_and_calls() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let helper = pb.declare("helper", 1);
        let mut h = pb.function(helper, 0);
        h.emit(Instr::Load(0));
        h.emit(Instr::Return);
        h.finish().unwrap();
        let mut f = pb.function(main, 0);
        let l = f.new_label();
        f.emit(Instr::Const(1));
        f.jump_if(l);
        f.emit(Instr::Const(5));
        f.emit(Instr::Call(helper));
        f.emit(Instr::Pop);
        f.bind(l);
        f.emit(Instr::Null);
        f.emit(Instr::Return);
        f.finish().unwrap();
        let p = pb.build(main).unwrap();
        let text = disassemble(&p);
        assert!(text.contains("entry func main/0"), "{text}");
        assert!(text.contains("jumpif L0"), "{text}");
        assert!(text.contains("call helper"), "{text}");
        assert!(text.contains("L0:"), "{text}");
    }

    #[test]
    fn float_constants_keep_a_decimal_point() {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main", 0);
        let mut f = pb.function(main, 0);
        f.emit(Instr::FConst(2.0));
        f.emit(Instr::Return);
        f.finish().unwrap();
        let p = pb.build(main).unwrap();
        assert!(disassemble(&p).contains("fconst 2.0"));
    }
}
