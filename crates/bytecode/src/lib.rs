//! Stack-machine bytecode for the evolvable virtual machine.
//!
//! This crate defines the instruction set, the program model, and the
//! tooling around them that every other layer of the system builds on:
//!
//! - [`Instr`] — the instruction set: a compact, Java-flavoured stack
//!   machine with *generic* (polymorphic) arithmetic that the optimizing
//!   JIT later *quickens* into typed variants ([`Instr::IAdd`],
//!   [`Instr::FAdd`], ...).
//! - [`Program`] / [`Function`] — the unit of loading and execution; a
//!   program is a set of functions plus an interned string pool and a
//!   designated entry function.
//! - [`ProgramBuilder`] / [`FunctionBuilder`] — ergonomic label-based
//!   construction used by the MiniJava code generator and by tests.
//! - [`asm`] / [`disasm`] — a round-trippable textual assembly format.
//! - [`verify`] — a dataflow bytecode verifier (stack-depth consistency,
//!   target/local/callee bounds) run before any program is executed.
//! - [`cfg`](mod@cfg) — control-flow graphs, dominators and natural-loop detection
//!   used by the optimizer.
//! - [`analysis`] — whole-program static analysis on top of the verifier
//!   and CFG layers: interprocedural call graph, per-function
//!   [`analysis::StaticProfile`]s, lint diagnostics and sound frame
//!   bounds.
//!
//! # Example
//!
//! ```
//! use evovm_bytecode::{Instr, ProgramBuilder};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pb = ProgramBuilder::new();
//! let main = pb.declare("main", 0);
//! let mut f = pb.function(main, 1);
//! f.emit(Instr::Const(21));
//! f.emit(Instr::Const(2));
//! f.emit(Instr::Mul);
//! f.emit(Instr::Print);
//! f.emit(Instr::Null);
//! f.emit(Instr::Return);
//! f.finish()?;
//! let program = pb.build(main)?;
//! evovm_bytecode::verify::verify(&program)?;
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod asm;
pub mod builder;
pub mod cfg;
pub mod disasm;
pub mod instr;
pub mod program;
pub mod scalar;
pub mod verify;

pub use builder::{FunctionBuilder, Label, ProgramBuilder};
pub use instr::{Instr, MathFn};
pub use program::{FuncId, Function, Program, StrId};
pub use verify::VerifyError;

use std::fmt;

/// Errors produced while constructing or parsing bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BytecodeError {
    /// A label was referenced but never bound to a position.
    UnboundLabel(u32),
    /// A function id was declared but never defined.
    UndefinedFunction(String),
    /// The same function id was defined twice.
    Redefined(String),
    /// Textual assembly failed to parse.
    Parse {
        /// 1-based source line of the error (0 for file-level problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The entry function does not exist or has nonzero arity.
    BadEntry(String),
}

impl fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BytecodeError::UnboundLabel(id) => write!(f, "label {id} was never bound"),
            BytecodeError::UndefinedFunction(name) => {
                write!(f, "function `{name}` declared but never defined")
            }
            BytecodeError::Redefined(name) => write!(f, "function `{name}` defined twice"),
            BytecodeError::Parse { line, message } => {
                write!(f, "assembly parse error at line {line}: {message}")
            }
            BytecodeError::BadEntry(name) => {
                write!(f, "entry function `{name}` missing or has nonzero arity")
            }
        }
    }
}

impl std::error::Error for BytecodeError {}
