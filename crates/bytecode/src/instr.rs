//! The instruction set of the evolvable VM's stack machine.
//!
//! The ISA is deliberately Java-flavoured: a small operand stack, numbered
//! local slots, absolute in-function branch targets, and a split between
//! *generic* arithmetic/comparison opcodes (dynamically typed, relatively
//! expensive) and *specialized* typed variants that the optimizing JIT
//! installs via quickening. The per-opcode virtual cycle costs returned by
//! [`Instr::base_cost`] are the canonical cost model shared by the
//! interpreter and the optimizer.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::program::{FuncId, StrId};

/// Math intrinsics available to bytecode programs.
///
/// Unary intrinsics pop one value and push one; [`MathFn::Pow`],
/// [`MathFn::Min`] and [`MathFn::Max`] are binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathFn {
    /// Square root (operates in `f64`).
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value (preserves int/float kind).
    Abs,
    /// Floor (returns an integer value).
    Floor,
    /// `x.powf(y)`; binary.
    Pow,
    /// Minimum of two values; binary.
    Min,
    /// Maximum of two values; binary.
    Max,
}

impl MathFn {
    /// Number of operands the intrinsic pops from the stack.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Pow | MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// All intrinsics, for exhaustive testing.
    pub fn all() -> &'static [MathFn] {
        &[
            MathFn::Sqrt,
            MathFn::Sin,
            MathFn::Cos,
            MathFn::Exp,
            MathFn::Log,
            MathFn::Abs,
            MathFn::Floor,
            MathFn::Pow,
            MathFn::Min,
            MathFn::Max,
        ]
    }

    /// Lowercase mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MathFn::Sqrt => "sqrt",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Abs => "abs",
            MathFn::Floor => "floor",
            MathFn::Pow => "pow",
            MathFn::Min => "min",
            MathFn::Max => "max",
        }
    }

    /// Parse an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<MathFn> {
        MathFn::all().iter().copied().find(|m| m.mnemonic() == s)
    }
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One bytecode instruction.
///
/// Branch targets ([`Instr::Jump`], [`Instr::JumpIf`], [`Instr::JumpIfNot`])
/// are absolute instruction indices within the owning function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    // --- constants ---
    /// Push an integer constant.
    Const(i64),
    /// Push a float constant.
    FConst(f64),
    /// Push the null reference.
    Null,

    // --- locals ---
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),

    // --- stack shuffling ---
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,

    // --- generic (polymorphic) arithmetic; quickened by the JIT ---
    /// Generic addition: int+int, float+float, or mixed (promotes to float).
    Add,
    /// Generic subtraction.
    Sub,
    /// Generic multiplication.
    Mul,
    /// Generic division.
    Div,
    /// Generic remainder.
    Rem,
    /// Generic negation.
    Neg,

    // --- specialized integer arithmetic (installed by quickening) ---
    /// Integer add.
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply.
    IMul,
    /// Integer divide.
    IDiv,
    /// Integer remainder.
    IRem,
    /// Integer negate.
    INeg,

    // --- specialized float arithmetic ---
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float negate.
    FNeg,

    // --- bitwise (integer only) ---
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,

    // --- generic comparisons (push Int 0/1) ---
    /// Generic equality.
    CmpEq,
    /// Generic inequality.
    CmpNe,
    /// Generic less-than.
    CmpLt,
    /// Generic less-or-equal.
    CmpLe,
    /// Generic greater-than.
    CmpGt,
    /// Generic greater-or-equal.
    CmpGe,

    // --- specialized integer comparisons ---
    /// Integer equality.
    ICmpEq,
    /// Integer inequality.
    ICmpNe,
    /// Integer less-than.
    ICmpLt,
    /// Integer less-or-equal.
    ICmpLe,
    /// Integer greater-than.
    ICmpGt,
    /// Integer greater-or-equal.
    ICmpGe,

    // --- specialized float comparisons ---
    /// Float equality.
    FCmpEq,
    /// Float inequality.
    FCmpNe,
    /// Float less-than.
    FCmpLt,
    /// Float less-or-equal.
    FCmpLe,
    /// Float greater-than.
    FCmpGt,
    /// Float greater-or-equal.
    FCmpGe,

    // --- conversions ---
    /// Convert top of stack to float.
    ToFloat,
    /// Convert top of stack to int (truncating).
    ToInt,

    // --- control flow ---
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump if the value is truthy (nonzero int/float, non-null ref).
    JumpIf(u32),
    /// Pop; jump if the value is falsy.
    JumpIfNot(u32),
    /// Call a function: pops `arity` arguments (last argument on top),
    /// pushes the callee's return value.
    Call(FuncId),
    /// Return the top of stack to the caller.
    Return,

    // --- arrays ---
    /// Pop a length, push a new zero-filled array reference.
    NewArray,
    /// Pop index then array ref; push the element.
    ALoad,
    /// Pop value, index, array ref; store the element.
    AStore,
    /// Pop an array ref; push its length as an int.
    ALen,

    // --- intrinsics ---
    /// Invoke a math intrinsic (see [`MathFn`]).
    Math(MathFn),

    // --- host interface ---
    /// Pop a value and append it to the run's observable output.
    Print,
    /// Pop a value and publish it to the host under the interned name
    /// (the XICL `updateV` channel).
    Publish(StrId),
    /// Signal the host that no more features will be published (the XICL
    /// `done()` call); the VM pauses so the host may run prediction.
    Done,

    /// No operation (left behind by some rewrites; erased by DCE).
    Nop,
}

impl Instr {
    /// Base virtual-cycle cost of the instruction.
    ///
    /// This is the canonical cost model shared by the interpreter, the
    /// adaptive optimizer's benefit estimation and the JIT's improvement
    /// accounting. Generic (polymorphic) opcodes pay a dynamic-dispatch
    /// premium that quickening removes.
    pub fn base_cost(&self) -> u64 {
        match self {
            Instr::Const(_) | Instr::FConst(_) | Instr::Null => 1,
            Instr::Load(_) | Instr::Store(_) => 1,
            Instr::Dup | Instr::Pop | Instr::Swap | Instr::Nop => 1,

            Instr::Add | Instr::Sub | Instr::Mul | Instr::Neg => 4,
            Instr::Div | Instr::Rem => 8,

            Instr::IAdd | Instr::ISub | Instr::IMul | Instr::INeg => 1,
            Instr::IDiv | Instr::IRem => 4,
            Instr::FAdd | Instr::FSub | Instr::FMul | Instr::FNeg => 2,
            Instr::FDiv => 6,

            Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => 1,

            Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe => 4,

            Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe => 1,

            Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => 2,

            Instr::ToFloat | Instr::ToInt => 1,

            Instr::Jump(_) => 1,
            Instr::JumpIf(_) | Instr::JumpIfNot(_) => 2,
            Instr::Call(_) => 15,
            Instr::Return => 5,

            Instr::NewArray => 24,
            Instr::ALoad | Instr::AStore => 3,
            Instr::ALen => 2,

            Instr::Math(m) => match m {
                MathFn::Pow => 20,
                MathFn::Abs | MathFn::Floor | MathFn::Min | MathFn::Max => 3,
                _ => 12,
            },

            Instr::Print => 30,
            Instr::Publish(_) => 10,
            Instr::Done => 5,
        }
    }

    /// `(pops, pushes)` stack effect; `Call` pops the callee's arity, which
    /// the caller must supply.
    pub fn stack_effect(&self, call_arity: impl Fn(FuncId) -> usize) -> (usize, usize) {
        match self {
            Instr::Const(_) | Instr::FConst(_) | Instr::Null | Instr::Load(_) => (0, 1),
            Instr::Store(_) | Instr::Pop | Instr::Print | Instr::Publish(_) => (1, 0),
            Instr::Dup => (1, 2),
            Instr::Swap => (2, 2),

            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::IAdd
            | Instr::ISub
            | Instr::IMul
            | Instr::IDiv
            | Instr::IRem
            | Instr::FAdd
            | Instr::FSub
            | Instr::FMul
            | Instr::FDiv
            | Instr::Shl
            | Instr::Shr
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe
            | Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe
            | Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => (2, 1),

            Instr::Neg | Instr::INeg | Instr::FNeg | Instr::ToFloat | Instr::ToInt => (1, 1),

            Instr::Jump(_) | Instr::Nop | Instr::Done => (0, 0),
            Instr::JumpIf(_) | Instr::JumpIfNot(_) => (1, 0),
            Instr::Call(id) => (call_arity(*id), 1),
            Instr::Return => (1, 0),

            Instr::NewArray => (1, 1),
            Instr::ALoad => (2, 1),
            Instr::AStore => (3, 0),
            Instr::ALen => (1, 1),

            Instr::Math(m) => (m.arity(), 1),
        }
    }

    /// The branch target, if this instruction is a jump.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfNot(t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrite the branch target of a jump instruction, if any.
    pub fn with_branch_target(&self, target: u32) -> Instr {
        match self {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIf(_) => Instr::JumpIf(target),
            Instr::JumpIfNot(_) => Instr::JumpIfNot(target),
            other => *other,
        }
    }

    /// True if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump(_) | Instr::Return)
    }

    /// True if the instruction can branch (conditionally or not).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Jump(_) | Instr::JumpIf(_) | Instr::JumpIfNot(_)
        )
    }

    /// True if the instruction has no side effect other than its stack
    /// manipulation (safe to fold or remove when its result is dead).
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Instr::Call(_)
                | Instr::Print
                | Instr::Publish(_)
                | Instr::Done
                | Instr::Return
                | Instr::Store(_)
                | Instr::AStore
                | Instr::NewArray
                | Instr::Jump(_)
                | Instr::JumpIf(_)
                | Instr::JumpIfNot(_)
                // division-likes can trap on zero, keep them
                | Instr::Div
                | Instr::Rem
                | Instr::IDiv
                | Instr::IRem
                | Instr::FDiv
                | Instr::ALoad
                | Instr::ALen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialized_arith_is_cheaper_than_generic() {
        assert!(Instr::IAdd.base_cost() < Instr::Add.base_cost());
        assert!(Instr::FAdd.base_cost() < Instr::Add.base_cost());
        assert!(Instr::ICmpLt.base_cost() < Instr::CmpLt.base_cost());
        assert!(Instr::IDiv.base_cost() < Instr::Div.base_cost());
    }

    #[test]
    fn branch_target_roundtrip() {
        let j = Instr::JumpIf(7);
        assert_eq!(j.branch_target(), Some(7));
        assert_eq!(j.with_branch_target(9), Instr::JumpIf(9));
        assert_eq!(Instr::IAdd.branch_target(), None);
        assert_eq!(Instr::IAdd.with_branch_target(3), Instr::IAdd);
    }

    #[test]
    fn terminators() {
        assert!(Instr::Jump(0).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(!Instr::JumpIf(0).is_terminator());
        assert!(!Instr::IAdd.is_terminator());
    }

    #[test]
    fn stack_effects_balance() {
        let arity = |_: FuncId| 2usize;
        assert_eq!(Instr::Call(FuncId(0)).stack_effect(arity), (2, 1));
        assert_eq!(Instr::AStore.stack_effect(arity), (3, 0));
        assert_eq!(Instr::Math(MathFn::Pow).stack_effect(arity), (2, 1));
        assert_eq!(Instr::Math(MathFn::Sqrt).stack_effect(arity), (1, 1));
    }

    #[test]
    fn math_mnemonics_roundtrip() {
        for m in MathFn::all() {
            assert_eq!(MathFn::from_mnemonic(m.mnemonic()), Some(*m));
        }
        assert_eq!(MathFn::from_mnemonic("tan"), None);
    }

    #[test]
    fn purity_classification() {
        assert!(Instr::IAdd.is_pure());
        assert!(Instr::Const(1).is_pure());
        assert!(!Instr::Print.is_pure());
        assert!(!Instr::Call(FuncId(0)).is_pure());
        assert!(!Instr::IDiv.is_pure());
        assert!(!Instr::Store(0).is_pure());
    }
}
