//! The instruction set of the evolvable VM's stack machine.
//!
//! The ISA is deliberately Java-flavoured: a small operand stack, numbered
//! local slots, absolute in-function branch targets, and a split between
//! *generic* arithmetic/comparison opcodes (dynamically typed, relatively
//! expensive) and *specialized* typed variants that the optimizing JIT
//! installs via quickening. The per-opcode virtual cycle costs returned by
//! [`Instr::base_cost`] are the canonical cost model shared by the
//! interpreter and the optimizer.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::program::{FuncId, StrId};
use crate::scalar::{BinOp, BitOp, CmpOp};

/// Math intrinsics available to bytecode programs.
///
/// Unary intrinsics pop one value and push one; [`MathFn::Pow`],
/// [`MathFn::Min`] and [`MathFn::Max`] are binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MathFn {
    /// Square root (operates in `f64`).
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value (preserves int/float kind).
    Abs,
    /// Floor (returns an integer value).
    Floor,
    /// `x.powf(y)`; binary.
    Pow,
    /// Minimum of two values; binary.
    Min,
    /// Maximum of two values; binary.
    Max,
}

impl MathFn {
    /// Number of operands the intrinsic pops from the stack.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Pow | MathFn::Min | MathFn::Max => 2,
            _ => 1,
        }
    }

    /// All intrinsics, for exhaustive testing.
    pub fn all() -> &'static [MathFn] {
        &[
            MathFn::Sqrt,
            MathFn::Sin,
            MathFn::Cos,
            MathFn::Exp,
            MathFn::Log,
            MathFn::Abs,
            MathFn::Floor,
            MathFn::Pow,
            MathFn::Min,
            MathFn::Max,
        ]
    }

    /// Lowercase mnemonic used by the assembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MathFn::Sqrt => "sqrt",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Abs => "abs",
            MathFn::Floor => "floor",
            MathFn::Pow => "pow",
            MathFn::Min => "min",
            MathFn::Max => "max",
        }
    }

    /// Parse an assembler mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<MathFn> {
        MathFn::all().iter().copied().find(|m| m.mnemonic() == s)
    }
}

impl fmt::Display for MathFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One bytecode instruction.
///
/// Branch targets ([`Instr::Jump`], [`Instr::JumpIf`], [`Instr::JumpIfNot`])
/// are absolute instruction indices within the owning function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    // --- constants ---
    /// Push an integer constant.
    Const(i64),
    /// Push a float constant.
    FConst(f64),
    /// Push the null reference.
    Null,

    // --- locals ---
    /// Push local slot `n`.
    Load(u16),
    /// Pop into local slot `n`.
    Store(u16),

    // --- stack shuffling ---
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Swap the two topmost values.
    Swap,

    // --- generic (polymorphic) arithmetic; quickened by the JIT ---
    /// Generic addition: int+int, float+float, or mixed (promotes to float).
    Add,
    /// Generic subtraction.
    Sub,
    /// Generic multiplication.
    Mul,
    /// Generic division.
    Div,
    /// Generic remainder.
    Rem,
    /// Generic negation.
    Neg,

    // --- specialized integer arithmetic (installed by quickening) ---
    /// Integer add.
    IAdd,
    /// Integer subtract.
    ISub,
    /// Integer multiply.
    IMul,
    /// Integer divide.
    IDiv,
    /// Integer remainder.
    IRem,
    /// Integer negate.
    INeg,

    // --- specialized float arithmetic ---
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide.
    FDiv,
    /// Float negate.
    FNeg,

    // --- bitwise (integer only) ---
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Bitwise and.
    BitAnd,
    /// Bitwise or.
    BitOr,
    /// Bitwise xor.
    BitXor,

    // --- generic comparisons (push Int 0/1) ---
    /// Generic equality.
    CmpEq,
    /// Generic inequality.
    CmpNe,
    /// Generic less-than.
    CmpLt,
    /// Generic less-or-equal.
    CmpLe,
    /// Generic greater-than.
    CmpGt,
    /// Generic greater-or-equal.
    CmpGe,

    // --- specialized integer comparisons ---
    /// Integer equality.
    ICmpEq,
    /// Integer inequality.
    ICmpNe,
    /// Integer less-than.
    ICmpLt,
    /// Integer less-or-equal.
    ICmpLe,
    /// Integer greater-than.
    ICmpGt,
    /// Integer greater-or-equal.
    ICmpGe,

    // --- specialized float comparisons ---
    /// Float equality.
    FCmpEq,
    /// Float inequality.
    FCmpNe,
    /// Float less-than.
    FCmpLt,
    /// Float less-or-equal.
    FCmpLe,
    /// Float greater-than.
    FCmpGt,
    /// Float greater-or-equal.
    FCmpGe,

    // --- conversions ---
    /// Convert top of stack to float.
    ToFloat,
    /// Convert top of stack to int (truncating).
    ToInt,

    // --- control flow ---
    /// Unconditional jump to instruction index.
    Jump(u32),
    /// Pop; jump if the value is truthy (nonzero int/float, non-null ref).
    JumpIf(u32),
    /// Pop; jump if the value is falsy.
    JumpIfNot(u32),
    /// Call a function: pops `arity` arguments (last argument on top),
    /// pushes the callee's return value.
    Call(FuncId),
    /// Return the top of stack to the caller.
    Return,

    // --- arrays ---
    /// Pop a length, push a new zero-filled array reference.
    NewArray,
    /// Pop index then array ref; push the element.
    ALoad,
    /// Pop value, index, array ref; store the element.
    AStore,
    /// Pop an array ref; push its length as an int.
    ALen,

    // --- intrinsics ---
    /// Invoke a math intrinsic (see [`MathFn`]).
    Math(MathFn),

    // --- host interface ---
    /// Pop a value and append it to the run's observable output.
    Print,
    /// Pop a value and publish it to the host under the interned name
    /// (the XICL `updateV` channel).
    Publish(StrId),
    /// Signal the host that no more features will be published (the XICL
    /// `done()` call); the VM pauses so the host may run prediction.
    Done,

    /// No operation (left behind by some rewrites; erased by DCE).
    Nop,

    // --- fused superinstructions ---
    //
    // Installed only by the O1/O2 fusion pass (`evovm-opt`'s `fuse`),
    // never written by frontends. Each one executes exactly like its
    // component sequence, costs the *sum* of its components
    // ([`Instr::base_cost`]) and reports its component count to the
    // retired-instruction counter, so the virtual clock and instruction
    // totals are bit-identical to unfused code. The set is chosen from
    // the measured opcode-pair distribution in `BENCH_dispatch.json`.
    /// Fused `Load a; Load b`.
    LoadLoad(u16, u16),
    /// Fused `Load n; Const v`.
    LoadConst(u16, i64),
    /// Fused `Store n; Load m` (store the top of stack, then push another
    /// local — the dominant statement seam).
    StoreLoad(u16, u16),
    /// Fused `Store n; Jump t` (the loop back-edge idiom). A terminator,
    /// like the `Jump` it ends with.
    StoreJump(u16, u32),
    /// Fused `Const v; IAdd/ISub/IMul`: apply the int-specialized binop
    /// with `v` as the right operand, in place on the top of stack.
    ConstIBin(BinOp, i64),
    /// Fused `Const v; Add/Sub/Mul` (the generic forms quickening could
    /// not specialize; same semantics as [`Instr::ConstIBin`], generic
    /// cost).
    ConstBin(BinOp, i64),
    /// Fused `Const v; Shl/Shr/BitAnd/BitOr/BitXor`.
    ConstBit(BitOp, i64),
    /// Fused `Const v; ICmpXx`: compare the top of stack against `v`,
    /// leaving the 0/1 result in place.
    ConstICmp(CmpOp, i64),
    /// Fused `ICmpXx; JumpIf t` (`true`) / `JumpIfNot t` (`false`): pop
    /// two, compare, branch when the comparison matches the flag.
    ICmpBr(CmpOp, u32, bool),
    /// Fused `CmpXx; JumpIf/JumpIfNot` (generic-compare flavour of
    /// [`Instr::ICmpBr`]).
    CmpBr(CmpOp, u32, bool),
    /// Fused `Const v; ICmpXx; JumpIf/JumpIfNot` — the complete loop-head
    /// idiom, a three-instruction superinstruction formed by fusing
    /// [`Instr::ConstICmp`] with the branch.
    ConstICmpBr(CmpOp, i64, u32, bool),
    /// Fused `IAdd/ISub/IMul; Store n`: pop two, apply the
    /// int-specialized binop, store the result into local `n`.
    IBinStore(BinOp, u16),
    /// Fused `Add/Sub/Mul; Store n` (generic flavour of
    /// [`Instr::IBinStore`]).
    BinStore(BinOp, u16),
    /// Fused `Shl/Shr/BitAnd/BitOr/BitXor; Store n`.
    BitStore(BitOp, u16),
    /// Fused `Load n; IAdd/ISub/IMul`: apply the int-specialized binop
    /// with local `n` as the right operand, in place on the top of stack.
    LoadIBin(BinOp, u16),
    /// Fused `Load n; Add/Sub/Mul` (generic flavour of
    /// [`Instr::LoadIBin`]).
    LoadBin(BinOp, u16),
    /// Fused `Load n; ALoad`: index the array on top of stack with local
    /// `n`, replacing the array with the element.
    LoadALoad(u16),

    // --- tier-3 superinstructions ---
    //
    // Formed by a second fixpoint round of the same fusion pass: the
    // left element is itself a fused pair, so these cover the hot
    // three- and four-instruction chains that remain after pair fusion
    // (see the residual pair table in `BENCH_dispatch.json`).
    /// Fused `Load a; Load b; Add/Sub/Mul`: push `a ⊕ b` (generic
    /// arithmetic; `Div`/`Rem` stay unfused).
    LoadLoadBin(BinOp, u16, u16),
    /// Fused `Load n; Const v; IAdd/ISub/IMul`: push `n ⊕ v` with the
    /// int-specialized cost (the array-indexing idiom `base + i*stride`).
    LoadConstIBin(BinOp, u16, i64),
    /// Fused `Load a; Load b; CmpXx; JumpIf/JumpIfNot`: the complete
    /// two-local loop-head compare — no stack traffic at all.
    LoadLoadCmpBr(CmpOp, u16, u16, u32, bool),
    /// Fused `Const v; Shl/../BitXor; Store n; Load m`: mask-and-store
    /// then start the next statement (the compress/bloat inner-loop
    /// idiom).
    ConstBitStoreLoad(BitOp, i64, u16, u16),
    /// Fused `Const v; IAdd/ISub/IMul; Store n; Jump t`: the complete
    /// `i = i ⊕ c; continue` back-edge. A terminator, like the `Jump` it
    /// ends with (`Div`/`Rem` stay unfused).
    ConstIBinStoreJump(BinOp, i64, u16, u32),
}

/// Mnemonic names of the dispatch classes, indexed by
/// [`Instr::dispatch_class`]. Kept in declaration order of [`Instr`] so
/// profile reports read like the ISA listing.
const DISPATCH_CLASS_NAMES: [&str; Instr::DISPATCH_CLASSES] = [
    "const",
    "fconst",
    "null",
    "load",
    "store",
    "dup",
    "pop",
    "swap",
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "iadd",
    "isub",
    "imul",
    "idiv",
    "irem",
    "ineg",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    "fneg",
    "shl",
    "shr",
    "band",
    "bor",
    "bxor",
    "cmpeq",
    "cmpne",
    "cmplt",
    "cmple",
    "cmpgt",
    "cmpge",
    "icmpeq",
    "icmpne",
    "icmplt",
    "icmple",
    "icmpgt",
    "icmpge",
    "fcmpeq",
    "fcmpne",
    "fcmplt",
    "fcmple",
    "fcmpgt",
    "fcmpge",
    "tofloat",
    "toint",
    "jump",
    "jumpif",
    "jumpifnot",
    "call",
    "return",
    "newarray",
    "aload",
    "astore",
    "alen",
    "math",
    "print",
    "publish",
    "done",
    "nop",
    "loadload",
    "loadconst",
    "storeload",
    "storejump",
    "constibin",
    "constbin",
    "constbit",
    "consticmp",
    "icmpbr",
    "cmpbr",
    "consticmpbr",
    "ibinstore",
    "binstore",
    "bitstore",
    "loadibin",
    "loadbin",
    "loadaload",
    "loadloadbin",
    "loadconstibin",
    "loadloadcmpbr",
    "constbitstoreload",
    "constibinstorejump",
];

impl Instr {
    /// Number of dispatch classes ([`Instr::dispatch_class`] values are
    /// `0..DISPATCH_CLASSES`): one class per opcode, ignoring operands, so
    /// an opcode-pair frequency table is `DISPATCH_CLASSES²` counters.
    pub const DISPATCH_CLASSES: usize = 86;

    /// The instruction's dispatch class: a dense 16-bit opcode index (the
    /// operand is ignored) used by the interpreter's dispatch profiler to
    /// bump per-opcode and opcode-pair counters without hashing.
    pub fn dispatch_class(self) -> u16 {
        match self {
            Instr::Const(_) => 0,
            Instr::FConst(_) => 1,
            Instr::Null => 2,
            Instr::Load(_) => 3,
            Instr::Store(_) => 4,
            Instr::Dup => 5,
            Instr::Pop => 6,
            Instr::Swap => 7,
            Instr::Add => 8,
            Instr::Sub => 9,
            Instr::Mul => 10,
            Instr::Div => 11,
            Instr::Rem => 12,
            Instr::Neg => 13,
            Instr::IAdd => 14,
            Instr::ISub => 15,
            Instr::IMul => 16,
            Instr::IDiv => 17,
            Instr::IRem => 18,
            Instr::INeg => 19,
            Instr::FAdd => 20,
            Instr::FSub => 21,
            Instr::FMul => 22,
            Instr::FDiv => 23,
            Instr::FNeg => 24,
            Instr::Shl => 25,
            Instr::Shr => 26,
            Instr::BitAnd => 27,
            Instr::BitOr => 28,
            Instr::BitXor => 29,
            Instr::CmpEq => 30,
            Instr::CmpNe => 31,
            Instr::CmpLt => 32,
            Instr::CmpLe => 33,
            Instr::CmpGt => 34,
            Instr::CmpGe => 35,
            Instr::ICmpEq => 36,
            Instr::ICmpNe => 37,
            Instr::ICmpLt => 38,
            Instr::ICmpLe => 39,
            Instr::ICmpGt => 40,
            Instr::ICmpGe => 41,
            Instr::FCmpEq => 42,
            Instr::FCmpNe => 43,
            Instr::FCmpLt => 44,
            Instr::FCmpLe => 45,
            Instr::FCmpGt => 46,
            Instr::FCmpGe => 47,
            Instr::ToFloat => 48,
            Instr::ToInt => 49,
            Instr::Jump(_) => 50,
            Instr::JumpIf(_) => 51,
            Instr::JumpIfNot(_) => 52,
            Instr::Call(_) => 53,
            Instr::Return => 54,
            Instr::NewArray => 55,
            Instr::ALoad => 56,
            Instr::AStore => 57,
            Instr::ALen => 58,
            Instr::Math(_) => 59,
            Instr::Print => 60,
            Instr::Publish(_) => 61,
            Instr::Done => 62,
            Instr::Nop => 63,
            Instr::LoadLoad(_, _) => 64,
            Instr::LoadConst(_, _) => 65,
            Instr::StoreLoad(_, _) => 66,
            Instr::StoreJump(_, _) => 67,
            Instr::ConstIBin(_, _) => 68,
            Instr::ConstBin(_, _) => 69,
            Instr::ConstBit(_, _) => 70,
            Instr::ConstICmp(_, _) => 71,
            Instr::ICmpBr(_, _, _) => 72,
            Instr::CmpBr(_, _, _) => 73,
            Instr::ConstICmpBr(_, _, _, _) => 74,
            Instr::IBinStore(_, _) => 75,
            Instr::BinStore(_, _) => 76,
            Instr::BitStore(_, _) => 77,
            Instr::LoadIBin(_, _) => 78,
            Instr::LoadBin(_, _) => 79,
            Instr::LoadALoad(_) => 80,
            Instr::LoadLoadBin(_, _, _) => 81,
            Instr::LoadConstIBin(_, _, _) => 82,
            Instr::LoadLoadCmpBr(_, _, _, _, _) => 83,
            Instr::ConstBitStoreLoad(_, _, _, _) => 84,
            Instr::ConstIBinStoreJump(_, _, _, _) => 85,
        }
    }

    /// Mnemonic of a dispatch class, for profile reports.
    ///
    /// # Panics
    ///
    /// Panics if `class >= DISPATCH_CLASSES`.
    pub fn dispatch_class_name(class: u16) -> &'static str {
        DISPATCH_CLASS_NAMES[class as usize]
    }

    /// Base virtual-cycle cost of the instruction.
    ///
    /// This is the canonical cost model shared by the interpreter, the
    /// adaptive optimizer's benefit estimation and the JIT's improvement
    /// accounting. Generic (polymorphic) opcodes pay a dynamic-dispatch
    /// premium that quickening removes.
    pub fn base_cost(&self) -> u64 {
        match self {
            Instr::Const(_) | Instr::FConst(_) | Instr::Null => 1,
            Instr::Load(_) | Instr::Store(_) => 1,
            Instr::Dup | Instr::Pop | Instr::Swap | Instr::Nop => 1,

            Instr::Add | Instr::Sub | Instr::Mul | Instr::Neg => 4,
            Instr::Div | Instr::Rem => 8,

            Instr::IAdd | Instr::ISub | Instr::IMul | Instr::INeg => 1,
            Instr::IDiv | Instr::IRem => 4,
            Instr::FAdd | Instr::FSub | Instr::FMul | Instr::FNeg => 2,
            Instr::FDiv => 6,

            Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => 1,

            Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe => 4,

            Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe => 1,

            Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => 2,

            Instr::ToFloat | Instr::ToInt => 1,

            Instr::Jump(_) => 1,
            Instr::JumpIf(_) | Instr::JumpIfNot(_) => 2,
            Instr::Call(_) => 15,
            Instr::Return => 5,

            Instr::NewArray => 24,
            Instr::ALoad | Instr::AStore => 3,
            Instr::ALen => 2,

            Instr::Math(m) => match m {
                MathFn::Pow => 20,
                MathFn::Abs | MathFn::Floor | MathFn::Min | MathFn::Max => 3,
                _ => 12,
            },

            Instr::Print => 30,
            Instr::Publish(_) => 10,
            Instr::Done => 5,

            // Fused superinstructions cost exactly the sum of their
            // components — the invariant that keeps the virtual clock
            // bit-identical between fused and unfused code (asserted by
            // `fused_costs_are_component_sums` below and re-checked by
            // the optimizer's cost-table test).
            Instr::LoadLoad(_, _) | Instr::LoadConst(_, _) | Instr::StoreLoad(_, _) => 2,
            Instr::StoreJump(_, _) => 2,
            Instr::ConstIBin(op, _) => {
                1 + match op {
                    BinOp::Div | BinOp::Rem => 4,
                    _ => 1,
                }
            }
            Instr::ConstBin(op, _) => {
                1 + match op {
                    BinOp::Div | BinOp::Rem => 8,
                    _ => 4,
                }
            }
            Instr::ConstBit(_, _) => 2,
            Instr::ConstICmp(_, _) => 2,
            Instr::ICmpBr(_, _, _) => 3,
            Instr::CmpBr(_, _, _) => 6,
            Instr::ConstICmpBr(_, _, _, _) => 4,
            Instr::IBinStore(op, _) | Instr::LoadIBin(op, _) => {
                1 + match op {
                    BinOp::Div | BinOp::Rem => 4,
                    _ => 1,
                }
            }
            Instr::BinStore(op, _) | Instr::LoadBin(op, _) => {
                1 + match op {
                    BinOp::Div | BinOp::Rem => 8,
                    _ => 4,
                }
            }
            Instr::BitStore(_, _) => 2,
            Instr::LoadALoad(_) => 4,
            // Tier-3: sums of the tier-1/2 sums. The fusion pass never
            // forms the Div/Rem flavours, but the cost stays the exact
            // component sum for every operand regardless.
            Instr::LoadLoadBin(op, _, _) => {
                2 + match op {
                    BinOp::Div | BinOp::Rem => 8,
                    _ => 4,
                }
            }
            Instr::LoadConstIBin(op, _, _) => {
                2 + match op {
                    BinOp::Div | BinOp::Rem => 4,
                    _ => 1,
                }
            }
            Instr::LoadLoadCmpBr(_, _, _, _, _) => 8,
            Instr::ConstBitStoreLoad(_, _, _, _) => 4,
            Instr::ConstIBinStoreJump(op, _, _, _) => {
                3 + match op {
                    BinOp::Div | BinOp::Rem => 4,
                    _ => 1,
                }
            }
        }
    }

    /// How many source instructions this opcode retires: 1 for everything
    /// except fused superinstructions, which report their component count
    /// so retired-instruction totals are identical fused and unfused.
    pub fn component_count(&self) -> u64 {
        match self {
            Instr::LoadLoad(_, _)
            | Instr::LoadConst(_, _)
            | Instr::StoreLoad(_, _)
            | Instr::StoreJump(_, _)
            | Instr::ConstIBin(_, _)
            | Instr::ConstBin(_, _)
            | Instr::ConstBit(_, _)
            | Instr::ConstICmp(_, _)
            | Instr::ICmpBr(_, _, _)
            | Instr::CmpBr(_, _, _)
            | Instr::IBinStore(_, _)
            | Instr::BinStore(_, _)
            | Instr::BitStore(_, _)
            | Instr::LoadIBin(_, _)
            | Instr::LoadBin(_, _)
            | Instr::LoadALoad(_) => 2,
            Instr::ConstICmpBr(_, _, _, _)
            | Instr::LoadLoadBin(_, _, _)
            | Instr::LoadConstIBin(_, _, _) => 3,
            Instr::LoadLoadCmpBr(_, _, _, _, _)
            | Instr::ConstBitStoreLoad(_, _, _, _)
            | Instr::ConstIBinStoreJump(_, _, _, _) => 4,
            _ => 1,
        }
    }

    /// The component sequence a fused superinstruction stands for
    /// (`None` for ordinary instructions). The inverse of the fusion
    /// pass, used by tests and disassembly tooling.
    pub fn unfused(&self) -> Option<Vec<Instr>> {
        let seq = match *self {
            Instr::LoadLoad(a, b) => vec![Instr::Load(a), Instr::Load(b)],
            Instr::LoadConst(n, v) => vec![Instr::Load(n), Instr::Const(v)],
            Instr::StoreLoad(n, m) => vec![Instr::Store(n), Instr::Load(m)],
            Instr::StoreJump(n, t) => vec![Instr::Store(n), Instr::Jump(t)],
            Instr::ConstIBin(op, v) => vec![Instr::Const(v), ibin_of(op)],
            Instr::ConstBin(op, v) => vec![Instr::Const(v), bin_of(op)],
            Instr::ConstBit(op, v) => vec![Instr::Const(v), bit_of(op)],
            Instr::ConstICmp(op, v) => vec![Instr::Const(v), icmp_of(op)],
            Instr::ICmpBr(op, t, when) => vec![icmp_of(op), branch_of(t, when)],
            Instr::CmpBr(op, t, when) => vec![cmp_of(op), branch_of(t, when)],
            Instr::ConstICmpBr(op, v, t, when) => {
                vec![Instr::Const(v), icmp_of(op), branch_of(t, when)]
            }
            Instr::IBinStore(op, n) => vec![ibin_of(op), Instr::Store(n)],
            Instr::BinStore(op, n) => vec![bin_of(op), Instr::Store(n)],
            Instr::BitStore(op, n) => vec![bit_of(op), Instr::Store(n)],
            Instr::LoadIBin(op, n) => vec![Instr::Load(n), ibin_of(op)],
            Instr::LoadBin(op, n) => vec![Instr::Load(n), bin_of(op)],
            Instr::LoadALoad(n) => vec![Instr::Load(n), Instr::ALoad],
            Instr::LoadLoadBin(op, a, b) => vec![Instr::Load(a), Instr::Load(b), bin_of(op)],
            Instr::LoadConstIBin(op, n, v) => {
                vec![Instr::Load(n), Instr::Const(v), ibin_of(op)]
            }
            Instr::LoadLoadCmpBr(op, a, b, t, when) => {
                vec![
                    Instr::Load(a),
                    Instr::Load(b),
                    cmp_of(op),
                    branch_of(t, when),
                ]
            }
            Instr::ConstBitStoreLoad(op, v, n, m) => {
                vec![Instr::Const(v), bit_of(op), Instr::Store(n), Instr::Load(m)]
            }
            Instr::ConstIBinStoreJump(op, v, n, t) => {
                vec![
                    Instr::Const(v),
                    ibin_of(op),
                    Instr::Store(n),
                    Instr::Jump(t),
                ]
            }
            _ => return None,
        };
        Some(seq)
    }

    /// `(pops, pushes)` stack effect; `Call` pops the callee's arity, which
    /// the caller must supply.
    pub fn stack_effect(&self, call_arity: impl Fn(FuncId) -> usize) -> (usize, usize) {
        match self {
            Instr::Const(_) | Instr::FConst(_) | Instr::Null | Instr::Load(_) => (0, 1),
            Instr::Store(_) | Instr::Pop | Instr::Print | Instr::Publish(_) => (1, 0),
            Instr::Dup => (1, 2),
            Instr::Swap => (2, 2),

            Instr::Add
            | Instr::Sub
            | Instr::Mul
            | Instr::Div
            | Instr::Rem
            | Instr::IAdd
            | Instr::ISub
            | Instr::IMul
            | Instr::IDiv
            | Instr::IRem
            | Instr::FAdd
            | Instr::FSub
            | Instr::FMul
            | Instr::FDiv
            | Instr::Shl
            | Instr::Shr
            | Instr::BitAnd
            | Instr::BitOr
            | Instr::BitXor
            | Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe
            | Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe
            | Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => (2, 1),

            Instr::Neg | Instr::INeg | Instr::FNeg | Instr::ToFloat | Instr::ToInt => (1, 1),

            Instr::Jump(_) | Instr::Nop | Instr::Done => (0, 0),
            Instr::JumpIf(_) | Instr::JumpIfNot(_) => (1, 0),
            Instr::Call(id) => (call_arity(*id), 1),
            Instr::Return => (1, 0),

            Instr::NewArray => (1, 1),
            Instr::ALoad => (2, 1),
            Instr::AStore => (3, 0),
            Instr::ALen => (1, 1),

            Instr::Math(m) => (m.arity(), 1),

            // Fused forms execute in place, so their transient stack never
            // exceeds what these net effects imply.
            Instr::LoadLoad(_, _) | Instr::LoadConst(_, _) => (0, 2),
            Instr::StoreLoad(_, _) => (1, 1),
            Instr::StoreJump(_, _) => (1, 0),
            Instr::ConstIBin(_, _)
            | Instr::ConstBin(_, _)
            | Instr::ConstBit(_, _)
            | Instr::ConstICmp(_, _) => (1, 1),
            Instr::ICmpBr(_, _, _) | Instr::CmpBr(_, _, _) => (2, 0),
            Instr::ConstICmpBr(_, _, _, _) => (1, 0),
            Instr::IBinStore(_, _) | Instr::BinStore(_, _) | Instr::BitStore(_, _) => (2, 0),
            Instr::LoadIBin(_, _) | Instr::LoadBin(_, _) | Instr::LoadALoad(_) => (1, 1),
            Instr::LoadLoadBin(_, _, _) | Instr::LoadConstIBin(_, _, _) => (0, 1),
            Instr::LoadLoadCmpBr(_, _, _, _, _) => (0, 0),
            Instr::ConstBitStoreLoad(_, _, _, _) => (1, 1),
            Instr::ConstIBinStoreJump(_, _, _, _) => (1, 0),
        }
    }

    /// The branch target, if this instruction is a jump.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Instr::Jump(t) | Instr::JumpIf(t) | Instr::JumpIfNot(t) => Some(*t),
            Instr::StoreJump(_, t)
            | Instr::ICmpBr(_, t, _)
            | Instr::CmpBr(_, t, _)
            | Instr::ConstICmpBr(_, _, t, _)
            | Instr::LoadLoadCmpBr(_, _, _, t, _)
            | Instr::ConstIBinStoreJump(_, _, _, t) => Some(*t),
            _ => None,
        }
    }

    /// Rewrite the branch target of a jump instruction, if any.
    pub fn with_branch_target(&self, target: u32) -> Instr {
        match *self {
            Instr::Jump(_) => Instr::Jump(target),
            Instr::JumpIf(_) => Instr::JumpIf(target),
            Instr::JumpIfNot(_) => Instr::JumpIfNot(target),
            Instr::StoreJump(n, _) => Instr::StoreJump(n, target),
            Instr::ICmpBr(op, _, when) => Instr::ICmpBr(op, target, when),
            Instr::CmpBr(op, _, when) => Instr::CmpBr(op, target, when),
            Instr::ConstICmpBr(op, v, _, when) => Instr::ConstICmpBr(op, v, target, when),
            Instr::LoadLoadCmpBr(op, a, b, _, when) => Instr::LoadLoadCmpBr(op, a, b, target, when),
            Instr::ConstIBinStoreJump(op, v, n, _) => Instr::ConstIBinStoreJump(op, v, n, target),
            other => other,
        }
    }

    /// True if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jump(_)
                | Instr::Return
                | Instr::StoreJump(_, _)
                | Instr::ConstIBinStoreJump(_, _, _, _)
        )
    }

    /// True if the instruction can branch (conditionally or not).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Jump(_)
                | Instr::JumpIf(_)
                | Instr::JumpIfNot(_)
                | Instr::StoreJump(_, _)
                | Instr::ICmpBr(_, _, _)
                | Instr::CmpBr(_, _, _)
                | Instr::ConstICmpBr(_, _, _, _)
                | Instr::LoadLoadCmpBr(_, _, _, _, _)
                | Instr::ConstIBinStoreJump(_, _, _, _)
        )
    }

    /// True if the instruction has no side effect other than its stack
    /// manipulation (safe to fold or remove when its result is dead).
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            Instr::Call(_)
                | Instr::Print
                | Instr::Publish(_)
                | Instr::Done
                | Instr::Return
                | Instr::Store(_)
                | Instr::AStore
                | Instr::NewArray
                | Instr::Jump(_)
                | Instr::JumpIf(_)
                | Instr::JumpIfNot(_)
                // division-likes can trap on zero, keep them
                | Instr::Div
                | Instr::Rem
                | Instr::IDiv
                | Instr::IRem
                | Instr::FDiv
                | Instr::ALoad
                | Instr::ALen
                // fused forms with a store, branch or div component
                | Instr::StoreLoad(_, _)
                | Instr::StoreJump(_, _)
                | Instr::ICmpBr(_, _, _)
                | Instr::CmpBr(_, _, _)
                | Instr::ConstICmpBr(_, _, _, _)
                | Instr::ConstIBin(BinOp::Div | BinOp::Rem, _)
                | Instr::ConstBin(BinOp::Div | BinOp::Rem, _)
                | Instr::IBinStore(_, _)
                | Instr::BinStore(_, _)
                | Instr::BitStore(_, _)
                | Instr::LoadIBin(BinOp::Div | BinOp::Rem, _)
                | Instr::LoadBin(BinOp::Div | BinOp::Rem, _)
                | Instr::LoadALoad(_)
                | Instr::LoadLoadBin(BinOp::Div | BinOp::Rem, _, _)
                | Instr::LoadConstIBin(BinOp::Div | BinOp::Rem, _, _)
                | Instr::LoadLoadCmpBr(_, _, _, _, _)
                | Instr::ConstBitStoreLoad(_, _, _, _)
                | Instr::ConstIBinStoreJump(_, _, _, _)
        )
    }
}

/// The int-specialized arithmetic opcode for `op`.
fn ibin_of(op: BinOp) -> Instr {
    match op {
        BinOp::Add => Instr::IAdd,
        BinOp::Sub => Instr::ISub,
        BinOp::Mul => Instr::IMul,
        BinOp::Div => Instr::IDiv,
        BinOp::Rem => Instr::IRem,
    }
}

/// The generic arithmetic opcode for `op`.
fn bin_of(op: BinOp) -> Instr {
    match op {
        BinOp::Add => Instr::Add,
        BinOp::Sub => Instr::Sub,
        BinOp::Mul => Instr::Mul,
        BinOp::Div => Instr::Div,
        BinOp::Rem => Instr::Rem,
    }
}

/// The bitwise opcode for `op`.
fn bit_of(op: BitOp) -> Instr {
    match op {
        BitOp::Shl => Instr::Shl,
        BitOp::Shr => Instr::Shr,
        BitOp::And => Instr::BitAnd,
        BitOp::Or => Instr::BitOr,
        BitOp::Xor => Instr::BitXor,
    }
}

/// The int-specialized compare opcode for `op`.
fn icmp_of(op: CmpOp) -> Instr {
    match op {
        CmpOp::Eq => Instr::ICmpEq,
        CmpOp::Ne => Instr::ICmpNe,
        CmpOp::Lt => Instr::ICmpLt,
        CmpOp::Le => Instr::ICmpLe,
        CmpOp::Gt => Instr::ICmpGt,
        CmpOp::Ge => Instr::ICmpGe,
    }
}

/// The generic compare opcode for `op`.
fn cmp_of(op: CmpOp) -> Instr {
    match op {
        CmpOp::Eq => Instr::CmpEq,
        CmpOp::Ne => Instr::CmpNe,
        CmpOp::Lt => Instr::CmpLt,
        CmpOp::Le => Instr::CmpLe,
        CmpOp::Gt => Instr::CmpGt,
        CmpOp::Ge => Instr::CmpGe,
    }
}

/// The conditional branch for a fused compare-and-branch: `JumpIf` when
/// the fused flag is `true`, `JumpIfNot` otherwise.
fn branch_of(target: u32, when: bool) -> Instr {
    if when {
        Instr::JumpIf(target)
    } else {
        Instr::JumpIfNot(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specialized_arith_is_cheaper_than_generic() {
        assert!(Instr::IAdd.base_cost() < Instr::Add.base_cost());
        assert!(Instr::FAdd.base_cost() < Instr::Add.base_cost());
        assert!(Instr::ICmpLt.base_cost() < Instr::CmpLt.base_cost());
        assert!(Instr::IDiv.base_cost() < Instr::Div.base_cost());
    }

    #[test]
    fn branch_target_roundtrip() {
        let j = Instr::JumpIf(7);
        assert_eq!(j.branch_target(), Some(7));
        assert_eq!(j.with_branch_target(9), Instr::JumpIf(9));
        assert_eq!(Instr::IAdd.branch_target(), None);
        assert_eq!(Instr::IAdd.with_branch_target(3), Instr::IAdd);
    }

    #[test]
    fn terminators() {
        assert!(Instr::Jump(0).is_terminator());
        assert!(Instr::Return.is_terminator());
        assert!(!Instr::JumpIf(0).is_terminator());
        assert!(!Instr::IAdd.is_terminator());
    }

    #[test]
    fn stack_effects_balance() {
        let arity = |_: FuncId| 2usize;
        assert_eq!(Instr::Call(FuncId(0)).stack_effect(arity), (2, 1));
        assert_eq!(Instr::AStore.stack_effect(arity), (3, 0));
        assert_eq!(Instr::Math(MathFn::Pow).stack_effect(arity), (2, 1));
        assert_eq!(Instr::Math(MathFn::Sqrt).stack_effect(arity), (1, 1));
    }

    #[test]
    fn math_mnemonics_roundtrip() {
        for m in MathFn::all() {
            assert_eq!(MathFn::from_mnemonic(m.mnemonic()), Some(*m));
        }
        assert_eq!(MathFn::from_mnemonic("tan"), None);
    }

    /// One exemplar of every variant, in declaration order.
    fn exemplars() -> Vec<Instr> {
        vec![
            Instr::Const(1),
            Instr::FConst(1.0),
            Instr::Null,
            Instr::Load(0),
            Instr::Store(0),
            Instr::Dup,
            Instr::Pop,
            Instr::Swap,
            Instr::Add,
            Instr::Sub,
            Instr::Mul,
            Instr::Div,
            Instr::Rem,
            Instr::Neg,
            Instr::IAdd,
            Instr::ISub,
            Instr::IMul,
            Instr::IDiv,
            Instr::IRem,
            Instr::INeg,
            Instr::FAdd,
            Instr::FSub,
            Instr::FMul,
            Instr::FDiv,
            Instr::FNeg,
            Instr::Shl,
            Instr::Shr,
            Instr::BitAnd,
            Instr::BitOr,
            Instr::BitXor,
            Instr::CmpEq,
            Instr::CmpNe,
            Instr::CmpLt,
            Instr::CmpLe,
            Instr::CmpGt,
            Instr::CmpGe,
            Instr::ICmpEq,
            Instr::ICmpNe,
            Instr::ICmpLt,
            Instr::ICmpLe,
            Instr::ICmpGt,
            Instr::ICmpGe,
            Instr::FCmpEq,
            Instr::FCmpNe,
            Instr::FCmpLt,
            Instr::FCmpLe,
            Instr::FCmpGt,
            Instr::FCmpGe,
            Instr::ToFloat,
            Instr::ToInt,
            Instr::Jump(0),
            Instr::JumpIf(0),
            Instr::JumpIfNot(0),
            Instr::Call(FuncId(0)),
            Instr::Return,
            Instr::NewArray,
            Instr::ALoad,
            Instr::AStore,
            Instr::ALen,
            Instr::Math(MathFn::Sqrt),
            Instr::Print,
            Instr::Publish(StrId(0)),
            Instr::Done,
            Instr::Nop,
            Instr::LoadLoad(0, 1),
            Instr::LoadConst(0, 1),
            Instr::StoreLoad(0, 1),
            Instr::StoreJump(0, 0),
            Instr::ConstIBin(BinOp::Add, 1),
            Instr::ConstBin(BinOp::Add, 1),
            Instr::ConstBit(BitOp::And, 1),
            Instr::ConstICmp(CmpOp::Lt, 1),
            Instr::ICmpBr(CmpOp::Lt, 0, true),
            Instr::CmpBr(CmpOp::Lt, 0, false),
            Instr::ConstICmpBr(CmpOp::Lt, 1, 0, true),
            Instr::IBinStore(BinOp::Add, 0),
            Instr::BinStore(BinOp::Add, 0),
            Instr::BitStore(BitOp::And, 0),
            Instr::LoadIBin(BinOp::Add, 0),
            Instr::LoadBin(BinOp::Add, 0),
            Instr::LoadALoad(0),
            Instr::LoadLoadBin(BinOp::Add, 0, 1),
            Instr::LoadConstIBin(BinOp::Add, 0, 1),
            Instr::LoadLoadCmpBr(CmpOp::Lt, 0, 1, 0, true),
            Instr::ConstBitStoreLoad(BitOp::And, 1, 0, 1),
            Instr::ConstIBinStoreJump(BinOp::Add, 1, 0, 0),
        ]
    }

    #[test]
    fn dispatch_classes_are_dense_and_named() {
        let all = exemplars();
        assert_eq!(all.len(), Instr::DISPATCH_CLASSES);
        for (i, instr) in all.iter().enumerate() {
            assert_eq!(
                instr.dispatch_class() as usize,
                i,
                "{instr:?} must sit at class {i}"
            );
            assert!(!Instr::dispatch_class_name(i as u16).is_empty());
        }
        // Operands never change the class.
        assert_eq!(
            Instr::Const(7).dispatch_class(),
            Instr::Const(-9).dispatch_class()
        );
        assert_eq!(
            Instr::Load(0).dispatch_class(),
            Instr::Load(200).dispatch_class()
        );
    }

    #[test]
    fn instr_stays_two_words() {
        // The interpreter copies one `Instr` per dispatch; fused variants
        // must pack into the existing 16-byte enum layout.
        assert!(std::mem::size_of::<Instr>() <= 16);
    }

    /// Every fused exemplar across all operand flavours, for invariant
    /// sweeps.
    fn fused_exemplars() -> Vec<Instr> {
        let mut v = vec![
            Instr::LoadLoad(0, 1),
            Instr::LoadConst(2, -7),
            Instr::StoreLoad(1, 3),
            Instr::StoreJump(0, 5),
            Instr::LoadALoad(2),
        ];
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem] {
            v.push(Instr::ConstIBin(op, 3));
            v.push(Instr::ConstBin(op, 3));
            v.push(Instr::IBinStore(op, 1));
            v.push(Instr::BinStore(op, 1));
            v.push(Instr::LoadIBin(op, 1));
            v.push(Instr::LoadBin(op, 1));
            v.push(Instr::LoadLoadBin(op, 0, 1));
            v.push(Instr::LoadConstIBin(op, 1, 3));
            v.push(Instr::ConstIBinStoreJump(op, 3, 1, 4));
        }
        for op in [BitOp::Shl, BitOp::Shr, BitOp::And, BitOp::Or, BitOp::Xor] {
            v.push(Instr::ConstBit(op, 3));
            v.push(Instr::BitStore(op, 1));
            v.push(Instr::ConstBitStoreLoad(op, 3, 1, 2));
        }
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            v.push(Instr::ConstICmp(op, 3));
            for when in [true, false] {
                v.push(Instr::ICmpBr(op, 4, when));
                v.push(Instr::CmpBr(op, 4, when));
                v.push(Instr::ConstICmpBr(op, 3, 4, when));
                v.push(Instr::LoadLoadCmpBr(op, 0, 1, 4, when));
            }
        }
        v
    }

    #[test]
    fn fused_costs_are_component_sums() {
        for fused in fused_exemplars() {
            let parts = fused.unfused().expect("fused exemplar");
            assert_eq!(
                fused.base_cost(),
                parts.iter().map(Instr::base_cost).sum::<u64>(),
                "{fused:?} must cost the sum of {parts:?}"
            );
            assert_eq!(
                fused.component_count(),
                parts.len() as u64,
                "{fused:?} must retire {} instructions",
                parts.len()
            );
        }
        assert_eq!(Instr::IAdd.component_count(), 1);
        assert!(Instr::IAdd.unfused().is_none());
    }

    #[test]
    fn fused_stack_effects_match_component_sequences() {
        let arity = |_: FuncId| 0usize;
        for fused in fused_exemplars() {
            let parts = fused.unfused().expect("fused exemplar");
            // Simulate the component sequence from a large depth and
            // compare net effect.
            let mut depth = 100i64;
            for p in &parts {
                let (pops, pushes) = p.stack_effect(arity);
                depth = depth - pops as i64 + pushes as i64;
            }
            let (pops, pushes) = fused.stack_effect(arity);
            assert_eq!(
                100 - pops as i64 + pushes as i64,
                depth,
                "{fused:?} net stack effect must match {parts:?}"
            );
        }
    }

    #[test]
    fn fused_branch_metadata() {
        assert_eq!(Instr::StoreJump(1, 9).branch_target(), Some(9));
        assert!(Instr::StoreJump(1, 9).is_terminator());
        assert!(Instr::StoreJump(1, 9).is_branch());
        assert_eq!(
            Instr::StoreJump(1, 9).with_branch_target(3),
            Instr::StoreJump(1, 3)
        );
        let br = Instr::ConstICmpBr(CmpOp::Ge, 40, 11, true);
        assert_eq!(br.branch_target(), Some(11));
        assert!(!br.is_terminator());
        assert!(br.is_branch());
        assert_eq!(
            br.with_branch_target(2),
            Instr::ConstICmpBr(CmpOp::Ge, 40, 2, true)
        );
        assert_eq!(Instr::LoadLoad(0, 1).branch_target(), None);
        assert!(Instr::LoadConst(0, 3).is_pure());
        assert!(!Instr::StoreLoad(0, 1).is_pure());
        assert!(!Instr::ConstIBin(BinOp::Div, 2).is_pure());
        assert!(Instr::ConstIBin(BinOp::Add, 2).is_pure());
    }

    #[test]
    fn purity_classification() {
        assert!(Instr::IAdd.is_pure());
        assert!(Instr::Const(1).is_pure());
        assert!(!Instr::Print.is_pure());
        assert!(!Instr::Call(FuncId(0)).is_pure());
        assert!(!Instr::IDiv.is_pure());
        assert!(!Instr::Store(0).is_pure());
    }
}
