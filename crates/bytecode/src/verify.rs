//! Bytecode verifier.
//!
//! Runs a forward dataflow analysis over every function checking, before a
//! program is ever executed or optimized:
//!
//! - branch targets are in range,
//! - local indices are below the declared `locals` count,
//! - callee ids and string ids are valid,
//! - the operand stack never underflows,
//! - every join point is reached with a *consistent* stack depth,
//! - execution cannot fall off the end of the code,
//! - `Return` always has exactly the return value on the stack model.
//!
//! The depth-consistency rule is the same discipline the JVM's verifier
//! enforces; it is what lets the optimizer reason about stack shapes
//! block-locally.
//!
//! Beyond the accept/reject answer, the same dataflow pass yields *facts*
//! the rest of the system consumes ([`verify_with_facts`]): the maximum
//! operand-stack depth any execution of a function can reach, which
//! instruction offsets are reachable at all, and the reachable call
//! sites. [`crate::analysis`] composes these per-function facts into
//! whole-program bounds (call depth, frame-arena size) that the VM uses
//! to pre-size its frame arena and that `vmlint` checks statically.

use std::fmt;

use crate::instr::Instr;
use crate::program::{FuncId, Function, Program};

/// Facts the dataflow pass proves about one function, beyond the
/// accept/reject verification answer. All bounds are *sound*: no
/// execution of verified code can exceed them (asserted dynamically by
/// `tests/analysis_soundness.rs` at the workspace root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionFacts {
    /// Maximum operand-stack depth any execution can reach, including
    /// mid-instruction growth (the depth after an instruction's pushes).
    pub max_stack: usize,
    /// Per instruction offset: is it reachable from entry? Offsets the
    /// dataflow never visited can only be reached by falling through
    /// from dead code, i.e. not at all.
    pub reachable: Vec<bool>,
    /// Reachable `Call` sites as `(offset, callee)`, in code order.
    /// Unreachable calls are excluded so dead code cannot keep a callee
    /// alive in the call graph.
    pub calls: Vec<(u32, FuncId)>,
}

/// Per-function [`FunctionFacts`] for a whole verified program, indexed
/// by [`FuncId::index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramFacts {
    /// One fact record per function.
    pub functions: Vec<FunctionFacts>,
}

/// A verification failure, locating the offending function/instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The function that failed verification.
    pub function: String,
    /// Offset of the offending instruction (`None` for whole-function
    /// problems such as empty code).
    pub at: Option<u32>,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

/// The specific verification rule that was violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// Function has no instructions.
    EmptyCode,
    /// A branch target is outside the code.
    BranchOutOfRange {
        /// The offending target.
        target: u32,
        /// The function's code length.
        len: u32,
    },
    /// A local index is outside the declared slots.
    LocalOutOfRange {
        /// The offending slot index.
        local: u16,
        /// The declared slot count.
        locals: u16,
    },
    /// A `Call` names a function id not in the program.
    BadCallee {
        /// The unknown function id.
        callee: u32,
    },
    /// A `Publish` names a string id not in the pool.
    BadString {
        /// The unknown string id.
        string: u32,
    },
    /// The operand stack would underflow.
    StackUnderflow {
        /// Stack depth on entry to the instruction.
        depth: usize,
        /// How many operands the instruction pops.
        pops: usize,
    },
    /// Two paths reach the same instruction with different stack depths.
    InconsistentDepth {
        /// Depth recorded by the first path.
        first: usize,
        /// Depth arriving along the second path.
        second: usize,
    },
    /// `Return` executed with a stack depth other than one.
    BadReturnDepth {
        /// The observed depth.
        depth: usize,
    },
    /// Execution can run past the last instruction.
    FallsOffEnd,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed in `{}`", self.function)?;
        if let Some(at) = self.at {
            write!(f, " at {at}")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            VerifyErrorKind::EmptyCode => write!(f, "function has no code"),
            VerifyErrorKind::BranchOutOfRange { target, len } => {
                write!(f, "branch target {target} out of range (code length {len})")
            }
            VerifyErrorKind::LocalOutOfRange { local, locals } => {
                write!(f, "local {local} out of range ({locals} slots)")
            }
            VerifyErrorKind::BadCallee { callee } => write!(f, "unknown callee fn#{callee}"),
            VerifyErrorKind::BadString { string } => write!(f, "unknown string str#{string}"),
            VerifyErrorKind::StackUnderflow { depth, pops } => {
                write!(f, "stack underflow: depth {depth}, pops {pops}")
            }
            VerifyErrorKind::InconsistentDepth { first, second } => {
                write!(f, "inconsistent stack depth at join: {first} vs {second}")
            }
            VerifyErrorKind::BadReturnDepth { depth } => {
                write!(f, "return with stack depth {depth} (expected 1)")
            }
            VerifyErrorKind::FallsOffEnd => write!(f, "control can fall off the end of the code"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole program.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, checking functions in id order.
pub fn verify(program: &Program) -> Result<(), VerifyError> {
    verify_with_facts(program).map(|_| ())
}

/// Verify a whole program, returning the per-function facts the dataflow
/// pass proves along the way (stack bounds, reachability, call sites).
///
/// # Errors
///
/// Returns the first [`VerifyError`] found, checking functions in id order.
pub fn verify_with_facts(program: &Program) -> Result<ProgramFacts, VerifyError> {
    let mut functions = Vec::with_capacity(program.functions().len());
    for (i, f) in program.functions().iter().enumerate() {
        functions.push(verify_function_facts(program, FuncId(i as u32), f)?);
    }
    Ok(ProgramFacts { functions })
}

/// Verify a single function against its program context.
///
/// # Errors
///
/// Returns the first rule violation encountered during the dataflow pass.
pub fn verify_function(program: &Program, id: FuncId, f: &Function) -> Result<(), VerifyError> {
    verify_function_facts(program, id, f).map(|_| ())
}

/// Verify a single function, returning its [`FunctionFacts`].
///
/// # Errors
///
/// Returns the first rule violation encountered during the dataflow pass.
pub fn verify_function_facts(
    program: &Program,
    _id: FuncId,
    f: &Function,
) -> Result<FunctionFacts, VerifyError> {
    let fail = |at: Option<u32>, kind: VerifyErrorKind| VerifyError {
        function: f.name.clone(),
        at,
        kind,
    };
    let len = f.code.len() as u32;
    if len == 0 {
        return Err(fail(None, VerifyErrorKind::EmptyCode));
    }

    // Structural checks first so the dataflow can index freely.
    for (pc, instr) in f.code.iter().enumerate() {
        let pc32 = pc as u32;
        if let Some(target) = instr.branch_target() {
            if target >= len {
                return Err(fail(
                    Some(pc32),
                    VerifyErrorKind::BranchOutOfRange { target, len },
                ));
            }
        }
        match instr {
            Instr::Load(n) | Instr::Store(n) if *n >= f.locals => {
                return Err(fail(
                    Some(pc32),
                    VerifyErrorKind::LocalOutOfRange {
                        local: *n,
                        locals: f.locals,
                    },
                ));
            }
            // Fused forms touching two locals: report the first offender.
            Instr::LoadLoad(a, b)
            | Instr::StoreLoad(a, b)
            | Instr::LoadLoadBin(_, a, b)
            | Instr::LoadLoadCmpBr(_, a, b, _, _)
            | Instr::ConstBitStoreLoad(_, _, a, b)
                if *a.max(b) >= f.locals =>
            {
                return Err(fail(
                    Some(pc32),
                    VerifyErrorKind::LocalOutOfRange {
                        local: if *a >= f.locals { *a } else { *b },
                        locals: f.locals,
                    },
                ));
            }
            Instr::LoadConst(n, _)
            | Instr::StoreJump(n, _)
            | Instr::IBinStore(_, n)
            | Instr::BinStore(_, n)
            | Instr::BitStore(_, n)
            | Instr::LoadIBin(_, n)
            | Instr::LoadBin(_, n)
            | Instr::LoadALoad(n)
            | Instr::LoadConstIBin(_, n, _)
            | Instr::ConstIBinStoreJump(_, _, n, _)
                if *n >= f.locals =>
            {
                return Err(fail(
                    Some(pc32),
                    VerifyErrorKind::LocalOutOfRange {
                        local: *n,
                        locals: f.locals,
                    },
                ));
            }
            Instr::Call(callee) if callee.index() >= program.functions().len() => {
                return Err(fail(
                    Some(pc32),
                    VerifyErrorKind::BadCallee { callee: callee.0 },
                ));
            }
            Instr::Publish(s) if s.index() >= program.strings().len() => {
                return Err(fail(Some(pc32), VerifyErrorKind::BadString { string: s.0 }));
            }
            _ => {}
        }
    }

    // Depth dataflow: worklist of (pc, depth).
    let mut depth_at: Vec<Option<usize>> = vec![None; f.code.len()];
    let mut work: Vec<(u32, usize)> = vec![(0, 0)];
    let mut max_stack = 0usize;
    let mut calls: Vec<(u32, FuncId)> = Vec::new();
    let arity_of = |id: FuncId| program.function(id).arity as usize;
    while let Some((pc, depth)) = work.pop() {
        match depth_at[pc as usize] {
            Some(seen) if seen == depth => continue,
            Some(seen) => {
                return Err(fail(
                    Some(pc),
                    VerifyErrorKind::InconsistentDepth {
                        first: seen,
                        second: depth,
                    },
                ));
            }
            None => depth_at[pc as usize] = Some(depth),
        }
        let instr = &f.code[pc as usize];
        if let Instr::Call(callee) = instr {
            calls.push((pc, *callee));
        }
        let (pops, pushes) = instr.stack_effect(arity_of);
        if depth < pops {
            return Err(fail(
                Some(pc),
                VerifyErrorKind::StackUnderflow { depth, pops },
            ));
        }
        let next = depth - pops + pushes;
        // The stack's momentary peak is the depth after the pushes of the
        // deepest-entered instruction; tracking `next` alongside the entry
        // depth makes the bound cover mid-instruction growth.
        max_stack = max_stack.max(depth).max(next);
        if matches!(instr, Instr::Return) {
            // `Return` pops its value; the stack must then be empty so the
            // frame can be discarded deterministically.
            if depth != 1 {
                return Err(fail(Some(pc), VerifyErrorKind::BadReturnDepth { depth }));
            }
            continue;
        }
        if let Some(target) = instr.branch_target() {
            work.push((target, next));
        }
        if !instr.is_terminator() {
            if pc + 1 >= len {
                return Err(fail(Some(pc), VerifyErrorKind::FallsOffEnd));
            }
            work.push((pc + 1, next));
        }
    }
    calls.sort_unstable_by_key(|&(pc, _)| pc);
    Ok(FunctionFacts {
        max_stack,
        reachable: depth_at.iter().map(Option::is_some).collect(),
        calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;

    fn check(src: &str) -> Result<(), VerifyError> {
        verify(&parse(src).unwrap())
    }

    #[test]
    fn accepts_well_formed_program() {
        check(
            "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 5
  icmpge
  jumpif end
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}",
        )
        .unwrap();
    }

    #[test]
    fn rejects_underflow() {
        let e = check("entry func main/0 {\n  iadd\n  return\n}").unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::StackUnderflow { .. }));
    }

    #[test]
    fn rejects_fall_off_end() {
        let e = check("entry func main/0 {\n  const 1\n  pop\n}").unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::FallsOffEnd));
    }

    #[test]
    fn rejects_bad_local() {
        let e = check("entry func main/0 locals=1 {\n  load 3\n  return\n}").unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::LocalOutOfRange {
                local: 3,
                locals: 1
            }
        ));
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // One path pushes 2 values before the join, the other pushes 1.
        let e = check(
            "entry func main/0 {
  const 1
  jumpif two
  const 7
  jump join
two:
  const 7
  const 8
join:
  return
}",
        )
        .unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::InconsistentDepth { .. }));
    }

    #[test]
    fn rejects_return_with_extra_values() {
        let e = check("entry func main/0 {\n  const 1\n  const 2\n  return\n}").unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::BadReturnDepth { depth: 2 }
        ));
    }

    #[test]
    fn rejects_empty_function() {
        let e = check("entry func main/0 {\n  null\n  return\n}\nfunc f/0 {\n}").unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::EmptyCode));
    }

    #[test]
    fn branch_out_of_range_detected_without_assembler() {
        use crate::program::{Function, Program};
        let p = Program::from_parts(
            vec![Function {
                name: "main".into(),
                arity: 0,
                locals: 0,
                code: vec![Instr::Jump(9), Instr::Null, Instr::Return],
            }],
            vec![],
            FuncId(0),
        );
        let e = verify(&p).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::BranchOutOfRange { target: 9, len: 3 }
        ));
    }

    #[test]
    fn facts_report_stack_bound_reachability_and_calls() {
        let p = parse(
            "entry func main/0 {
  const 1
  const 2
  call add2
  print
  null
  return
}
func add2/2 {
  load 0
  load 1
  iadd
  return
}",
        )
        .unwrap();
        let facts = verify_with_facts(&p).unwrap();
        // main peaks at the two call arguments on the stack.
        assert_eq!(facts.functions[0].max_stack, 2);
        assert_eq!(facts.functions[0].calls, vec![(2, FuncId(1))]);
        assert!(facts.functions[0].reachable.iter().all(|&r| r));
        // add2 peaks at its two reloaded locals.
        assert_eq!(facts.functions[1].max_stack, 2);
        assert!(facts.functions[1].calls.is_empty());
    }

    #[test]
    fn facts_exclude_unreachable_calls() {
        let p = parse(
            "entry func main/0 {
  null
  return
  const 1
  call f
  return
}
func f/1 {
  load 0
  return
}",
        )
        .unwrap();
        let facts = verify_with_facts(&p).unwrap();
        assert!(
            facts.functions[0].calls.is_empty(),
            "dead call site must not appear"
        );
        assert_eq!(
            facts.functions[0].reachable,
            vec![true, true, false, false, false]
        );
    }

    #[test]
    fn call_arity_participates_in_depth() {
        // Calling a 2-ary function with only one value must underflow.
        let e = check(
            "entry func main/0 {
  const 1
  call add2
  return
}
func add2/2 {
  load 0
  load 1
  iadd
  return
}",
        )
        .unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::StackUnderflow { .. }));
    }
}
