//! Whole-program static analysis over verified bytecode.
//!
//! Composes the verifier's per-function facts ([`crate::verify`]) and the
//! CFG/dominator/natural-loop machinery ([`crate::cfg`]) into
//! whole-program artifacts:
//!
//! - [`CallGraph`] — interprocedural call edges with SCC-based recursion
//!   detection, entry-reachability (dead-function discovery) and
//!   longest-chain bounds.
//! - [`StaticProfile`] — per-function shape summaries: instruction-mix
//!   histogram over [`OpClass`] buckets, loop-nesting depth from the
//!   dominator machinery, verifier-derived operand-stack and locals
//!   bounds, and loop-weighted static cost estimates built on the same
//!   [`Instr::base_cost`] tables the interpreter folds.
//! - [`Diagnostic`] — findings a linter can gate on: unreachable code,
//!   constant branches, trivially-infinite loops, dead functions, and
//!   unbounded (recursive) call depth.
//! - [`FrameBounds`] — the sound whole-program operand-stack/locals
//!   bound the VM uses to pre-size its frame arena.
//!
//! # Soundness contract
//!
//! Every bound here over-approximates what any execution of the analyzed
//! program can do: observed operand-stack depths never exceed
//! [`StaticProfile::max_stack`], observed call depth never exceeds
//! [`CallGraph::call_depth_bound`] (when bounded), dead functions are
//! never invoked, and the frame arena never outgrows
//! [`FrameBounds::arena_slots`] (when bounded). The workspace-level
//! `tests/analysis_soundness.rs` asserts all four against real runs for
//! every Table I workload at every optimization level.

use std::fmt;

use crate::cfg::Cfg;
use crate::instr::Instr;
use crate::program::{FuncId, Program};
use crate::verify::{self, ProgramFacts, VerifyError};

/// Assumed trip count per loop-nesting level in the loop-weighted static
/// cost estimate — the classic static-profile heuristic ("every loop runs
/// about ten times").
pub const LOOP_WEIGHT: u64 = 10;

/// Loop-nesting levels beyond this depth stop increasing the weight, so
/// the weighted cost cannot overflow on pathological nesting.
pub const LOOP_WEIGHT_CAP: u32 = 5;

/// Coarse instruction classes for the static instruction-mix histogram.
///
/// The buckets mirror the cost-model structure of [`Instr::base_cost`]:
/// generic (polymorphic) operations are separated from their quickened
/// typed variants because their ratio is exactly what the optimizer's
/// quickening pass changes — a bytecode-shape feature a cold-start
/// predictor can use before any run has executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Constants and `null`.
    Const,
    /// Local loads and stores.
    Local,
    /// `dup`/`pop`/`swap`/`nop`.
    Stack,
    /// Generic (polymorphic) arithmetic.
    GenericArith,
    /// Specialized integer arithmetic.
    IntArith,
    /// Specialized float arithmetic.
    FloatArith,
    /// Shifts and bitwise logic.
    Bitwise,
    /// Generic comparisons.
    GenericCmp,
    /// Specialized (int or float) comparisons.
    TypedCmp,
    /// `tofloat`/`toint` conversions.
    Convert,
    /// Jumps, conditional or not.
    Branch,
    /// Function calls.
    Call,
    /// Returns.
    Return,
    /// Array allocation and access.
    Array,
    /// Math intrinsics.
    Math,
    /// Host interface: `print`, `publish`, `done`.
    Host,
    /// Fused local/constant traffic (`loadload`, `loadconst`,
    /// `storeload`).
    FusedData,
    /// Fused constant-operand arithmetic, bitwise and compare forms.
    FusedArith,
    /// Fused branch forms (`storejump` and the compare-and-branch family).
    FusedBranch,
}

impl OpClass {
    /// All classes, in histogram order.
    pub const ALL: [OpClass; 19] = [
        OpClass::Const,
        OpClass::Local,
        OpClass::Stack,
        OpClass::GenericArith,
        OpClass::IntArith,
        OpClass::FloatArith,
        OpClass::Bitwise,
        OpClass::GenericCmp,
        OpClass::TypedCmp,
        OpClass::Convert,
        OpClass::Branch,
        OpClass::Call,
        OpClass::Return,
        OpClass::Array,
        OpClass::Math,
        OpClass::Host,
        OpClass::FusedData,
        OpClass::FusedArith,
        OpClass::FusedBranch,
    ];

    /// The number of classes (histogram width).
    pub const COUNT: usize = OpClass::ALL.len();

    /// Classify one instruction.
    pub fn of(instr: &Instr) -> OpClass {
        match instr {
            Instr::Const(_) | Instr::FConst(_) | Instr::Null => OpClass::Const,
            Instr::Load(_) | Instr::Store(_) => OpClass::Local,
            Instr::Dup | Instr::Pop | Instr::Swap | Instr::Nop => OpClass::Stack,
            Instr::Add | Instr::Sub | Instr::Mul | Instr::Div | Instr::Rem | Instr::Neg => {
                OpClass::GenericArith
            }
            Instr::IAdd | Instr::ISub | Instr::IMul | Instr::IDiv | Instr::IRem | Instr::INeg => {
                OpClass::IntArith
            }
            Instr::FAdd | Instr::FSub | Instr::FMul | Instr::FDiv | Instr::FNeg => {
                OpClass::FloatArith
            }
            Instr::Shl | Instr::Shr | Instr::BitAnd | Instr::BitOr | Instr::BitXor => {
                OpClass::Bitwise
            }
            Instr::CmpEq
            | Instr::CmpNe
            | Instr::CmpLt
            | Instr::CmpLe
            | Instr::CmpGt
            | Instr::CmpGe => OpClass::GenericCmp,
            Instr::ICmpEq
            | Instr::ICmpNe
            | Instr::ICmpLt
            | Instr::ICmpLe
            | Instr::ICmpGt
            | Instr::ICmpGe
            | Instr::FCmpEq
            | Instr::FCmpNe
            | Instr::FCmpLt
            | Instr::FCmpLe
            | Instr::FCmpGt
            | Instr::FCmpGe => OpClass::TypedCmp,
            Instr::ToFloat | Instr::ToInt => OpClass::Convert,
            Instr::Jump(_) | Instr::JumpIf(_) | Instr::JumpIfNot(_) => OpClass::Branch,
            Instr::Call(_) => OpClass::Call,
            Instr::Return => OpClass::Return,
            Instr::NewArray | Instr::ALoad | Instr::AStore | Instr::ALen => OpClass::Array,
            Instr::Math(_) => OpClass::Math,
            Instr::Print | Instr::Publish(_) | Instr::Done => OpClass::Host,
            Instr::LoadLoad(_, _)
            | Instr::LoadConst(_, _)
            | Instr::StoreLoad(_, _)
            | Instr::LoadALoad(_) => OpClass::FusedData,
            Instr::ConstIBin(_, _)
            | Instr::ConstBin(_, _)
            | Instr::ConstBit(_, _)
            | Instr::ConstICmp(_, _)
            | Instr::IBinStore(_, _)
            | Instr::BinStore(_, _)
            | Instr::BitStore(_, _)
            | Instr::LoadIBin(_, _)
            | Instr::LoadBin(_, _)
            | Instr::LoadLoadBin(_, _, _)
            | Instr::LoadConstIBin(_, _, _)
            | Instr::ConstBitStoreLoad(_, _, _, _) => OpClass::FusedArith,
            Instr::StoreJump(_, _)
            | Instr::ICmpBr(_, _, _)
            | Instr::CmpBr(_, _, _)
            | Instr::ConstICmpBr(_, _, _, _)
            | Instr::LoadLoadCmpBr(_, _, _, _, _)
            | Instr::ConstIBinStoreJump(_, _, _, _) => OpClass::FusedBranch,
        }
    }

    /// Stable lowercase name for reports and feature vectors.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Const => "const",
            OpClass::Local => "local",
            OpClass::Stack => "stack",
            OpClass::GenericArith => "generic_arith",
            OpClass::IntArith => "int_arith",
            OpClass::FloatArith => "float_arith",
            OpClass::Bitwise => "bitwise",
            OpClass::GenericCmp => "generic_cmp",
            OpClass::TypedCmp => "typed_cmp",
            OpClass::Convert => "convert",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
            OpClass::Return => "return",
            OpClass::Array => "array",
            OpClass::Math => "math",
            OpClass::Host => "host",
            OpClass::FusedData => "fused_data",
            OpClass::FusedArith => "fused_arith",
            OpClass::FusedBranch => "fused_branch",
        }
    }

    /// The class's position in [`OpClass::ALL`] (histogram index).
    pub fn index(self) -> usize {
        OpClass::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every class is listed")
    }
}

/// The interprocedural call graph of a verified program, built from the
/// verifier's *reachable* call sites — dead code cannot keep a callee
/// alive.
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<Vec<FuncId>>,
    callers: Vec<Vec<FuncId>>,
    live: Vec<bool>,
    recursive: Vec<bool>,
    entry: FuncId,
}

impl CallGraph {
    /// Build the call graph from verifier facts.
    pub fn build(program: &Program, facts: &ProgramFacts) -> CallGraph {
        let n = program.functions().len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        for (i, f) in facts.functions.iter().enumerate() {
            let mut targets: Vec<FuncId> = f.calls.iter().map(|&(_, callee)| callee).collect();
            targets.sort_unstable();
            targets.dedup();
            for &t in &targets {
                callers[t.index()].push(FuncId(i as u32));
            }
            callees[i] = targets;
        }
        // Liveness: flood from the entry function.
        let entry = program.entry();
        let mut live = vec![false; n];
        let mut work = vec![entry];
        while let Some(f) = work.pop() {
            if std::mem::replace(&mut live[f.index()], true) {
                continue;
            }
            work.extend(callees[f.index()].iter().copied());
        }
        // Recursion: a function is recursive iff it sits on a call cycle,
        // i.e. its SCC has more than one member or it calls itself.
        let mut recursive = vec![false; n];
        for scc in sccs(&callees) {
            let cyclic = scc.len() > 1 || callees[scc[0].index()].contains(&scc[0]);
            if cyclic {
                for f in scc {
                    recursive[f.index()] = true;
                }
            }
        }
        CallGraph {
            callees,
            callers,
            live,
            recursive,
            entry,
        }
    }

    /// Distinct functions `f` calls from reachable code.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Distinct functions calling `f` from reachable code.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Whether `f` is reachable from the entry through calls.
    pub fn is_live(&self, f: FuncId) -> bool {
        self.live[f.index()]
    }

    /// Whether `f` sits on a call cycle (direct or mutual recursion).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.recursive[f.index()]
    }

    /// Functions unreachable from the entry, in id order. A VM executing
    /// this program can never invoke them (asserted dynamically in the
    /// soundness suite).
    pub fn dead_functions(&self) -> Vec<FuncId> {
        (0..self.live.len())
            .filter(|&i| !self.live[i])
            .map(|i| FuncId(i as u32))
            .collect()
    }

    /// Whether any recursive function is reachable from the entry.
    pub fn has_live_recursion(&self) -> bool {
        self.recursive.iter().zip(&self.live).any(|(&r, &l)| r && l)
    }

    /// Maximum call-stack depth (in frames, entry frame included) any
    /// execution can reach, or `None` when recursion reachable from the
    /// entry makes the depth statically unbounded.
    pub fn call_depth_bound(&self) -> Option<usize> {
        self.longest_chain(|_| 1)
    }

    /// Longest call chain from the entry where each function `f`
    /// contributes `weight(f)`, or `None` when live recursion makes the
    /// chain unbounded. With `weight = |_| 1` this is the frame-depth
    /// bound; with per-function frame sizes it bounds the arena.
    pub fn longest_chain(&self, weight: impl Fn(FuncId) -> usize) -> Option<usize> {
        if self.has_live_recursion() {
            return None;
        }
        // Memoized longest path over the acyclic live subgraph, iterative
        // so deep chains cannot overflow the host stack.
        let n = self.callees.len();
        let mut memo: Vec<Option<usize>> = vec![None; n];
        let mut stack: Vec<(usize, bool)> = vec![(self.entry.index(), false)];
        while let Some((f, expanded)) = stack.pop() {
            if memo[f].is_some() {
                continue;
            }
            if expanded {
                let deepest_callee = self.callees[f]
                    .iter()
                    .map(|c| memo[c.index()].expect("callees resolved first"))
                    .max()
                    .unwrap_or(0);
                memo[f] = Some(weight(FuncId(f as u32)) + deepest_callee);
            } else {
                stack.push((f, true));
                for c in &self.callees[f] {
                    if memo[c.index()].is_none() {
                        stack.push((c.index(), false));
                    }
                }
            }
        }
        memo[self.entry.index()]
    }
}

/// Strongly connected components of the call graph (Tarjan, iterative).
/// Components are returned in reverse-topological order.
fn sccs(callees: &[Vec<FuncId>]) -> Vec<Vec<FuncId>> {
    let n = callees.len();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut result: Vec<Vec<FuncId>> = Vec::new();
    // Explicit DFS frames: (node, next-callee cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            if *cursor == 0 {
                index[v] = next_index;
                lowlink[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(w) = callees[v].get(*cursor).map(|c| c.index()) {
                *cursor += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(FuncId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    result.push(component);
                }
            }
        }
    }
    result
}

/// The static shape profile of one function.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticProfile {
    /// The profiled function.
    pub id: FuncId,
    /// Its name (for reports).
    pub name: String,
    /// Instruction count.
    pub code_len: usize,
    /// Declared local slots (arguments included).
    pub locals: u16,
    /// Verifier-proven maximum operand-stack depth.
    pub max_stack: usize,
    /// Instruction-mix histogram, indexed by [`OpClass::index`].
    pub mix: [u32; OpClass::COUNT],
    /// Number of natural loops.
    pub loops: usize,
    /// Maximum loop-nesting depth (0 for loop-free code).
    pub loop_depth: usize,
    /// Plain static cost: the sum of [`Instr::base_cost`] over the code.
    pub static_cost: u64,
    /// Loop-weighted static cost: each instruction's base cost scaled by
    /// [`LOOP_WEIGHT`]^nesting-depth (capped at [`LOOP_WEIGHT_CAP`]) —
    /// an execution-frequency estimate with no profile data.
    pub weighted_cost: u64,
}

impl StaticProfile {
    /// Fraction of instructions in `class` (0 for empty code).
    pub fn mix_fraction(&self, class: OpClass) -> f64 {
        if self.code_len == 0 {
            return 0.0;
        }
        f64::from(self.mix[class.index()]) / self.code_len as f64
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: expected in unoptimized code or inherent to the
    /// program (e.g. recursion).
    Note,
    /// Suspicious shape the optimizer is expected to remove; gates a lint
    /// of optimized output.
    Warn,
    /// Almost certainly a bug in the program or a pass; always gates.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warn => write!(f, "warn"),
            Severity::Deny => write!(f, "deny"),
        }
    }
}

/// What a diagnostic found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagKind {
    /// Instructions `[start, end)` can never execute.
    UnreachableCode {
        /// First dead offset.
        start: u32,
        /// One past the last dead offset.
        end: u32,
    },
    /// A conditional branch whose condition is a constant pushed
    /// immediately before it.
    ConstantBranch {
        /// Whether the branch is always taken.
        taken: bool,
    },
    /// A natural loop with no exit edge: once entered, control can never
    /// leave the loop body.
    InfiniteLoop,
    /// The function can never be invoked from the entry.
    DeadFunction,
    /// Recursion reachable from the entry makes the call depth (and the
    /// frame arena) statically unbounded.
    UnboundedCallDepth,
}

/// One finding of the diagnostics pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The function the finding is in.
    pub function: String,
    /// Instruction offset of the finding, when it has one.
    pub at: Option<u32>,
    /// How seriously a linter should take it.
    pub severity: Severity,
    /// What was found.
    pub kind: DiagKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] `{}`", self.severity, self.function)?;
        if let Some(at) = self.at {
            write!(f, " at {at}")?;
        }
        write!(f, ": ")?;
        match &self.kind {
            DiagKind::UnreachableCode { start, end } => {
                write!(f, "instructions {start}..{end} are unreachable")
            }
            DiagKind::ConstantBranch { taken } => write!(
                f,
                "branch condition is constant (always {})",
                if *taken { "taken" } else { "fall-through" }
            ),
            DiagKind::InfiniteLoop => write!(f, "loop has no exit edge"),
            DiagKind::DeadFunction => write!(f, "function is never called from the entry"),
            DiagKind::UnboundedCallDepth => {
                write!(f, "recursion makes the static call depth unbounded")
            }
        }
    }
}

/// The sound whole-program frame bounds derived from verifier facts and
/// the call graph — what the VM pre-sizes its frame arena from. `None`
/// means recursion makes the quantity statically unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameBounds {
    /// Maximum frames on the call stack, entry included.
    pub call_depth: Option<usize>,
    /// Maximum arena slots (sum of locals + operand stack over the
    /// deepest call chain).
    pub arena_slots: Option<usize>,
}

/// Compute [`FrameBounds`] from verifier facts without building CFGs —
/// cheap enough for every `Vm::new`.
pub fn frame_bounds(program: &Program, facts: &ProgramFacts) -> FrameBounds {
    let graph = CallGraph::build(program, facts);
    let slots =
        |f: FuncId| program.function(f).locals as usize + facts.functions[f.index()].max_stack;
    FrameBounds {
        call_depth: graph.call_depth_bound(),
        arena_slots: graph.longest_chain(slots),
    }
}

/// Everything the static analysis knows about one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    /// Per-function shape profiles, indexed by [`FuncId::index`].
    pub profiles: Vec<StaticProfile>,
    /// The interprocedural call graph.
    pub call_graph: CallGraph,
    /// All findings, grouped by function in id order.
    pub diagnostics: Vec<Diagnostic>,
    /// Whole-program frame bounds.
    pub bounds: FrameBounds,
}

impl ProgramAnalysis {
    /// Findings at or above `severity`.
    pub fn findings(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity >= severity)
    }

    /// Total loop-weighted static cost over live functions — the
    /// whole-program cold-start cost estimate.
    pub fn live_weighted_cost(&self) -> u64 {
        self.profiles
            .iter()
            .filter(|p| self.call_graph.is_live(p.id))
            .fold(0u64, |acc, p| acc.saturating_add(p.weighted_cost))
    }
}

/// Analyze a whole program: verify it, then build profiles, the call
/// graph, frame bounds and diagnostics.
///
/// # Errors
///
/// Returns the verifier's error when the program is not verifiable —
/// analysis facts are only meaningful for verified code.
pub fn analyze(program: &Program) -> Result<ProgramAnalysis, VerifyError> {
    let facts = verify::verify_with_facts(program)?;
    let call_graph = CallGraph::build(program, &facts);
    let bounds = FrameBounds {
        call_depth: call_graph.call_depth_bound(),
        arena_slots: call_graph.longest_chain(|f| {
            program.function(f).locals as usize + facts.functions[f.index()].max_stack
        }),
    };
    let mut profiles = Vec::with_capacity(program.functions().len());
    let mut diagnostics = Vec::new();
    for (i, f) in program.functions().iter().enumerate() {
        let id = FuncId(i as u32);
        let ffacts = &facts.functions[i];
        let cfg = Cfg::build(f);
        let depths = cfg.loop_depths();
        let loops = cfg.natural_loops();

        // --- profile ---
        let mut mix = [0u32; OpClass::COUNT];
        let mut static_cost = 0u64;
        let mut weighted_cost = 0u64;
        for (pc, instr) in f.code.iter().enumerate() {
            mix[OpClass::of(instr).index()] += 1;
            let base = instr.base_cost();
            static_cost = static_cost.saturating_add(base);
            let depth = depths[cfg.block_of(pc as u32)].min(LOOP_WEIGHT_CAP as usize);
            let weight = LOOP_WEIGHT.saturating_pow(depth as u32);
            weighted_cost = weighted_cost.saturating_add(base.saturating_mul(weight));
        }
        profiles.push(StaticProfile {
            id,
            name: f.name.clone(),
            code_len: f.code.len(),
            locals: f.locals,
            max_stack: ffacts.max_stack,
            mix,
            loops: loops.len(),
            loop_depth: depths.iter().copied().max().unwrap_or(0),
            static_cost,
            weighted_cost,
        });

        // --- diagnostics ---
        if !call_graph.is_live(id) {
            diagnostics.push(Diagnostic {
                function: f.name.clone(),
                at: None,
                severity: Severity::Note,
                kind: DiagKind::DeadFunction,
            });
            // Shape findings inside dead functions would be noise: the
            // code never runs, and the entry-level finding covers it.
            continue;
        }
        // Unreachable instruction ranges, merged over adjacent offsets.
        let mut pc = 0usize;
        while pc < ffacts.reachable.len() {
            if ffacts.reachable[pc] {
                pc += 1;
                continue;
            }
            let start = pc;
            while pc < ffacts.reachable.len() && !ffacts.reachable[pc] {
                pc += 1;
            }
            diagnostics.push(Diagnostic {
                function: f.name.clone(),
                at: Some(start as u32),
                severity: Severity::Warn,
                kind: DiagKind::UnreachableCode {
                    start: start as u32,
                    end: pc as u32,
                },
            });
        }
        // Constant branches: a conditional jump fed by a constant pushed
        // immediately before it (reachable code only).
        for (pc, instr) in f.code.iter().enumerate() {
            if !matches!(instr, Instr::JumpIf(_) | Instr::JumpIfNot(_)) || !ffacts.reachable[pc] {
                continue;
            }
            let block = cfg.block_of(pc as u32);
            if pc as u32 == cfg.blocks()[block].start {
                continue;
            }
            let truthy = match f.code[pc - 1] {
                Instr::Const(v) => Some(v != 0),
                Instr::FConst(v) => Some(v != 0.0),
                Instr::Null => Some(false),
                _ => None,
            };
            if let Some(truthy) = truthy {
                let taken = match instr {
                    Instr::JumpIf(_) => truthy,
                    _ => !truthy,
                };
                diagnostics.push(Diagnostic {
                    function: f.name.clone(),
                    at: Some(pc as u32),
                    severity: Severity::Warn,
                    kind: DiagKind::ConstantBranch { taken },
                });
            }
        }
        // Trivially-infinite loops: no edge leaves the loop body.
        for l in &loops {
            let escapes = l
                .body
                .iter()
                .any(|&b| cfg.blocks()[b].succs.iter().any(|s| !l.body.contains(s)));
            if !escapes {
                diagnostics.push(Diagnostic {
                    function: f.name.clone(),
                    at: Some(cfg.blocks()[l.header].start),
                    severity: Severity::Deny,
                    kind: DiagKind::InfiniteLoop,
                });
            }
        }
    }
    if call_graph.has_live_recursion() {
        let entry_name = program.function(program.entry()).name.clone();
        diagnostics.push(Diagnostic {
            function: entry_name,
            at: None,
            severity: Severity::Note,
            kind: DiagKind::UnboundedCallDepth,
        });
    }
    Ok(ProgramAnalysis {
        profiles,
        call_graph,
        diagnostics,
        bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse;

    fn analyze_src(src: &str) -> ProgramAnalysis {
        analyze(&parse(src).unwrap()).unwrap()
    }

    const CALLS: &str = "entry func main/0 {
  const 1
  call a
  print
  null
  return
}
func a/1 {
  load 0
  call b
  return
}
func b/1 {
  load 0
  const 2
  imul
  return
}
func dead/0 {
  const 9
  return
}";

    #[test]
    fn call_graph_edges_liveness_and_depth() {
        let a = analyze_src(CALLS);
        let g = &a.call_graph;
        assert_eq!(g.callees(FuncId(0)), &[FuncId(1)]);
        assert_eq!(g.callees(FuncId(1)), &[FuncId(2)]);
        assert_eq!(g.callers(FuncId(2)), &[FuncId(1)]);
        assert_eq!(g.dead_functions(), vec![FuncId(3)]);
        assert!(!g.has_live_recursion());
        // main -> a -> b is three frames.
        assert_eq!(g.call_depth_bound(), Some(3));
        assert_eq!(a.bounds.call_depth, Some(3));
        assert!(a.bounds.arena_slots.is_some());
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::DeadFunction && d.function == "dead"));
    }

    #[test]
    fn recursion_is_detected_and_unbounds_the_depth() {
        let a = analyze_src(
            "entry func main/0 {
  const 5
  call fact
  print
  null
  return
}
func fact/1 {
  load 0
  const 1
  icmple
  jumpif base
  load 0
  load 0
  const 1
  isub
  call fact
  imul
  return
base:
  const 1
  return
}",
        );
        assert!(a.call_graph.is_recursive(FuncId(1)));
        assert!(!a.call_graph.is_recursive(FuncId(0)));
        assert!(a.call_graph.has_live_recursion());
        assert_eq!(a.bounds.call_depth, None);
        assert_eq!(a.bounds.arena_slots, None);
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.kind == DiagKind::UnboundedCallDepth));
    }

    #[test]
    fn mutual_recursion_is_detected() {
        let a = analyze_src(
            "entry func main/0 {
  const 3
  call even
  print
  null
  return
}
func even/1 {
  load 0
  jumpifnot yes
  load 0
  const 1
  isub
  call odd
  return
yes:
  const 1
  return
}
func odd/1 {
  load 0
  jumpifnot no
  load 0
  const 1
  isub
  call even
  return
no:
  const 0
  return
}",
        );
        assert!(a.call_graph.is_recursive(FuncId(1)));
        assert!(a.call_graph.is_recursive(FuncId(2)));
        assert_eq!(a.bounds.call_depth, None);
    }

    #[test]
    fn profiles_weight_loops_and_count_the_mix() {
        let a = analyze_src(
            "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 5
  icmpge
  jumpif end
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}",
        );
        let p = &a.profiles[0];
        assert_eq!(p.loops, 1);
        assert_eq!(p.loop_depth, 1);
        assert_eq!(p.max_stack, 2);
        assert!(
            p.weighted_cost > p.static_cost,
            "loop body must be weighted up: {} vs {}",
            p.weighted_cost,
            p.static_cost
        );
        assert_eq!(p.mix[OpClass::Branch.index()], 2);
        assert_eq!(p.mix[OpClass::IntArith.index()], 1);
        assert_eq!(p.mix.iter().map(|&c| c as usize).sum::<usize>(), p.code_len);
    }

    #[test]
    fn diagnostics_find_unreachable_code_and_constant_branches() {
        let a = analyze_src(
            "entry func main/0 {
  const 1
  jumpif target
  const 9
  print
target:
  null
  return
  const 7
  print
  null
  return
}",
        );
        assert!(a
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::ConstantBranch { taken: true })));
        assert!(a
            .diagnostics
            .iter()
            .any(|d| matches!(d.kind, DiagKind::UnreachableCode { start: 6, end: 10 })));
    }

    #[test]
    fn diagnostics_find_infinite_loops() {
        let a = analyze_src(
            "entry func main/0 {
top:
  const 1
  pop
  jump top
}",
        );
        let finding = a
            .diagnostics
            .iter()
            .find(|d| d.kind == DiagKind::InfiniteLoop)
            .expect("loop with no exit must be flagged");
        assert_eq!(finding.severity, Severity::Deny);
        assert!(a.findings(Severity::Deny).count() >= 1);
    }

    #[test]
    fn loops_with_exits_are_not_flagged_infinite() {
        let a = analyze_src(
            "entry func main/0 locals=1 {
top:
  load 0
  jumpifnot top
  null
  return
}",
        );
        assert!(a
            .diagnostics
            .iter()
            .all(|d| d.kind != DiagKind::InfiniteLoop));
    }

    #[test]
    fn frame_bounds_sum_locals_and_stacks_over_the_deepest_chain() {
        let p = parse(CALLS).unwrap();
        let facts = verify::verify_with_facts(&p).unwrap();
        let b = frame_bounds(&p, &facts);
        // main: 0 locals, stack peaks at 1 (arg) -> 1 slot.
        // a: 1 local, stack peaks at 1 -> 2 slots.
        // b: 1 local, stack peaks at 2 -> 3 slots.
        assert_eq!(b.arena_slots, Some(1 + 2 + 3));
        assert_eq!(b.call_depth, Some(3));
    }

    #[test]
    fn op_class_indexing_is_consistent() {
        for (i, class) in OpClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(!class.name().is_empty());
        }
    }
}
