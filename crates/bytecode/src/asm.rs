//! Textual assembler for the bytecode.
//!
//! The format mirrors the disassembler's output:
//!
//! ```text
//! entry func main/0 locals=2 {
//!   const 0
//!   store 0
//! top:
//!   load 0
//!   const 10
//!   icmpge
//!   jumpif end
//!   load 0
//!   call helper
//!   print
//!   load 0
//!   const 1
//!   iadd
//!   store 0
//!   jump top
//! end:
//!   null
//!   return
//! }
//!
//! func helper/1 locals=1 {
//!   load 0
//!   const 2
//!   imul
//!   return
//! }
//! ```
//!
//! - Exactly one function must be marked `entry` (arity 0).
//! - Labels are identifiers followed by `:` on their own line.
//! - `call` takes a function name; forward references are allowed.
//! - `publish` takes a double-quoted string.
//! - `#` starts a line comment.

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::instr::{Instr, MathFn};
use crate::program::{FuncId, Function, Program};
use crate::scalar::{BinOp, BitOp, CmpOp};
use crate::BytecodeError;

/// Parse assembly text into a verified-shape [`Program`].
///
/// # Errors
///
/// Returns [`BytecodeError::Parse`] on malformed text, and the builder's
/// errors for duplicate/missing functions or a bad entry.
pub fn parse(text: &str) -> Result<Program, BytecodeError> {
    let mut pb = ProgramBuilder::new();
    // Pass 1: declare all functions so calls can forward-reference.
    let mut headers = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if let Some(rest) = header_of(line) {
            let (name, arity, locals) = parse_header(rest, lineno + 1)?;
            let id = pb.declare(&name, arity);
            headers.push((id, locals, line.starts_with("entry ")));
        }
    }
    if headers.is_empty() {
        return Err(BytecodeError::Parse {
            line: 0,
            message: "no functions found".into(),
        });
    }
    let entry_count = headers.iter().filter(|(_, _, e)| *e).count();
    if entry_count != 1 {
        return Err(BytecodeError::Parse {
            line: 0,
            message: format!("expected exactly one `entry` function, found {entry_count}"),
        });
    }

    // Pass 2: parse bodies.
    let mut lines = text.lines().enumerate().peekable();
    let mut func_idx = 0usize;
    let mut entry = None;
    while let Some((lineno, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if header_of(line).is_none() {
            if !line.is_empty() {
                return Err(BytecodeError::Parse {
                    line: lineno + 1,
                    message: format!("expected function header, found `{line}`"),
                });
            }
            continue;
        }
        let (id, locals, is_entry) = headers[func_idx];
        func_idx += 1;
        if is_entry {
            entry = Some(id);
        }
        let (mut body, strings) = parse_body(&mut lines, &pb, id, locals)?;
        for (at, literal) in strings {
            body.code[at] = Instr::Publish(pb.intern(&literal));
        }
        pb.define(id, body)?;
    }
    let entry = entry.expect("checked above that exactly one entry exists");
    pb.build(entry)
}

fn strip_comment(line: &str) -> &str {
    // Don't cut inside string literals (publish "a#b").
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn header_of(line: &str) -> Option<&str> {
    line.strip_prefix("entry func ")
        .or_else(|| line.strip_prefix("func "))
}

fn parse_header(rest: &str, line: usize) -> Result<(String, u16, u16), BytecodeError> {
    let err = |message: String| BytecodeError::Parse { line, message };
    let rest = rest
        .strip_suffix('{')
        .ok_or_else(|| err("function header must end with `{`".into()))?
        .trim();
    let mut parts = rest.split_whitespace();
    let sig = parts
        .next()
        .ok_or_else(|| err("missing function signature".into()))?;
    let (name, arity) = sig
        .split_once('/')
        .ok_or_else(|| err(format!("signature `{sig}` must look like name/arity")))?;
    let arity: u16 = arity
        .parse()
        .map_err(|_| err(format!("bad arity in `{sig}`")))?;
    let mut locals = arity;
    if let Some(tok) = parts.next() {
        let v = tok
            .strip_prefix("locals=")
            .ok_or_else(|| err(format!("unexpected token `{tok}`")))?;
        locals = v
            .parse()
            .map_err(|_| err(format!("bad locals count `{v}`")))?;
        if locals < arity {
            return Err(err(format!("locals={locals} smaller than arity {arity}")));
        }
    }
    Ok((name.to_owned(), arity, locals))
}

/// Parses one function body. Returns the function plus the `publish`
/// string literals to intern, as `(code index, literal)` pairs — interning
/// needs `&mut ProgramBuilder`, which the caller holds.
fn parse_body<'a>(
    lines: &mut std::iter::Peekable<impl Iterator<Item = (usize, &'a str)>>,
    pb: &ProgramBuilder,
    id: FuncId,
    locals: u16,
) -> Result<(Function, Vec<(usize, String)>), BytecodeError> {
    let mut code: Vec<Instr> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut fixups: Vec<(usize, String, usize)> = Vec::new();
    let mut strings: Vec<(usize, String)> = Vec::new(); // (code index, literal)
    let mut closed = false;
    for (lineno, raw) in lines.by_ref() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "}" {
            closed = true;
            break;
        }
        if let Some(label) = line.strip_suffix(':') {
            let label = label.trim();
            if labels.insert(label.to_owned(), code.len() as u32).is_some() {
                return Err(BytecodeError::Parse {
                    line: lineno + 1,
                    message: format!("label `{label}` bound twice"),
                });
            }
            continue;
        }
        let instr = parse_instr(line, lineno + 1, pb, &mut fixups, &mut strings, code.len())?;
        code.push(instr);
    }
    if !closed {
        return Err(BytecodeError::Parse {
            line: 0,
            message: format!("function `{}` not closed with `}}`", pb.name_of(id)),
        });
    }
    for (at, label, lineno) in fixups {
        let target = *labels.get(&label).ok_or_else(|| BytecodeError::Parse {
            line: lineno,
            message: format!("unknown label `{label}`"),
        })?;
        code[at] = code[at].with_branch_target(target);
    }
    Ok((
        Function {
            name: pb.name_of(id),
            arity: pb.arity(id),
            locals,
            code,
        },
        strings,
    ))
}

fn parse_instr(
    line: &str,
    lineno: usize,
    pb: &ProgramBuilder,
    fixups: &mut Vec<(usize, String, usize)>,
    strings: &mut Vec<(usize, String)>,
    at: usize,
) -> Result<Instr, BytecodeError> {
    let err = |message: String| BytecodeError::Parse {
        line: lineno,
        message,
    };
    let (op, arg) = match line.split_once(char::is_whitespace) {
        Some((op, rest)) => (op, rest.trim()),
        None => (line, ""),
    };
    let need_u16 = |arg: &str| -> Result<u16, BytecodeError> {
        arg.parse()
            .map_err(|_| err(format!("`{op}` needs a small integer, got `{arg}`")))
    };
    let simple = |i: Instr| -> Result<Instr, BytecodeError> {
        if arg.is_empty() {
            Ok(i)
        } else {
            Err(err(format!("`{op}` takes no operand")))
        }
    };
    match op {
        "const" => arg
            .parse::<i64>()
            .map(Instr::Const)
            .map_err(|_| err(format!("bad integer `{arg}`"))),
        "fconst" => arg
            .parse::<f64>()
            .map(Instr::FConst)
            .map_err(|_| err(format!("bad float `{arg}`"))),
        "null" => simple(Instr::Null),
        "load" => Ok(Instr::Load(need_u16(arg)?)),
        "store" => Ok(Instr::Store(need_u16(arg)?)),
        "dup" => simple(Instr::Dup),
        "pop" => simple(Instr::Pop),
        "swap" => simple(Instr::Swap),
        "add" => simple(Instr::Add),
        "sub" => simple(Instr::Sub),
        "mul" => simple(Instr::Mul),
        "div" => simple(Instr::Div),
        "rem" => simple(Instr::Rem),
        "neg" => simple(Instr::Neg),
        "iadd" => simple(Instr::IAdd),
        "isub" => simple(Instr::ISub),
        "imul" => simple(Instr::IMul),
        "idiv" => simple(Instr::IDiv),
        "irem" => simple(Instr::IRem),
        "ineg" => simple(Instr::INeg),
        "fadd" => simple(Instr::FAdd),
        "fsub" => simple(Instr::FSub),
        "fmul" => simple(Instr::FMul),
        "fdiv" => simple(Instr::FDiv),
        "fneg" => simple(Instr::FNeg),
        "shl" => simple(Instr::Shl),
        "shr" => simple(Instr::Shr),
        "band" => simple(Instr::BitAnd),
        "bor" => simple(Instr::BitOr),
        "bxor" => simple(Instr::BitXor),
        "cmpeq" => simple(Instr::CmpEq),
        "cmpne" => simple(Instr::CmpNe),
        "cmplt" => simple(Instr::CmpLt),
        "cmple" => simple(Instr::CmpLe),
        "cmpgt" => simple(Instr::CmpGt),
        "cmpge" => simple(Instr::CmpGe),
        "icmpeq" => simple(Instr::ICmpEq),
        "icmpne" => simple(Instr::ICmpNe),
        "icmplt" => simple(Instr::ICmpLt),
        "icmple" => simple(Instr::ICmpLe),
        "icmpgt" => simple(Instr::ICmpGt),
        "icmpge" => simple(Instr::ICmpGe),
        "fcmpeq" => simple(Instr::FCmpEq),
        "fcmpne" => simple(Instr::FCmpNe),
        "fcmplt" => simple(Instr::FCmpLt),
        "fcmple" => simple(Instr::FCmpLe),
        "fcmpgt" => simple(Instr::FCmpGt),
        "fcmpge" => simple(Instr::FCmpGe),
        "tofloat" => simple(Instr::ToFloat),
        "toint" => simple(Instr::ToInt),
        "jump" | "jumpif" | "jumpifnot" => {
            if arg.is_empty() {
                return Err(err(format!("`{op}` needs a label")));
            }
            fixups.push((at, arg.to_owned(), lineno));
            Ok(match op {
                "jump" => Instr::Jump(u32::MAX),
                "jumpif" => Instr::JumpIf(u32::MAX),
                _ => Instr::JumpIfNot(u32::MAX),
            })
        }
        "call" => {
            let id = pb
                .find(arg)
                .ok_or_else(|| err(format!("unknown function `{arg}`")))?;
            Ok(Instr::Call(id))
        }
        "return" => simple(Instr::Return),
        "newarray" => simple(Instr::NewArray),
        "aload" => simple(Instr::ALoad),
        "astore" => simple(Instr::AStore),
        "alen" => simple(Instr::ALen),
        "math" => MathFn::from_mnemonic(arg)
            .map(Instr::Math)
            .ok_or_else(|| err(format!("unknown math intrinsic `{arg}`"))),
        "print" => simple(Instr::Print),
        "publish" => {
            let lit = arg
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err("`publish` needs a quoted string".into()))?;
            strings.push((at, lit.to_owned()));
            // Sentinel; `parse` interns the literal and patches the id.
            Ok(Instr::Publish(crate::program::StrId(u32::MAX)))
        }
        "done" => simple(Instr::Done),
        "nop" => simple(Instr::Nop),

        // Fused superinstructions, in the disassembler's syntax: branch
        // targets are labels, operators and the `if`/`ifnot` branch sense
        // are keywords.
        "loadload" | "storeload" => {
            let [a, b] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let (a, b) = (need_u16(a)?, need_u16(b)?);
            Ok(match op {
                "loadload" => Instr::LoadLoad(a, b),
                _ => Instr::StoreLoad(a, b),
            })
        }
        "loadconst" => {
            let [n, v] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            Ok(Instr::LoadConst(need_u16(n)?, need_i64(v, lineno)?))
        }
        "storejump" => {
            let [n, label] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            fixups.push((at, label.to_owned(), lineno));
            Ok(Instr::StoreJump(need_u16(n)?, u32::MAX))
        }
        "constibin" | "constbin" => {
            let [o, v] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BinOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let v = need_i64(v, lineno)?;
            Ok(match op {
                "constibin" => Instr::ConstIBin(o, v),
                _ => Instr::ConstBin(o, v),
            })
        }
        "constbit" => {
            let [o, v] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BitOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            Ok(Instr::ConstBit(o, need_i64(v, lineno)?))
        }
        "consticmp" => {
            let [o, v] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let o = CmpOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            Ok(Instr::ConstICmp(o, need_i64(v, lineno)?))
        }
        "icmpbr" | "cmpbr" => {
            let [o, when, label] = toks(arg, 3, op, lineno)?[..] else {
                unreachable!()
            };
            let o = CmpOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let when = need_when(when, lineno)?;
            fixups.push((at, label.to_owned(), lineno));
            Ok(match op {
                "icmpbr" => Instr::ICmpBr(o, u32::MAX, when),
                _ => Instr::CmpBr(o, u32::MAX, when),
            })
        }
        "consticmpbr" => {
            let [o, v, when, label] = toks(arg, 4, op, lineno)?[..] else {
                unreachable!()
            };
            let o = CmpOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let v = need_i64(v, lineno)?;
            let when = need_when(when, lineno)?;
            fixups.push((at, label.to_owned(), lineno));
            Ok(Instr::ConstICmpBr(o, v, u32::MAX, when))
        }
        "ibinstore" | "binstore" | "loadibin" | "loadbin" => {
            let [o, n] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BinOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let n = need_u16(n)?;
            Ok(match op {
                "ibinstore" => Instr::IBinStore(o, n),
                "binstore" => Instr::BinStore(o, n),
                "loadibin" => Instr::LoadIBin(o, n),
                _ => Instr::LoadBin(o, n),
            })
        }
        "bitstore" => {
            let [o, n] = toks(arg, 2, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BitOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            Ok(Instr::BitStore(o, need_u16(n)?))
        }
        "loadaload" => Ok(Instr::LoadALoad(need_u16(arg)?)),
        "loadloadbin" => {
            let [o, a, b] = toks(arg, 3, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BinOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            Ok(Instr::LoadLoadBin(o, need_u16(a)?, need_u16(b)?))
        }
        "loadconstibin" => {
            let [o, n, v] = toks(arg, 3, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BinOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            Ok(Instr::LoadConstIBin(o, need_u16(n)?, need_i64(v, lineno)?))
        }
        "loadloadcmpbr" => {
            let [o, when, a, b, label] = toks(arg, 5, op, lineno)?[..] else {
                unreachable!()
            };
            let o = CmpOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let when = need_when(when, lineno)?;
            let (a, b) = (need_u16(a)?, need_u16(b)?);
            fixups.push((at, label.to_owned(), lineno));
            Ok(Instr::LoadLoadCmpBr(o, a, b, u32::MAX, when))
        }
        "constbitstoreload" => {
            let [o, v, n, m] = toks(arg, 4, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BitOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let v = need_i64(v, lineno)?;
            Ok(Instr::ConstBitStoreLoad(o, v, need_u16(n)?, need_u16(m)?))
        }
        "constibinstorejump" => {
            let [o, v, n, label] = toks(arg, 4, op, lineno)?[..] else {
                unreachable!()
            };
            let o = BinOp::from_name(o).ok_or_else(|| err(format!("unknown operator `{o}`")))?;
            let v = need_i64(v, lineno)?;
            let n = need_u16(n)?;
            fixups.push((at, label.to_owned(), lineno));
            Ok(Instr::ConstIBinStoreJump(o, v, n, u32::MAX))
        }
        other => Err(err(format!("unknown instruction `{other}`"))),
    }
}

/// Split `arg` into exactly `n` whitespace-separated tokens.
fn toks<'a>(arg: &'a str, n: usize, op: &str, line: usize) -> Result<Vec<&'a str>, BytecodeError> {
    let v: Vec<&str> = arg.split_whitespace().collect();
    if v.len() == n {
        Ok(v)
    } else {
        Err(BytecodeError::Parse {
            line,
            message: format!("`{op}` needs {n} operands, got {}", v.len()),
        })
    }
}

fn need_i64(arg: &str, line: usize) -> Result<i64, BytecodeError> {
    arg.parse().map_err(|_| BytecodeError::Parse {
        line,
        message: format!("bad integer `{arg}`"),
    })
}

/// Parse the branch sense of the fused compare-and-branch forms.
fn need_when(tok: &str, line: usize) -> Result<bool, BytecodeError> {
    match tok {
        "if" => Ok(true),
        "ifnot" => Ok(false),
        other => Err(BytecodeError::Parse {
            line,
            message: format!("expected `if` or `ifnot`, got `{other}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    const LOOPY: &str = r#"
entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 10
  icmpge
  jumpif end
  load 0
  call double
  print
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}

func double/1 {
  load 0
  const 2
  imul
  return
}
"#;

    #[test]
    fn parses_a_loop() {
        let p = parse(LOOPY).unwrap();
        assert_eq!(p.functions().len(), 2);
        let main = p.function(p.entry());
        assert_eq!(main.name, "main");
        assert_eq!(main.code[5], Instr::JumpIf(14));
        assert_eq!(main.code[13], Instr::Jump(2));
        let double = p.function(p.find("double").unwrap());
        assert_eq!(double.arity, 1);
        assert_eq!(double.locals, 1);
    }

    #[test]
    fn roundtrips_through_disassembler() {
        let p = parse(LOOPY).unwrap();
        let text = disassemble(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "
# a program
entry func main/0 {
  null   # push null
  return
}
";
        let p = parse(src).unwrap();
        assert_eq!(p.function(p.entry()).code.len(), 2);
    }

    #[test]
    fn publish_interns_strings() {
        let src =
            "entry func main/0 {\n  const 42\n  publish \"nodes\"\n  done\n  null\n  return\n}\n";
        let p = parse(src).unwrap();
        let main = p.function(p.entry());
        match main.code[1] {
            Instr::Publish(s) => assert_eq!(p.string(s), "nodes"),
            ref other => panic!("expected publish, got {other:?}"),
        }
        // Round-trips through the disassembler too.
        let p2 = parse(&disassemble(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn fused_instructions_roundtrip() {
        let src = "
entry func main/0 locals=1 {
  const 0
  store 0
top:
  loadconst 0 10
  icmpbr ge if end
  loadload 0 0
  constibin mul 3
  constbit and 255
  consticmp lt 7
  pop
  constbin add 1
  storejump 0 top
end:
  load 0
  consticmpbr eq 0 ifnot other
  null
  return
other:
  null
  return
}
";
        let p = parse(src).unwrap();
        let main = p.function(p.entry());
        assert_eq!(main.code[2], Instr::LoadConst(0, 10));
        assert_eq!(
            main.code[3],
            Instr::ICmpBr(crate::scalar::CmpOp::Ge, 11, true)
        );
        assert_eq!(main.code[10], Instr::StoreJump(0, 2));
        assert_eq!(
            main.code[12],
            Instr::ConstICmpBr(crate::scalar::CmpOp::Eq, 0, 15, false)
        );
        let p2 = parse(&disassemble(&p)).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn error_on_unknown_instruction() {
        let src = "entry func main/0 {\n  frobnicate\n}\n";
        let e = parse(src).unwrap_err();
        assert!(matches!(e, BytecodeError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn error_on_unknown_label() {
        let src = "entry func main/0 {\n  jump nowhere\n}\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_on_missing_entry() {
        let src = "func main/0 {\n  null\n  return\n}\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_on_two_entries() {
        let src = "entry func a/0 {\n null\n return\n}\nentry func b/0 {\n null\n return\n}\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn error_on_locals_below_arity() {
        let src =
            "entry func main/0 {\n null\n return\n}\nfunc f/3 locals=1 {\n null\n return\n}\n";
        assert!(parse(src).is_err());
    }
}
