//! Property tests for the scalar arithmetic semantics shared by the
//! interpreter and the constant folder.

use proptest::prelude::*;

use evovm_bytecode::scalar::{self, BinOp, BitOp, CmpOp, Scalar};

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    prop_oneof![
        any::<i64>().prop_map(Scalar::Int),
        (-1.0e12..1.0e12f64).prop_map(Scalar::Float),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
    ]
}

proptest! {
    /// Two-int operations stay in the integer domain; anything involving
    /// a float lands in the float domain.
    #[test]
    fn domain_closure(a in arb_scalar(), b in arb_scalar(), op in arb_binop()) {
        if let Ok(r) = scalar::binop(op, a, b) {
            match (a, b) {
                (Scalar::Int(_), Scalar::Int(_)) => prop_assert!(r.is_int()),
                _ => prop_assert!(!r.is_int()),
            }
        }
    }

    /// Only integer division/remainder by zero traps.
    #[test]
    fn div_trap_iff_integer_zero_divisor(a in arb_scalar(), b in arb_scalar()) {
        for op in [BinOp::Div, BinOp::Rem] {
            let trapped = scalar::binop(op, a, b).is_err();
            let expected = matches!((a, b), (Scalar::Int(_), Scalar::Int(0)));
            prop_assert_eq!(trapped, expected);
        }
    }

    /// Addition commutes (integers wrap; floats commute exactly;
    /// NaN excluded by the generator's finite range).
    #[test]
    fn add_and_mul_commute(a in arb_scalar(), b in arb_scalar()) {
        for op in [BinOp::Add, BinOp::Mul] {
            prop_assert_eq!(scalar::binop(op, a, b), scalar::binop(op, b, a));
        }
    }

    /// Comparisons are consistent: exactly one of `<`, `==`, `>` holds
    /// for comparable (non-NaN) scalars, and `<=`/`>=`/`!=` derive.
    #[test]
    fn comparison_trichotomy(a in arb_scalar(), b in arb_scalar()) {
        let lt = scalar::cmp(CmpOp::Lt, a, b) == Scalar::Int(1);
        let eq = scalar::cmp(CmpOp::Eq, a, b) == Scalar::Int(1);
        let gt = scalar::cmp(CmpOp::Gt, a, b) == Scalar::Int(1);
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        let le = scalar::cmp(CmpOp::Le, a, b) == Scalar::Int(1);
        let ge = scalar::cmp(CmpOp::Ge, a, b) == Scalar::Int(1);
        let ne = scalar::cmp(CmpOp::Ne, a, b) == Scalar::Int(1);
        prop_assert_eq!(le, lt || eq);
        prop_assert_eq!(ge, gt || eq);
        prop_assert_eq!(ne, !eq);
    }

    /// Negation is involutive, except at `i64::MIN` which wraps onto
    /// itself (two's complement).
    #[test]
    fn neg_involutive(a in arb_scalar()) {
        prop_assert_eq!(scalar::neg(scalar::neg(a)), a);
    }

    /// `to_int ∘ to_float` is the identity on integers that fit in the
    /// f64 mantissa.
    #[test]
    fn int_float_roundtrip(v in -(1i64 << 52)..(1i64 << 52)) {
        let a = Scalar::Int(v);
        prop_assert_eq!(scalar::to_int(scalar::to_float(a)), a);
    }

    /// Bitwise ops trap exactly when a float is involved; shifts mask.
    #[test]
    fn bitops_trap_on_floats(a in arb_scalar(), b in arb_scalar()) {
        for op in [BitOp::Shl, BitOp::Shr, BitOp::And, BitOp::Or, BitOp::Xor] {
            let trapped = scalar::bitop(op, a, b).is_err();
            let expected = !a.is_int() || !b.is_int();
            prop_assert_eq!(trapped, expected);
        }
    }

    /// Shift counts are masked to 6 bits: `x << n == x << (n & 63)`.
    #[test]
    fn shift_masking(x in any::<i64>(), n in any::<i64>()) {
        prop_assert_eq!(
            scalar::bitop(BitOp::Shl, Scalar::Int(x), Scalar::Int(n)),
            scalar::bitop(BitOp::Shl, Scalar::Int(x), Scalar::Int(n & 63))
        );
    }

    /// min/max of two ints bracket their arguments.
    #[test]
    fn min_max_bracket(a in any::<i64>(), b in any::<i64>()) {
        use evovm_bytecode::MathFn;
        let lo = scalar::math2(MathFn::Min, Scalar::Int(a), Scalar::Int(b));
        let hi = scalar::math2(MathFn::Max, Scalar::Int(a), Scalar::Int(b));
        prop_assert_eq!(lo, Scalar::Int(a.min(b)));
        prop_assert_eq!(hi, Scalar::Int(a.max(b)));
    }
}
