//! Property tests for XICL: the translator is total over legal command
//! lines, the vector layout is input-independent, and defaults behave
//! like explicit values.

use proptest::prelude::*;

use evovm_xicl::extract::Registry;
use evovm_xicl::{spec, FeatureValue, Translator, Vfs};

const SPEC: &str = "
option {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option {name=-q; type=num; attr=VAL; default=50; has_arg=y}
option {name=-v:--verbose; type=bin; attr=VAL; default=0; has_arg=n}
option {name=-f; type=str; attr=VAL:LEN; default=plain; has_arg=y}
operand {position=1:$; type=file; attr=SIZE:LINES}
";

fn translator() -> Translator {
    Translator::new(
        spec::parse(SPEC).expect("valid"),
        Registry::with_predefined(),
    )
}

/// A legal command line: any subset of options in any order, then 1..3
/// file operands that exist in the VFS.
#[derive(Debug, Clone)]
struct LegalInput {
    args: Vec<String>,
    vfs: Vfs,
}

fn arb_legal_input() -> impl Strategy<Value = LegalInput> {
    (
        proptest::option::of(-1000i64..1000),
        proptest::option::of(0i64..100),
        proptest::bool::ANY,
        proptest::option::of("[a-z]{1,8}"),
        proptest::collection::vec((1usize..2000, "[a-z ]{0,40}"), 1..4),
        proptest::bool::ANY, // verbose alias choice
        proptest::bool::ANY, // options before or after operands
    )
        .prop_map(|(n, q, verbose, fmt, files, long_alias, options_first)| {
            let mut options: Vec<String> = Vec::new();
            if let Some(n) = n {
                options.extend(["-n".to_owned(), n.to_string()]);
            }
            if let Some(q) = q {
                options.extend(["-q".to_owned(), q.to_string()]);
            }
            if verbose {
                options.push(if long_alias { "--verbose" } else { "-v" }.to_owned());
            }
            if let Some(f) = fmt {
                options.extend(["-f".to_owned(), f]);
            }
            let mut vfs = Vfs::new();
            let mut operands = Vec::new();
            for (i, (lines, word)) in files.iter().enumerate() {
                let name = format!("file{i}.dat");
                vfs.write(name.clone(), format!("{word}\n").repeat(*lines));
                operands.push(name);
            }
            let args = if options_first {
                options.into_iter().chain(operands).collect()
            } else {
                operands.into_iter().chain(options).collect()
            };
            LegalInput { args, vfs }
        })
}

proptest! {
    /// Every legal command line translates successfully.
    #[test]
    fn translator_is_total_on_legal_inputs(input in arb_legal_input()) {
        let t = translator();
        let result = t.translate(&input.args, &input.vfs);
        prop_assert!(result.is_ok(), "failed on {:?}: {:?}", input.args, result.err());
    }

    /// The feature-vector layout never depends on the input.
    #[test]
    fn layout_is_fixed(a in arb_legal_input(), b in arb_legal_input()) {
        let t = translator();
        let (fa, _) = t.translate(&a.args, &a.vfs).expect("legal");
        let (fb, _) = t.translate(&b.args, &b.vfs).expect("legal");
        prop_assert_eq!(fa.names(), fb.names());
    }

    /// An absent option contributes exactly its default's features.
    #[test]
    fn defaults_equal_explicit_values(input in arb_legal_input()) {
        let t = translator();
        // Strip -n if present; then add it back explicitly as the default.
        let mut stripped: Vec<String> = Vec::new();
        let mut i = 0;
        while i < input.args.len() {
            if input.args[i] == "-n" {
                i += 2;
            } else {
                stripped.push(input.args[i].clone());
                i += 1;
            }
        }
        let mut explicit = vec!["-n".to_owned(), "1".to_owned()];
        explicit.extend(stripped.clone());
        let (fa, _) = t.translate(&stripped, &input.vfs).expect("legal");
        let (fb, _) = t.translate(&explicit, &input.vfs).expect("legal");
        prop_assert_eq!(fa, fb);
    }

    /// Numeric operand features aggregate by summation over files.
    #[test]
    fn operand_features_sum(input in arb_legal_input()) {
        let t = translator();
        let (fv, _) = t.translate(&input.args, &input.vfs).expect("legal");
        let total_size: f64 = input
            .vfs
            .paths()
            .filter(|p| input.args.iter().any(|a| a == p))
            .map(|p| input.vfs.size(p).unwrap_or(0) as f64)
            .sum();
        prop_assert_eq!(
            fv.get("operand0.SIZE").and_then(FeatureValue::as_num),
            Some(total_size)
        );
    }

    /// Work accounting is monotone in input size: scanning more bytes
    /// never reports fewer work units.
    #[test]
    fn stats_are_sane(input in arb_legal_input()) {
        let t = translator();
        let (_, stats) = t.translate(&input.args, &input.vfs).expect("legal");
        prop_assert!(stats.tokens_scanned as usize >= input.args.len());
        prop_assert!(stats.extractions >= 5); // 5 option attrs at minimum
    }
}
