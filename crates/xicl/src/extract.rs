//! Feature extractors and the extractor registry.
//!
//! This is the Rust analog of the paper's `XFMethod` interface and the
//! `xfMethodsMap` in the `XICLTranslator` class (Figure 3): every `attr`
//! name in a spec resolves through a [`Registry`] to a
//! [`FeatureExtractor`]. The predefined extractors (`VAL`, `SIZE`, `LEN`,
//! `LINES`, `WORDS`) are registered out of the box; programmers extend the
//! translator by registering their own (conventionally `m`-prefixed, like
//! the paper's `mNodes`/`mEdges`).
//!
//! # Example: a programmer-defined extractor
//!
//! ```
//! use evovm_xicl::extract::{ExtractCtx, FeatureExtractor, Registry};
//! use evovm_xicl::feature::FeatureValue;
//! use evovm_xicl::XiclError;
//!
//! /// Number of edges in a graph file (one edge per line after the header).
//! #[derive(Debug)]
//! struct MEdges;
//!
//! impl FeatureExtractor for MEdges {
//!     fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
//!         let lines = ctx
//!             .vfs
//!             .lines(raw)
//!             .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))?;
//!         Ok(FeatureValue::Num(lines.saturating_sub(1) as f64))
//!     }
//! }
//!
//! let mut registry = Registry::with_predefined();
//! registry.register("mEdges", MEdges);
//! assert!(registry.get("mEdges").is_some());
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::XiclError;
use crate::feature::FeatureValue;
use crate::spec::ComponentType;
use crate::vfs::Vfs;

/// Context handed to extractors.
#[derive(Debug, Clone, Copy)]
pub struct ExtractCtx<'a> {
    /// The virtual filesystem for FILE components.
    pub vfs: &'a Vfs,
    /// The declared type of the component being extracted.
    pub ty: ComponentType,
}

/// A feature-extraction method (the paper's `XFMethod`).
pub trait FeatureExtractor: fmt::Debug + Send + Sync {
    /// Compute the feature from the component's raw value.
    ///
    /// # Errors
    ///
    /// Implementations report bad values, missing files or their own
    /// failures as [`XiclError`].
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError>;

    /// Approximate work units of one extraction, for overhead accounting
    /// (defaults to the raw value's length).
    fn cost(&self, raw: &str, ctx: &ExtractCtx<'_>) -> u64 {
        let file_bytes = if ctx.ty == ComponentType::File {
            ctx.vfs.size(raw).unwrap_or(0)
        } else {
            0
        };
        raw.len() as u64 + file_bytes
    }
}

/// Maps attr names to extractor instances (the paper's `xfMethodsMap`).
#[derive(Debug, Clone, Default)]
pub struct Registry {
    methods: HashMap<String, Arc<dyn FeatureExtractor>>,
}

impl Registry {
    /// An empty registry (no predefined methods).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A registry with the predefined extractors: `VAL`, `SIZE`, `LEN`,
    /// `LINES`, `WORDS`.
    pub fn with_predefined() -> Registry {
        let mut r = Registry::new();
        r.register("VAL", Val);
        r.register("SIZE", Size);
        r.register("LEN", Len);
        r.register("LINES", Lines);
        r.register("WORDS", Words);
        r
    }

    /// Register (or replace) an extractor under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        extractor: impl FeatureExtractor + 'static,
    ) {
        self.methods.insert(name.into(), Arc::new(extractor));
    }

    /// Look up an extractor (the paper's `getMethod`).
    pub fn get(&self, name: &str) -> Option<&Arc<dyn FeatureExtractor>> {
        self.methods.get(name)
    }

    /// Registered method names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.methods.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// `VAL`: the component's value itself, converted per its declared type.
#[derive(Debug)]
struct Val;

impl FeatureExtractor for Val {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        match ctx.ty {
            ComponentType::Num => raw
                .trim()
                .parse::<f64>()
                .map(FeatureValue::Num)
                .map_err(|_| XiclError::BadValue {
                    component: "VAL".into(),
                    value: raw.to_owned(),
                    ty: "num".into(),
                }),
            ComponentType::Bin => match raw.trim() {
                "" | "0" | "n" | "no" | "false" | "off" => Ok(FeatureValue::Num(0.0)),
                "1" | "y" | "yes" | "true" | "on" => Ok(FeatureValue::Num(1.0)),
                other => Err(XiclError::BadValue {
                    component: "VAL".into(),
                    value: other.to_owned(),
                    ty: "bin".into(),
                }),
            },
            ComponentType::Str | ComponentType::File => Ok(FeatureValue::Cat(raw.to_owned())),
        }
    }

    fn cost(&self, raw: &str, _ctx: &ExtractCtx<'_>) -> u64 {
        raw.len() as u64
    }
}

/// `SIZE`: the file's size in bytes.
#[derive(Debug)]
struct Size;

impl FeatureExtractor for Size {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        ctx.vfs
            .size(raw)
            .map(|s| FeatureValue::Num(s as f64))
            .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))
    }

    fn cost(&self, raw: &str, _ctx: &ExtractCtx<'_>) -> u64 {
        // Stat-like: does not scan the contents.
        raw.len() as u64
    }
}

/// `LEN`: the string value's length.
#[derive(Debug)]
struct Len;

impl FeatureExtractor for Len {
    fn extract(&self, raw: &str, _ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        Ok(FeatureValue::Num(raw.chars().count() as f64))
    }
}

/// `LINES`: the file's line count.
#[derive(Debug)]
struct Lines;

impl FeatureExtractor for Lines {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        ctx.vfs
            .lines(raw)
            .map(|s| FeatureValue::Num(s as f64))
            .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))
    }
}

/// `WORDS`: the file's whitespace-separated word count.
#[derive(Debug)]
struct Words;

impl FeatureExtractor for Words {
    fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
        ctx.vfs
            .words(raw)
            .map(|s| FeatureValue::Num(s as f64))
            .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(vfs: &Vfs, ty: ComponentType) -> ExtractCtx<'_> {
        ExtractCtx { vfs, ty }
    }

    #[test]
    fn val_converts_by_type() {
        let vfs = Vfs::new();
        let r = Registry::with_predefined();
        let val = r.get("VAL").unwrap();
        assert_eq!(
            val.extract("3.5", &ctx(&vfs, ComponentType::Num)).unwrap(),
            FeatureValue::Num(3.5)
        );
        assert_eq!(
            val.extract("true", &ctx(&vfs, ComponentType::Bin)).unwrap(),
            FeatureValue::Num(1.0)
        );
        assert_eq!(
            val.extract("xml", &ctx(&vfs, ComponentType::Str)).unwrap(),
            FeatureValue::Cat("xml".into())
        );
        assert!(val.extract("abc", &ctx(&vfs, ComponentType::Num)).is_err());
    }

    #[test]
    fn file_extractors_use_the_vfs() {
        let mut vfs = Vfs::new();
        vfs.write("g.txt", "a b\nc\n");
        let r = Registry::with_predefined();
        let c = ctx(&vfs, ComponentType::File);
        assert_eq!(
            r.get("SIZE").unwrap().extract("g.txt", &c).unwrap(),
            FeatureValue::Num(6.0)
        );
        assert_eq!(
            r.get("LINES").unwrap().extract("g.txt", &c).unwrap(),
            FeatureValue::Num(2.0)
        );
        assert_eq!(
            r.get("WORDS").unwrap().extract("g.txt", &c).unwrap(),
            FeatureValue::Num(3.0)
        );
        assert!(matches!(
            r.get("SIZE").unwrap().extract("nope", &c),
            Err(XiclError::FileNotFound(_))
        ));
    }

    #[test]
    fn len_counts_characters() {
        let vfs = Vfs::new();
        let r = Registry::with_predefined();
        assert_eq!(
            r.get("LEN")
                .unwrap()
                .extract("hello", &ctx(&vfs, ComponentType::Str))
                .unwrap(),
            FeatureValue::Num(5.0)
        );
    }

    #[test]
    fn custom_extractors_can_be_registered() {
        #[derive(Debug)]
        struct MTen;
        impl FeatureExtractor for MTen {
            fn extract(&self, _: &str, _: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
                Ok(FeatureValue::Num(10.0))
            }
        }
        let mut r = Registry::with_predefined();
        r.register("mTen", MTen);
        let vfs = Vfs::new();
        assert_eq!(
            r.get("mTen")
                .unwrap()
                .extract("x", &ctx(&vfs, ComponentType::Str))
                .unwrap(),
            FeatureValue::Num(10.0)
        );
        assert!(r.names().contains(&"mTen"));
    }

    #[test]
    fn cost_scales_with_file_size() {
        let mut vfs = Vfs::new();
        vfs.write("big", "x".repeat(1000));
        let r = Registry::with_predefined();
        let c = ctx(&vfs, ComponentType::File);
        assert!(r.get("LINES").unwrap().cost("big", &c) >= 1000);
        assert!(r.get("SIZE").unwrap().cost("big", &c) < 1000);
    }
}
