//! The runtime feature channel: the paper's
//! `XICLFeatureVector.updateV()` / `done()` interface (§III-B.3).
//!
//! Applications often compute good input characterizations during their
//! own initialization (e.g. the `route` program parses its graph anyway).
//! Rather than re-deriving those features, the application *publishes*
//! them to the VM. In this reproduction, bytecode programs execute
//! `Publish`/`Done` instructions; the host forwards the published values
//! into a [`RuntimeChannel`], whose contents merge into the XICL feature
//! vector under `runtime.`-prefixed names.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::feature::{FeatureValue, FeatureVector};

/// Prefix for runtime-published feature names.
pub const RUNTIME_PREFIX: &str = "runtime.";

#[derive(Debug, Default)]
struct ChannelState {
    values: BTreeMap<String, f64>,
    done: bool,
}

/// A shared, thread-safe channel of application-published features.
#[derive(Debug, Clone, Default)]
pub struct RuntimeChannel {
    inner: Arc<Mutex<ChannelState>>,
}

impl RuntimeChannel {
    /// An empty channel.
    pub fn new() -> RuntimeChannel {
        RuntimeChannel::default()
    }

    /// Publish (or update) a feature value — `updateV` in the paper.
    pub fn update_v(&self, name: &str, value: f64) {
        self.inner.lock().values.insert(name.to_owned(), value);
    }

    /// Signal that no more features will be published — `done()`.
    pub fn done(&self) {
        self.inner.lock().done = true;
    }

    /// True once [`RuntimeChannel::done`] was called.
    pub fn is_done(&self) -> bool {
        self.inner.lock().done
    }

    /// Snapshot of the published values, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .lock()
            .values
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Merge the published values into `fv` as `runtime.<name>` features
    /// (updating in place if the name already exists).
    pub fn merge_into(&self, fv: &mut FeatureVector) {
        for (name, value) in self.snapshot() {
            fv.update(&format!("{RUNTIME_PREFIX}{name}"), FeatureValue::Num(value));
        }
    }

    /// Reset for a new run.
    pub fn clear(&self) {
        let mut s = self.inner.lock();
        s.values.clear();
        s.done = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_done_snapshot() {
        let ch = RuntimeChannel::new();
        assert!(!ch.is_done());
        ch.update_v("nodes", 100.0);
        ch.update_v("edges", 1000.0);
        ch.update_v("nodes", 101.0); // updates overwrite
        ch.done();
        assert!(ch.is_done());
        assert_eq!(
            ch.snapshot(),
            vec![("edges".to_owned(), 1000.0), ("nodes".to_owned(), 101.0)]
        );
    }

    #[test]
    fn merges_into_a_feature_vector() {
        let ch = RuntimeChannel::new();
        ch.update_v("nodes", 100.0);
        let mut fv = FeatureVector::new();
        fv.push("-n.VAL", FeatureValue::Num(3.0));
        ch.merge_into(&mut fv);
        assert_eq!(fv.get("runtime.nodes"), Some(&FeatureValue::Num(100.0)));
        assert_eq!(fv.len(), 2);
        // Merging again updates rather than duplicates.
        ch.update_v("nodes", 200.0);
        ch.merge_into(&mut fv);
        assert_eq!(fv.get("runtime.nodes"), Some(&FeatureValue::Num(200.0)));
        assert_eq!(fv.len(), 2);
    }

    #[test]
    fn clear_resets_everything() {
        let ch = RuntimeChannel::new();
        ch.update_v("x", 1.0);
        ch.done();
        ch.clear();
        assert!(!ch.is_done());
        assert!(ch.snapshot().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a = RuntimeChannel::new();
        let b = a.clone();
        b.update_v("k", 9.0);
        assert_eq!(a.snapshot(), vec![("k".to_owned(), 9.0)]);
    }
}
