//! Bytecode-shape features: a cold-start input to cross-run learning.
//!
//! XICL characterizes a program's *inputs*; this module characterizes the
//! *program itself*, from the whole-program static analysis in
//! [`evovm_bytecode::analysis`]. The two meet in the same
//! [`FeatureVector`] currency, so a future `CrossRunOptimizer` can seed
//! its very first prediction from bytecode shape alone — the
//! PGO-without-profiles idea the ROADMAP's learned-optimizer item calls
//! for — before any dynamic profile exists.
//!
//! The schema is fixed (same names, same order, for every program), which
//! is the property positional learners need; quantities that recursion
//! makes statically unbounded are encoded with the `-1` sentinel rather
//! than dropped.

use evovm_bytecode::analysis::{self, OpClass, ProgramAnalysis};
use evovm_bytecode::{Program, VerifyError};

use crate::feature::{FeatureValue, FeatureVector};

/// Whole-program static features summarizing a verified program's shape.
///
/// Construct with [`StaticFeatures::of`]; convert to the learning
/// currency with [`StaticFeatures::to_feature_vector`].
#[derive(Debug, Clone, PartialEq)]
pub struct StaticFeatures {
    /// Total functions in the program.
    pub functions: usize,
    /// Functions unreachable from the entry.
    pub dead_functions: usize,
    /// Instructions in live functions.
    pub live_instructions: usize,
    /// Natural loops in live functions.
    pub loops: usize,
    /// Deepest loop nesting in any live function.
    pub max_loop_depth: usize,
    /// Largest verifier-proven operand-stack bound of any live function.
    pub max_stack: usize,
    /// Largest locals count of any live function.
    pub max_locals: usize,
    /// Whether recursion is reachable from the entry.
    pub recursive: bool,
    /// Static call-depth bound in frames (`None` when recursive).
    pub call_depth_bound: Option<usize>,
    /// Static frame-arena bound in slots (`None` when recursive).
    pub arena_slots_bound: Option<usize>,
    /// Sum of plain static cost over live functions.
    pub static_cost: u64,
    /// Sum of loop-weighted static cost over live functions.
    pub weighted_cost: u64,
    /// Instruction-mix fractions over live instructions, indexed by
    /// [`OpClass::index`]. Sums to 1 for non-empty programs.
    pub mix: [f64; OpClass::COUNT],
}

impl StaticFeatures {
    /// Analyze `program` and summarize it.
    ///
    /// # Errors
    ///
    /// Returns the verifier's error for unverifiable programs.
    pub fn of(program: &Program) -> Result<StaticFeatures, VerifyError> {
        Ok(StaticFeatures::from_analysis(&analysis::analyze(program)?))
    }

    /// Summarize an analysis already at hand (avoids re-analyzing).
    pub fn from_analysis(analysis: &ProgramAnalysis) -> StaticFeatures {
        let live = || {
            analysis
                .profiles
                .iter()
                .filter(|p| analysis.call_graph.is_live(p.id))
        };
        let live_instructions: usize = live().map(|p| p.code_len).sum();
        let mut counts = [0u64; OpClass::COUNT];
        let mut static_cost = 0u64;
        for p in live() {
            static_cost = static_cost.saturating_add(p.static_cost);
            for (total, n) in counts.iter_mut().zip(p.mix.iter()) {
                *total += u64::from(*n);
            }
        }
        let mut mix = [0.0f64; OpClass::COUNT];
        if live_instructions > 0 {
            for (f, n) in mix.iter_mut().zip(counts.iter()) {
                *f = *n as f64 / live_instructions as f64;
            }
        }
        StaticFeatures {
            functions: analysis.profiles.len(),
            dead_functions: analysis.call_graph.dead_functions().len(),
            live_instructions,
            loops: live().map(|p| p.loops).sum(),
            max_loop_depth: live().map(|p| p.loop_depth).max().unwrap_or(0),
            max_stack: live().map(|p| p.max_stack).max().unwrap_or(0),
            max_locals: live().map(|p| usize::from(p.locals)).max().unwrap_or(0),
            recursive: analysis.call_graph.has_live_recursion(),
            call_depth_bound: analysis.bounds.call_depth,
            arena_slots_bound: analysis.bounds.arena_slots,
            static_cost,
            weighted_cost: analysis.live_weighted_cost(),
            mix,
        }
    }

    /// Render as a [`FeatureVector`] with the stable `bc.*` schema:
    /// scalar shape features first, then one `bc.mix.<class>` fraction
    /// per [`OpClass`]. Unbounded quantities appear as `-1`.
    pub fn to_feature_vector(&self) -> FeatureVector {
        let unbounded = |b: Option<usize>| b.map_or(-1.0, |v| v as f64);
        let mut fv = FeatureVector::new();
        fv.push("bc.functions", FeatureValue::Num(self.functions as f64));
        fv.push(
            "bc.dead_functions",
            FeatureValue::Num(self.dead_functions as f64),
        );
        fv.push(
            "bc.instructions",
            FeatureValue::Num(self.live_instructions as f64),
        );
        fv.push("bc.loops", FeatureValue::Num(self.loops as f64));
        fv.push(
            "bc.max_loop_depth",
            FeatureValue::Num(self.max_loop_depth as f64),
        );
        fv.push("bc.max_stack", FeatureValue::Num(self.max_stack as f64));
        fv.push("bc.max_locals", FeatureValue::Num(self.max_locals as f64));
        fv.push(
            "bc.recursive",
            FeatureValue::Cat(if self.recursive { "y" } else { "n" }.to_owned()),
        );
        fv.push(
            "bc.call_depth",
            FeatureValue::Num(unbounded(self.call_depth_bound)),
        );
        fv.push(
            "bc.arena_slots",
            FeatureValue::Num(unbounded(self.arena_slots_bound)),
        );
        fv.push("bc.static_cost", FeatureValue::Num(self.static_cost as f64));
        fv.push(
            "bc.weighted_cost",
            FeatureValue::Num(self.weighted_cost as f64),
        );
        for class in OpClass::ALL {
            fv.push(
                format!("bc.mix.{}", class.name()),
                FeatureValue::Num(self.mix[class.index()]),
            );
        }
        fv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;

    const LOOPY: &str = "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 5
  icmpge
  jumpif end
  load 0
  call helper
  print
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func helper/1 {
  load 0
  const 2
  imul
  return
}
func dead/0 {
  const 1
  return
}";

    #[test]
    fn summarizes_shape_of_a_live_subprogram() {
        let p = parse(LOOPY).unwrap();
        let sf = StaticFeatures::of(&p).unwrap();
        assert_eq!(sf.functions, 3);
        assert_eq!(sf.dead_functions, 1);
        assert_eq!(sf.loops, 1);
        assert_eq!(sf.max_loop_depth, 1);
        assert!(!sf.recursive);
        assert_eq!(sf.call_depth_bound, Some(2));
        assert!(sf.weighted_cost > sf.static_cost);
        // Dead code is excluded from the instruction count.
        let live_len: usize = p.functions()[..2].iter().map(|f| f.code.len()).sum();
        assert_eq!(sf.live_instructions, live_len);
        let mix_sum: f64 = sf.mix.iter().sum();
        assert!((mix_sum - 1.0).abs() < 1e-9, "mix must sum to 1: {mix_sum}");
    }

    #[test]
    fn feature_vector_schema_is_stable_across_programs() {
        let a = StaticFeatures::of(&parse(LOOPY).unwrap())
            .unwrap()
            .to_feature_vector();
        let b = StaticFeatures::of(
            &parse("entry func main/0 {\n  const 1\n  print\n  null\n  return\n}").unwrap(),
        )
        .unwrap()
        .to_feature_vector();
        assert_eq!(
            a.names(),
            b.names(),
            "schema must not depend on the program"
        );
        assert_eq!(a.len(), 12 + OpClass::COUNT);
        assert_eq!(a.get("bc.recursive").unwrap().as_cat(), Some("n"));
        assert!(a.get("bc.mix.branch").unwrap().as_num().unwrap() > 0.0);
    }

    #[test]
    fn fused_class_buckets_are_stable_schema_members() {
        // The schema must carry the fused buckets even for programs with
        // no fused code (cold-start vectors never change shape when the
        // optimizer's fusion pass lands)...
        let plain = StaticFeatures::of(&parse(LOOPY).unwrap())
            .unwrap()
            .to_feature_vector();
        for bucket in [
            "bc.mix.fused_data",
            "bc.mix.fused_arith",
            "bc.mix.fused_branch",
        ] {
            assert_eq!(plain.get(bucket).unwrap().as_num(), Some(0.0), "{bucket}");
        }
        // ...and fused instruction streams land in those buckets instead
        // of silently shifting the plain-class fractions.
        let fused = StaticFeatures::of(
            &parse(
                "entry func main/0 locals=2 {\n  loadloadbin add 0 1\n  \
                 print\n  null\n  return\n}",
            )
            .unwrap(),
        )
        .unwrap()
        .to_feature_vector();
        assert!(fused.get("bc.mix.fused_arith").unwrap().as_num().unwrap() > 0.0);
        assert_eq!(plain.names(), fused.names());
    }

    #[test]
    fn recursion_uses_the_unbounded_sentinel() {
        let p = parse(
            "entry func main/0 {
  const 3
  call f
  print
  null
  return
}
func f/1 {
  load 0
  jumpifnot stop
  load 0
  const 1
  isub
  call f
  return
stop:
  const 0
  return
}",
        )
        .unwrap();
        let fv = StaticFeatures::of(&p).unwrap().to_feature_vector();
        assert_eq!(fv.get("bc.recursive").unwrap().as_cat(), Some("y"));
        assert_eq!(fv.get("bc.call_depth").unwrap().as_num(), Some(-1.0));
        assert_eq!(fv.get("bc.arena_slots").unwrap().as_num(), Some(-1.0));
    }
}
