//! The XICL specification language: model and parser.
//!
//! A spec describes every component a program's command line may contain,
//! using the paper's two constructs:
//!
//! ```text
//! # the route example from the paper (Figure 2)
//! option  {name=-n; type=num; attr=VAL; default=1; has_arg=y}
//! option  {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
//! operand {position=1:$; type=file; attr=mNodes:mEdges}
//! ```
//!
//! - `name` — the option's aliases, `:`-separated.
//! - `type` — `num`, `bin`, `str` or `file`.
//! - `attr` — the potentially-important features, `:`-separated. Uppercase
//!   names (`VAL`, `SIZE`, `LEN`, `LINES`, `WORDS`) are predefined;
//!   `m`-prefixed names are programmer-defined extractor methods
//!   (see [`crate::extract`]).
//! - `default` — the value assumed when the option is absent.
//! - `has_arg` — `y` if the option consumes the next token.
//! - `position` — which command-line operands the construct covers:
//!   `2`, `1:3`, `1:$` (from 1 to the end) or `$` (the last).
//!
//! `#` starts a comment.

use serde::{Deserialize, Serialize};

use crate::error::XiclError;

/// Declared type of an input component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentType {
    /// Numeric value.
    Num,
    /// Boolean flag (0/1).
    Bin,
    /// Free-form string (categorical).
    Str,
    /// A file path resolved against the VFS.
    File,
}

impl ComponentType {
    /// Parse the spec keyword.
    pub fn from_keyword(s: &str) -> Option<ComponentType> {
        Some(match s {
            "num" => ComponentType::Num,
            "bin" => ComponentType::Bin,
            "str" => ComponentType::Str,
            "file" => ComponentType::File,
            _ => return None,
        })
    }

    /// The spec keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            ComponentType::Num => "num",
            ComponentType::Bin => "bin",
            ComponentType::Str => "str",
            ComponentType::File => "file",
        }
    }
}

/// One endpoint of an operand position range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Position {
    /// A 1-based operand index.
    Index(u32),
    /// `$` — the end of the command line.
    End,
}

/// The operand positions a construct covers (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PositionRange {
    /// First covered position.
    pub start: Position,
    /// Last covered position.
    pub end: Position,
}

impl PositionRange {
    /// True if 1-based operand index `i` (of `total` operands) is covered.
    pub fn contains(&self, i: u32, total: u32) -> bool {
        let resolve = |p: Position| match p {
            Position::Index(n) => n,
            Position::End => total,
        };
        let (s, e) = (resolve(self.start), resolve(self.end));
        i >= s && i <= e
    }
}

/// An `option { .. }` construct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptionSpec {
    /// Aliases (e.g. `-e` and `--echo`).
    pub names: Vec<String>,
    /// Declared type.
    pub ty: ComponentType,
    /// Feature-extraction attributes.
    pub attrs: Vec<String>,
    /// Value assumed when absent.
    pub default: Option<String>,
    /// Whether the option consumes the following token.
    pub has_arg: bool,
}

impl OptionSpec {
    /// The canonical (first) name.
    pub fn canonical(&self) -> &str {
        &self.names[0]
    }
}

/// An `operand { .. }` construct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperandSpec {
    /// Covered positions.
    pub position: PositionRange,
    /// Declared type.
    pub ty: ComponentType,
    /// Feature-extraction attributes.
    pub attrs: Vec<String>,
}

/// A parsed XICL specification.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct XiclSpec {
    /// Declared options, in spec order.
    pub options: Vec<OptionSpec>,
    /// Declared operand groups, in spec order.
    pub operands: Vec<OperandSpec>,
}

impl XiclSpec {
    /// Total number of declared features (the "raw features" column of the
    /// paper's Table I): one per attr per construct, plus the implicit
    /// operand count feature per operand construct.
    pub fn raw_feature_count(&self) -> usize {
        let opt: usize = self.options.iter().map(|o| o.attrs.len()).sum();
        let opr: usize = self.operands.iter().map(|o| o.attrs.len() + 1).sum();
        opt + opr
    }

    /// Find the option covering alias `name`.
    pub fn option_by_name(&self, name: &str) -> Option<&OptionSpec> {
        self.options
            .iter()
            .find(|o| o.names.iter().any(|n| n == name))
    }
}

/// Parse an XICL specification.
///
/// # Errors
///
/// Returns [`XiclError::Spec`] with the offending line.
pub fn parse(text: &str) -> Result<XiclSpec, XiclError> {
    let mut spec = XiclSpec::default();
    let mut line_no = 0usize;
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for raw in text.lines() {
        line_no += 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if pending.is_empty() {
            pending_line = line_no;
        }
        pending.push_str(line);
        pending.push(' ');
        if !line.ends_with('}') {
            continue; // constructs may span lines
        }
        parse_construct(pending.trim(), pending_line, &mut spec)?;
        pending.clear();
    }
    if !pending.trim().is_empty() {
        return Err(XiclError::Spec {
            line: pending_line,
            message: "unterminated construct (missing `}`)".into(),
        });
    }
    Ok(spec)
}

fn parse_construct(text: &str, line: usize, spec: &mut XiclSpec) -> Result<(), XiclError> {
    let err = |message: String| XiclError::Spec { line, message };
    let (kind, rest) = text
        .split_once('{')
        .ok_or_else(|| err("expected `option {..}` or `operand {..}`".into()))?;
    let kind = kind.trim();
    let body = rest
        .trim()
        .strip_suffix('}')
        .ok_or_else(|| err("missing closing `}`".into()))?;
    let mut fields: Vec<(String, String)> = Vec::new();
    for part in body.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| err(format!("field `{part}` is not `key=value`")))?;
        fields.push((k.trim().to_owned(), v.trim().to_owned()));
    }
    let get = |key: &str| -> Option<&str> {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    };
    let ty = {
        let t = get("type").ok_or_else(|| err("missing `type`".into()))?;
        ComponentType::from_keyword(t).ok_or_else(|| err(format!("unknown type `{t}`")))?
    };
    let attrs: Vec<String> = get("attr")
        .map(|a| a.split(':').map(|s| s.trim().to_owned()).collect())
        .unwrap_or_default();
    match kind {
        "option" => {
            let names: Vec<String> = get("name")
                .ok_or_else(|| err("option missing `name`".into()))?
                .split(':')
                .map(|s| s.trim().to_owned())
                .collect();
            if names.iter().any(String::is_empty) {
                return Err(err("empty option name".into()));
            }
            let has_arg = match get("has_arg").unwrap_or("y") {
                "y" | "Y" => true,
                "n" | "N" => false,
                other => return Err(err(format!("has_arg must be y or n, got `{other}`"))),
            };
            spec.options.push(OptionSpec {
                names,
                ty,
                attrs,
                default: get("default").map(str::to_owned),
                has_arg,
            });
        }
        "operand" => {
            let pos_text = get("position").unwrap_or("1:$");
            let position = parse_position(pos_text).ok_or_else(|| {
                err(format!(
                    "bad position `{pos_text}` (want `2`, `1:3`, `1:$`, `$`)"
                ))
            })?;
            spec.operands.push(OperandSpec {
                position,
                ty,
                attrs,
            });
        }
        other => return Err(err(format!("unknown construct `{other}`"))),
    }
    Ok(())
}

fn parse_position(s: &str) -> Option<PositionRange> {
    let endpoint = |t: &str| -> Option<Position> {
        if t == "$" {
            Some(Position::End)
        } else {
            t.parse::<u32>()
                .ok()
                .filter(|&n| n >= 1)
                .map(Position::Index)
        }
    };
    match s.split_once(':') {
        Some((a, b)) => Some(PositionRange {
            start: endpoint(a.trim())?,
            end: endpoint(b.trim())?,
        }),
        None => {
            let p = endpoint(s.trim())?;
            Some(PositionRange { start: p, end: p })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 spec.
    pub(crate) const ROUTE_SPEC: &str = "
option {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=mNodes:mEdges}
";

    #[test]
    fn parses_the_route_spec() {
        let spec = parse(ROUTE_SPEC).unwrap();
        assert_eq!(spec.options.len(), 2);
        assert_eq!(spec.operands.len(), 1);
        assert_eq!(spec.options[0].names, vec!["-n"]);
        assert!(spec.options[0].has_arg);
        assert_eq!(spec.options[0].default.as_deref(), Some("1"));
        assert_eq!(spec.options[1].names, vec!["-e", "--echo"]);
        assert!(!spec.options[1].has_arg);
        assert_eq!(spec.operands[0].attrs, vec!["mNodes", "mEdges"]);
        assert_eq!(
            spec.operands[0].position,
            PositionRange {
                start: Position::Index(1),
                end: Position::End
            }
        );
    }

    #[test]
    fn raw_feature_count_matches_attrs() {
        let spec = parse(ROUTE_SPEC).unwrap();
        // 1 (VAL) + 1 (VAL) + 2 (mNodes, mEdges) + 1 (implicit count)
        assert_eq!(spec.raw_feature_count(), 5);
    }

    #[test]
    fn alias_lookup() {
        let spec = parse(ROUTE_SPEC).unwrap();
        assert!(spec.option_by_name("--echo").is_some());
        assert!(spec.option_by_name("-e").is_some());
        assert!(spec.option_by_name("-x").is_none());
    }

    #[test]
    fn comments_and_multiline_constructs() {
        let spec = parse(
            "# header comment
option {name=-v; type=bin;
        attr=VAL; default=0; has_arg=n} # trailing
",
        )
        .unwrap();
        assert_eq!(spec.options.len(), 1);
    }

    #[test]
    fn position_forms() {
        assert_eq!(
            parse_position("2"),
            Some(PositionRange {
                start: Position::Index(2),
                end: Position::Index(2)
            })
        );
        assert_eq!(
            parse_position("$"),
            Some(PositionRange {
                start: Position::End,
                end: Position::End
            })
        );
        assert_eq!(parse_position("0"), None);
        assert_eq!(parse_position("a:b"), None);
    }

    #[test]
    fn position_contains() {
        let all = parse_position("1:$").unwrap();
        assert!(all.contains(1, 3));
        assert!(all.contains(3, 3));
        let last = parse_position("$").unwrap();
        assert!(!last.contains(1, 3));
        assert!(last.contains(3, 3));
    }

    #[test]
    fn errors_with_lines() {
        let e = parse("option {name=-n; type=wat}").unwrap_err();
        assert!(matches!(e, XiclError::Spec { line: 1, .. }), "{e}");
        let e = parse("\nbogus {type=num}").unwrap_err();
        assert!(matches!(e, XiclError::Spec { line: 2, .. }), "{e}");
        assert!(parse("option {name=-n; type=num").is_err());
        assert!(parse("option {name=-n type=num}").is_err());
    }
}
