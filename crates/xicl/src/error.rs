//! XICL errors.

use std::fmt;

/// Errors from spec parsing or input translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XiclError {
    /// The spec text failed to parse.
    Spec {
        /// 1-based line.
        line: usize,
        /// Description.
        message: String,
    },
    /// A command line mentioned an option the spec does not declare.
    UnknownOption(String),
    /// An option that requires an argument appeared without one.
    MissingArgument(String),
    /// An option/operand value failed its declared type conversion.
    BadValue {
        /// The component (option name or operand position).
        component: String,
        /// The offending raw value.
        value: String,
        /// The declared type.
        ty: String,
    },
    /// A FILE component referenced a file absent from the VFS.
    FileNotFound(String),
    /// An `attr` names a feature-extraction method that is not registered.
    UnknownExtractor(String),
    /// A feature extractor failed.
    Extractor {
        /// The extractor name.
        name: String,
        /// Description.
        message: String,
    },
}

impl fmt::Display for XiclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XiclError::Spec { line, message } => {
                write!(f, "spec parse error at line {line}: {message}")
            }
            XiclError::UnknownOption(o) => write!(f, "unknown option `{o}`"),
            XiclError::MissingArgument(o) => write!(f, "option `{o}` requires an argument"),
            XiclError::BadValue {
                component,
                value,
                ty,
            } => write!(f, "`{component}`: value `{value}` is not a valid {ty}"),
            XiclError::FileNotFound(p) => write!(f, "input file `{p}` not found"),
            XiclError::UnknownExtractor(m) => {
                write!(f, "feature extraction method `{m}` is not registered")
            }
            XiclError::Extractor { name, message } => {
                write!(f, "extractor `{name}` failed: {message}")
            }
        }
    }
}

impl std::error::Error for XiclError {}
