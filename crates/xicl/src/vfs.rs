//! A tiny in-memory virtual filesystem.
//!
//! The paper's benchmarks take real input files; this reproduction keeps
//! inputs hermetic by materializing them here. FILE-typed XICL components
//! resolve their SIZE/LINES/WORDS features (and programmer-defined ones)
//! against a [`Vfs`].

use std::collections::BTreeMap;

/// In-memory file store mapping paths to contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vfs {
    files: BTreeMap<String, String>,
}

impl Vfs {
    /// An empty filesystem.
    pub fn new() -> Vfs {
        Vfs::default()
    }

    /// Create or replace a file.
    pub fn write(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Read a file's contents.
    pub fn read(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// File size in bytes.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.read(path).map(|c| c.len() as u64)
    }

    /// Number of lines (including a trailing partial line).
    pub fn lines(&self, path: &str) -> Option<u64> {
        self.read(path).map(|c| c.lines().count() as u64)
    }

    /// Number of whitespace-separated words.
    pub fn words(&self, path: &str) -> Option<u64> {
        self.read(path).map(|c| c.split_whitespace().count() as u64)
    }

    /// Paths in the filesystem, sorted.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_and_metrics() {
        let mut vfs = Vfs::new();
        vfs.write("graph.txt", "1 2\n2 3\n3 1\n");
        assert!(vfs.exists("graph.txt"));
        assert_eq!(vfs.size("graph.txt"), Some(12));
        assert_eq!(vfs.lines("graph.txt"), Some(3));
        assert_eq!(vfs.words("graph.txt"), Some(6));
        assert_eq!(vfs.read("missing"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut vfs = Vfs::new();
        vfs.write("f", "old");
        vfs.write("f", "newer");
        assert_eq!(vfs.read("f"), Some("newer"));
        assert_eq!(vfs.file_count(), 1);
    }
}
