//! Feature vectors: the translator's output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One feature value: numeric (quantitative) or categorical.
///
/// The separation matters for learning — classification trees split
/// numeric features on thresholds and categorical features on equality
/// (paper §III: "the separation between categorical and quantitative
/// features is important for behavior modeling").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureValue {
    /// A quantitative feature.
    Num(f64),
    /// A categorical feature.
    Cat(String),
}

impl FeatureValue {
    /// The numeric value, if quantitative.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            FeatureValue::Num(v) => Some(*v),
            FeatureValue::Cat(_) => None,
        }
    }

    /// The category, if categorical.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            FeatureValue::Num(_) => None,
            FeatureValue::Cat(s) => Some(s),
        }
    }
}

impl fmt::Display for FeatureValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeatureValue::Num(v) => write!(f, "{v}"),
            FeatureValue::Cat(s) => write!(f, "{s:?}"),
        }
    }
}

/// A named, ordered feature vector. The order and names are determined by
/// the XICL spec, so vectors from different runs of the same application
/// are positionally comparable — the property incremental learning needs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureVector {
    features: Vec<(String, FeatureValue)>,
}

impl FeatureVector {
    /// An empty vector.
    pub fn new() -> FeatureVector {
        FeatureVector::default()
    }

    /// Append a feature.
    pub fn push(&mut self, name: impl Into<String>, value: FeatureValue) {
        self.features.push((name.into(), value));
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if no features are present.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Look up a feature by name.
    pub fn get(&self, name: &str) -> Option<&FeatureValue> {
        self.features
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Iterate features in order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FeatureValue)> {
        self.features.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Feature names in order.
    pub fn names(&self) -> Vec<&str> {
        self.features.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Replace the value of `name` (appending if absent) — used by the
    /// runtime `updateV` channel.
    pub fn update(&mut self, name: &str, value: FeatureValue) {
        match self.features.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.features.push((name.to_owned(), value)),
        }
    }
}

impl fmt::Display for FeatureVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, v)) in self.features.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}={v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<(String, FeatureValue)> for FeatureVector {
    fn from_iter<T: IntoIterator<Item = (String, FeatureValue)>>(iter: T) -> FeatureVector {
        FeatureVector {
            features: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_update() {
        let mut fv = FeatureVector::new();
        fv.push("-n.VAL", FeatureValue::Num(3.0));
        fv.push("file.mNodes", FeatureValue::Num(100.0));
        assert_eq!(fv.len(), 2);
        assert_eq!(fv.get("-n.VAL"), Some(&FeatureValue::Num(3.0)));
        fv.update("-n.VAL", FeatureValue::Num(5.0));
        assert_eq!(fv.get("-n.VAL"), Some(&FeatureValue::Num(5.0)));
        fv.update("fresh", FeatureValue::Cat("x".into()));
        assert_eq!(fv.len(), 3);
    }

    #[test]
    fn display_is_readable() {
        let mut fv = FeatureVector::new();
        fv.push("a", FeatureValue::Num(1.0));
        fv.push("b", FeatureValue::Cat("xml".into()));
        assert_eq!(fv.to_string(), "(a=1, b=\"xml\")");
    }

    #[test]
    fn order_is_preserved() {
        let fv: FeatureVector = vec![
            ("z".to_owned(), FeatureValue::Num(1.0)),
            ("a".to_owned(), FeatureValue::Num(2.0)),
        ]
        .into_iter()
        .collect();
        assert_eq!(fv.names(), vec!["z", "a"]);
    }
}
