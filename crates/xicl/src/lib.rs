//! XICL — the Extensible Input Characterization Language.
//!
//! One of the three techniques of the evolvable virtual machine
//! (Mao & Shen, CGO 2009, §III): a mini-language in which a programmer
//! describes the format and potentially-important features of a program's
//! inputs, plus a translator that converts an arbitrary legal command line
//! into a well-formed feature vector.
//!
//! - [`spec`] — the `option {..}` / `operand {..}` constructs and parser.
//! - [`extract`] — predefined and programmer-defined feature extractors
//!   (the paper's `XFMethod` interface and method map).
//! - [`translate`] — the translator (`buildFVector`).
//! - [`runtime`] — the `updateV`/`done` channel for features computed by
//!   the running application itself.
//! - [`vfs`] — the in-memory filesystem FILE components resolve against.
//! - [`static_features`] — bytecode-shape features from whole-program
//!   static analysis, for cold-start prediction before any run exists.
//!
//! # Example
//!
//! ```
//! use evovm_xicl::{extract::Registry, spec, translate::Translator, vfs::Vfs};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = spec::parse(
//!     "option {name=-n; type=num; attr=VAL; default=1; has_arg=y}\n\
//!      operand {position=1:$; type=file; attr=SIZE}",
//! )?;
//! let translator = Translator::new(spec, Registry::with_predefined());
//! let mut vfs = Vfs::new();
//! vfs.write("input.dat", "some file contents");
//! let (fv, _stats) =
//!     translator.translate(&["-n".into(), "3".into(), "input.dat".into()], &vfs)?;
//! assert_eq!(fv.get("-n.VAL").unwrap().as_num(), Some(3.0));
//! assert_eq!(fv.get("operand0.SIZE").unwrap().as_num(), Some(18.0));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod extract;
pub mod feature;
pub mod runtime;
pub mod spec;
pub mod static_features;
pub mod translate;
pub mod vfs;

pub use error::XiclError;
pub use feature::{FeatureValue, FeatureVector};
pub use runtime::RuntimeChannel;
pub use spec::XiclSpec;
pub use static_features::StaticFeatures;
pub use translate::{TranslationStats, Translator};
pub use vfs::Vfs;
