//! The XICL translator: command line → feature vector.
//!
//! The Rust analog of the paper's `XICLTranslator.buildFVector` (Figure 3):
//! given a parsed [`XiclSpec`], an extractor [`Registry`] and a [`Vfs`],
//! [`Translator::translate`] converts an arbitrary legal command line into
//! a well-formed [`FeatureVector`] whose layout (names and order) is fixed
//! by the spec — absent options contribute their defaults, so vectors from
//! different runs are positionally comparable.

use crate::error::XiclError;
use crate::extract::{ExtractCtx, Registry};
use crate::feature::{FeatureValue, FeatureVector};
use crate::spec::{ComponentType, XiclSpec};
use crate::vfs::Vfs;

/// Work accounting for one translation, used by the overhead experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TranslationStats {
    /// Command-line tokens scanned.
    pub tokens_scanned: u64,
    /// Extractor invocations.
    pub extractions: u64,
    /// Total extractor work units (roughly bytes touched).
    pub work_units: u64,
}

/// The XICL translator.
#[derive(Debug, Clone)]
pub struct Translator {
    spec: XiclSpec,
    registry: Registry,
}

impl Translator {
    /// Create a translator for `spec` using `registry`'s methods.
    pub fn new(spec: XiclSpec, registry: Registry) -> Translator {
        Translator { spec, registry }
    }

    /// The spec this translator implements.
    pub fn spec(&self) -> &XiclSpec {
        &self.spec
    }

    /// Translate a command line (program name excluded) into a feature
    /// vector.
    ///
    /// # Errors
    ///
    /// Unknown options, missing arguments, type-conversion failures,
    /// missing files and unregistered extractors are reported as
    /// [`XiclError`].
    pub fn translate(
        &self,
        args: &[String],
        vfs: &Vfs,
    ) -> Result<(FeatureVector, TranslationStats), XiclError> {
        let mut stats = TranslationStats::default();
        // Pass 1: split options from operands.
        let mut present: Vec<Option<String>> = vec![None; self.spec.options.len()];
        let mut operands: Vec<&str> = Vec::new();
        let mut i = 0usize;
        while i < args.len() {
            let tok = args[i].as_str();
            stats.tokens_scanned += 1;
            let opt_idx = self
                .spec
                .options
                .iter()
                .position(|o| o.names.iter().any(|n| n == tok));
            match opt_idx {
                Some(idx) => {
                    let opt = &self.spec.options[idx];
                    if opt.has_arg {
                        i += 1;
                        let Some(value) = args.get(i) else {
                            return Err(XiclError::MissingArgument(tok.to_owned()));
                        };
                        stats.tokens_scanned += 1;
                        present[idx] = Some(value.clone());
                    } else {
                        present[idx] = Some("1".to_owned());
                    }
                }
                None if looks_like_option(tok) => {
                    return Err(XiclError::UnknownOption(tok.to_owned()));
                }
                None => operands.push(tok),
            }
            i += 1;
        }

        // Pass 2: emit features in spec order.
        let mut fv = FeatureVector::new();
        for (idx, opt) in self.spec.options.iter().enumerate() {
            let raw = match &present[idx] {
                Some(v) => v.clone(),
                None => opt
                    .default
                    .clone()
                    .unwrap_or_else(|| implicit_default(opt.ty).to_owned()),
            };
            let ctx = ExtractCtx { vfs, ty: opt.ty };
            for attr in &opt.attrs {
                let value = self.extract(attr, &raw, &ctx, &mut stats)?;
                fv.push(format!("{}.{attr}", opt.canonical()), value);
            }
        }
        let total = operands.len() as u32;
        for (gidx, group) in self.spec.operands.iter().enumerate() {
            let covered: Vec<&str> = operands
                .iter()
                .enumerate()
                .filter(|(i, _)| group.position.contains(*i as u32 + 1, total))
                .map(|(_, t)| *t)
                .collect();
            let ctx = ExtractCtx { vfs, ty: group.ty };
            for attr in &group.attrs {
                let mut nums: Vec<f64> = Vec::new();
                let mut cat: Option<String> = None;
                for tok in &covered {
                    match self.extract(attr, tok, &ctx, &mut stats)? {
                        FeatureValue::Num(v) => nums.push(v),
                        FeatureValue::Cat(s) => {
                            cat.get_or_insert(s);
                        }
                    }
                }
                // Numeric features aggregate by sum over the covered
                // operands (so `route a.g b.g` sees total nodes/edges);
                // categorical features take the first covered value.
                let value = if let Some(s) = cat {
                    FeatureValue::Cat(s)
                } else {
                    FeatureValue::Num(nums.iter().sum())
                };
                fv.push(format!("operand{gidx}.{attr}"), value);
            }
            fv.push(
                format!("operand{gidx}.COUNT"),
                FeatureValue::Num(covered.len() as f64),
            );
        }
        Ok((fv, stats))
    }

    fn extract(
        &self,
        attr: &str,
        raw: &str,
        ctx: &ExtractCtx<'_>,
        stats: &mut TranslationStats,
    ) -> Result<FeatureValue, XiclError> {
        let method = self
            .registry
            .get(attr)
            .ok_or_else(|| XiclError::UnknownExtractor(attr.to_owned()))?;
        stats.extractions += 1;
        stats.work_units += method.cost(raw, ctx);
        method.extract(raw, ctx)
    }
}

fn implicit_default(ty: ComponentType) -> &'static str {
    match ty {
        ComponentType::Num | ComponentType::Bin => "0",
        ComponentType::Str | ComponentType::File => "",
    }
}

/// Heuristic for rejecting undeclared options: a leading `-` that is not a
/// negative number.
fn looks_like_option(tok: &str) -> bool {
    tok.len() > 1 && tok.starts_with('-') && tok.parse::<f64>().is_err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::FeatureExtractor;
    use crate::spec;

    const ROUTE_SPEC: &str = "
option {name=-n; type=num; attr=VAL; default=1; has_arg=y}
option {name=-e:--echo; type=bin; attr=VAL; default=0; has_arg=n}
operand {position=1:$; type=file; attr=mNodes:mEdges}
";

    /// `mNodes`: first number on the first line of a graph file.
    #[derive(Debug)]
    struct MNodes;
    impl FeatureExtractor for MNodes {
        fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
            let contents = ctx
                .vfs
                .read(raw)
                .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))?;
            let n = contents
                .lines()
                .next()
                .and_then(|l| l.split_whitespace().next())
                .and_then(|w| w.parse::<f64>().ok())
                .unwrap_or(0.0);
            Ok(FeatureValue::Num(n))
        }
    }

    /// `mEdges`: line count minus the header.
    #[derive(Debug)]
    struct MEdges;
    impl FeatureExtractor for MEdges {
        fn extract(&self, raw: &str, ctx: &ExtractCtx<'_>) -> Result<FeatureValue, XiclError> {
            let lines = ctx
                .vfs
                .lines(raw)
                .ok_or_else(|| XiclError::FileNotFound(raw.to_owned()))?;
            Ok(FeatureValue::Num(lines.saturating_sub(1) as f64))
        }
    }

    fn route_translator() -> Translator {
        let mut registry = Registry::with_predefined();
        registry.register("mNodes", MNodes);
        registry.register("mEdges", MEdges);
        Translator::new(spec::parse(ROUTE_SPEC).unwrap(), registry)
    }

    fn graph_vfs() -> Vfs {
        let mut vfs = Vfs::new();
        // Header: "<nodes>", then one edge per line.
        let mut g = String::from("100\n");
        for i in 0..1000 {
            g.push_str(&format!("{} {}\n", i % 100, (i * 7) % 100));
        }
        vfs.write("graph", g);
        vfs
    }

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|&x| x.to_owned()).collect()
    }

    #[test]
    fn reproduces_the_papers_route_example() {
        // "route -n 3 graph" with a 100-node 1000-edge graph must produce
        // the feature vector (3, 0, 100, 1000) — paper §III-A.
        let t = route_translator();
        let (fv, _) = t
            .translate(&args(&["-n", "3", "graph"]), &graph_vfs())
            .unwrap();
        let nums: Vec<f64> = fv.iter().filter_map(|(_, v)| v.as_num()).collect();
        assert_eq!(nums, vec![3.0, 0.0, 100.0, 1000.0, 1.0]); // + operand count
        assert_eq!(
            fv.names(),
            vec![
                "-n.VAL",
                "-e.VAL",
                "operand0.mNodes",
                "operand0.mEdges",
                "operand0.COUNT"
            ]
        );
    }

    #[test]
    fn defaults_fill_absent_options() {
        let t = route_translator();
        let (fv, _) = t.translate(&args(&["graph"]), &graph_vfs()).unwrap();
        assert_eq!(fv.get("-n.VAL"), Some(&FeatureValue::Num(1.0)));
        assert_eq!(fv.get("-e.VAL"), Some(&FeatureValue::Num(0.0)));
    }

    #[test]
    fn aliases_resolve_to_the_same_option() {
        let t = route_translator();
        let vfs = graph_vfs();
        let (a, _) = t.translate(&args(&["-e", "graph"]), &vfs).unwrap();
        let (b, _) = t.translate(&args(&["--echo", "graph"]), &vfs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.get("-e.VAL"), Some(&FeatureValue::Num(1.0)));
    }

    #[test]
    fn multiple_operands_aggregate_by_sum() {
        let t = route_translator();
        let mut vfs = graph_vfs();
        vfs.write("g2", "50\n1 2\n3 4\n");
        let (fv, _) = t.translate(&args(&["graph", "g2"]), &vfs).unwrap();
        assert_eq!(fv.get("operand0.mNodes"), Some(&FeatureValue::Num(150.0)));
        assert_eq!(fv.get("operand0.mEdges"), Some(&FeatureValue::Num(1002.0)));
        assert_eq!(fv.get("operand0.COUNT"), Some(&FeatureValue::Num(2.0)));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let t = route_translator();
        assert!(matches!(
            t.translate(&args(&["-x", "graph"]), &graph_vfs()),
            Err(XiclError::UnknownOption(_))
        ));
    }

    #[test]
    fn missing_argument_is_rejected() {
        let t = route_translator();
        assert!(matches!(
            t.translate(&args(&["-n"]), &graph_vfs()),
            Err(XiclError::MissingArgument(_))
        ));
    }

    #[test]
    fn negative_numbers_are_operands_not_options() {
        let spec_text = "operand {position=1; type=num; attr=VAL}";
        let t = Translator::new(spec::parse(spec_text).unwrap(), Registry::with_predefined());
        let (fv, _) = t.translate(&args(&["-5"]), &Vfs::new()).unwrap();
        assert_eq!(fv.get("operand0.VAL"), Some(&FeatureValue::Num(-5.0)));
    }

    #[test]
    fn missing_file_is_reported() {
        let t = route_translator();
        assert!(matches!(
            t.translate(&args(&["nope"]), &Vfs::new()),
            Err(XiclError::FileNotFound(_))
        ));
    }

    #[test]
    fn stats_count_work() {
        let t = route_translator();
        let (_, stats) = t
            .translate(&args(&["-n", "3", "graph"]), &graph_vfs())
            .unwrap();
        assert_eq!(stats.tokens_scanned, 3);
        assert!(stats.extractions >= 4);
        assert!(stats.work_units > 0);
    }

    #[test]
    fn unregistered_attr_is_an_error() {
        let t = Translator::new(
            spec::parse("option {name=-q; type=num; attr=mMissing; default=0}").unwrap(),
            Registry::with_predefined(),
        );
        assert!(matches!(
            t.translate(&[], &Vfs::new()),
            Err(XiclError::UnknownExtractor(_))
        ));
    }

    #[test]
    fn vector_layout_is_input_independent() {
        let t = route_translator();
        let vfs = graph_vfs();
        let (a, _) = t.translate(&args(&["graph"]), &vfs).unwrap();
        let (b, _) = t
            .translate(&args(&["-n", "9", "--echo", "graph", "graph"]), &vfs)
            .unwrap();
        assert_eq!(a.names(), b.names());
    }
}
