//! Property tests for the learning substrate: tree training invariants,
//! cross-validation bounds and confidence dynamics.

use proptest::prelude::*;

use evovm_learn::confidence::ConfidenceTracker;
use evovm_learn::cv;
use evovm_learn::dataset::{Dataset, Raw};
use evovm_learn::tree::{ClassificationTree, TreeParams};
use evovm_learn::MajorityClassifier;

fn arb_rows() -> impl Strategy<Value = Vec<(f64, f64, u16)>> {
    proptest::collection::vec(
        (
            (-1000i32..1000).prop_map(f64::from),
            (-1000i32..1000).prop_map(f64::from),
            0u16..4,
        ),
        1..40,
    )
}

fn dataset(rows: &[(f64, f64, u16)]) -> Dataset {
    let mut d = Dataset::new();
    for &(x, y, label) in rows {
        d.push(
            &[("x".to_owned(), Raw::Num(x)), ("y".to_owned(), Raw::Num(y))],
            label,
        )
        .expect("consistent schema");
    }
    d
}

proptest! {
    /// With unlimited depth, a tree memorizes any dataset whose labels
    /// are a function of the features (resubstitution accuracy 1.0).
    #[test]
    fn trees_memorize_functional_data(rows in arb_rows()) {
        // Deduplicate conflicting rows: make the label a function of x,y.
        let rows: Vec<(f64, f64, u16)> = rows
            .into_iter()
            .map(|(x, y, _)| (x, y, (((x as i64).unsigned_abs() + (y as i64).unsigned_abs()) % 3) as u16))
            .collect();
        let d = dataset(&rows);
        let tree = ClassificationTree::fit(
            &d,
            &TreeParams { max_depth: 24, ..TreeParams::default() },
        );
        for (row, &label) in d.rows().iter().zip(d.labels()) {
            prop_assert_eq!(tree.predict(row), label);
        }
    }

    /// Predictions always come from the training label set.
    #[test]
    fn predictions_are_seen_labels(rows in arb_rows(), probe_x in -2000.0..2000.0f64, probe_y in -2000.0..2000.0f64) {
        let d = dataset(&rows);
        let tree = ClassificationTree::fit(&d, &TreeParams::default());
        let classes = d.classes();
        let encoded = d
            .encode(&[
                ("x".to_owned(), Raw::Num(probe_x)),
                ("y".to_owned(), Raw::Num(probe_y)),
            ])
            .expect("same schema");
        prop_assert!(classes.contains(&tree.predict(&encoded)));
    }

    /// Used features are always valid column indices, and a tree never
    /// splits on more features than the schema has.
    #[test]
    fn used_features_are_well_formed(rows in arb_rows()) {
        let d = dataset(&rows);
        let tree = ClassificationTree::fit(&d, &TreeParams::default());
        let used = tree.used_features();
        prop_assert!(used.len() <= d.columns().len());
        prop_assert!(used.iter().all(|&i| i < d.columns().len()));
    }

    /// Cross-validated accuracy is a proportion.
    #[test]
    fn cv_accuracy_is_bounded(rows in arb_rows(), k in 2usize..8) {
        let d = dataset(&rows);
        let acc = cv::k_fold_accuracy(&d, k, &TreeParams::default());
        prop_assert!((0.0..=1.0).contains(&acc), "acc = {acc}");
    }

    /// Confidence stays in [0, 1] under any accuracy sequence and is
    /// monotone in each individual update's accuracy.
    #[test]
    fn confidence_is_bounded_and_monotone(accs in proptest::collection::vec(0.0..=1.0f64, 1..30)) {
        let mut c = ConfidenceTracker::default();
        for &a in &accs {
            let before = c.value();
            c.update(a);
            prop_assert!((0.0..=1.0).contains(&c.value()));
            // A perfect run never lowers confidence; a zero run never
            // raises it.
            if a == 1.0 {
                prop_assert!(c.value() >= before);
            }
            if a == 0.0 {
                prop_assert!(c.value() <= before);
            }
        }
        prop_assert_eq!(c.updates(), accs.len() as u64);
    }

    /// The majority classifier predicts a label that occurs at least as
    /// often as any other.
    #[test]
    fn majority_is_a_mode(labels in proptest::collection::vec(0u16..6, 1..50)) {
        let mut m = MajorityClassifier::new();
        for &l in &labels {
            m.observe(l);
        }
        let predicted = m.predict().expect("nonempty");
        let count = |l: u16| labels.iter().filter(|&&x| x == l).count();
        let predicted_count = count(predicted);
        for l in 0..6 {
            prop_assert!(predicted_count >= count(l));
        }
    }

    /// Tree serialization round-trips and preserves predictions.
    #[test]
    fn tree_serde_roundtrip(rows in arb_rows()) {
        let d = dataset(&rows);
        let tree = ClassificationTree::fit(&d, &TreeParams::default());
        let json = serde_json::to_string(&tree).expect("serializes");
        let back: ClassificationTree = serde_json::from_str(&json).expect("deserializes");
        for row in d.rows() {
            prop_assert_eq!(tree.predict(row), back.predict(row));
        }
    }
}
