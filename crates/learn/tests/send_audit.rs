//! Thread-safety audit: the campaign engine moves learned state across
//! worker threads, so every type that ends up inside an optimizer
//! backend — datasets, fitted trees, the confidence tracker — must be
//! `Send`, and the read-shared ones `Sync`. Compile-time only; a
//! regression (e.g. an `Rc` slipping into a tree node) fails the build
//! of this test, not just the engine crate.

use evovm_learn::{
    ClassificationTree, ConfidenceTracker, Dataset, DatasetError, Encoded, MajorityClassifier,
    TreeParams,
};

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

#[test]
fn learned_state_crosses_threads() {
    assert_send::<Dataset>();
    assert_send::<ClassificationTree>();
    assert_send::<ConfidenceTracker>();
    assert_send::<MajorityClassifier>();
    assert_send::<TreeParams>();
    assert_send::<Encoded>();
    assert_send::<DatasetError>();

    assert_sync::<Dataset>();
    assert_sync::<ClassificationTree>();
    assert_sync::<TreeParams>();
}
