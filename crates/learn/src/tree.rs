//! Classification trees (the paper's §IV-B learning technique).
//!
//! A CART-style tree over mixed numeric/categorical features, selecting
//! splits by information gain (entropy reduction). Numeric columns split
//! on thresholds (midpoints between distinct sorted values); categorical
//! columns split one-vs-rest on a category.
//!
//! Two properties the paper relies on fall out of the construction:
//!
//! - **automatic feature selection** — features that never reduce
//!   impurity (e.g. options that always hold their default) simply never
//!   appear in the tree ([`ClassificationTree::used_features`]);
//! - **interpretability** — the tree renders as nested if/else questions
//!   ([`ClassificationTree::render`]).

use serde::{Deserialize, Serialize};

use crate::dataset::{Column, Dataset, Encoded, FeatureKind};

/// Tree construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Do not split nodes smaller than this.
    pub min_samples_split: usize,
    /// Ignore splits with information gain below this.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 8,
            min_samples_split: 2,
            // Zero-gain splits are allowed (bounded by max_depth): greedy
            // gain alone cannot enter XOR-shaped interactions, where the
            // first split is uninformative but its children are pure.
            min_gain: 0.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        label: u16,
    },
    SplitNum {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    SplitCat {
        feature: usize,
        category: u32,
        eq: Box<Node>,
        ne: Box<Node>,
    },
}

/// A trained classification tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationTree {
    root: Node,
    columns: Vec<Column>,
}

impl ClassificationTree {
    /// Fit a tree to `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty — fit trees only after at least one
    /// training example exists.
    pub fn fit(data: &Dataset, params: &TreeParams) -> ClassificationTree {
        assert!(!data.is_empty(), "cannot fit a tree to an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = build(data, &indices, params, 0);
        ClassificationTree {
            root,
            columns: data.columns().to_vec(),
        }
    }

    /// Predict the label of an encoded row.
    pub fn predict(&self, row: &[Encoded]) -> u16 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::SplitNum {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = match row[*feature] {
                        Encoded::Num(v) => v,
                        Encoded::Cat(_) => f64::NAN,
                    };
                    node = if v <= *threshold { left } else { right };
                }
                Node::SplitCat {
                    feature,
                    category,
                    eq,
                    ne,
                } => {
                    let c = match row[*feature] {
                        Encoded::Cat(c) => c,
                        Encoded::Num(_) => u32::MAX,
                    };
                    node = if c == *category { eq } else { ne };
                }
            }
        }
    }

    /// Column indices of features the tree actually splits on — the
    /// paper's "used features" (Table I).
    pub fn used_features(&self) -> Vec<usize> {
        let mut v = Vec::new();
        collect_features(&self.root, &mut v);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of nodes (decision + leaf).
    pub fn node_count(&self) -> usize {
        count(&self.root)
    }

    /// Render the tree as indented if/else questions.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_node(&self.root, &self.columns, 0, &mut out);
        out
    }
}

fn collect_features(node: &Node, out: &mut Vec<usize>) {
    match node {
        Node::Leaf { .. } => {}
        Node::SplitNum {
            feature,
            left,
            right,
            ..
        } => {
            out.push(*feature);
            collect_features(left, out);
            collect_features(right, out);
        }
        Node::SplitCat {
            feature, eq, ne, ..
        } => {
            out.push(*feature);
            collect_features(eq, out);
            collect_features(ne, out);
        }
    }
}

fn count(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::SplitNum { left, right, .. } => 1 + count(left) + count(right),
        Node::SplitCat { eq, ne, .. } => 1 + count(eq) + count(ne),
    }
}

fn render_node(node: &Node, columns: &[Column], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth);
    match node {
        Node::Leaf { label } => out.push_str(&format!("{pad}=> class {label}\n")),
        Node::SplitNum {
            feature,
            threshold,
            left,
            right,
        } => {
            out.push_str(&format!(
                "{pad}{} <= {threshold}?\n",
                columns[*feature].name
            ));
            render_node(left, columns, depth + 1, out);
            out.push_str(&format!("{pad}else:\n"));
            render_node(right, columns, depth + 1, out);
        }
        Node::SplitCat {
            feature,
            category,
            eq,
            ne,
        } => {
            let cat_name = columns[*feature]
                .categories
                .get(*category as usize)
                .map_or("<unseen>", String::as_str);
            out.push_str(&format!(
                "{pad}{} == {cat_name:?}?\n",
                columns[*feature].name
            ));
            render_node(eq, columns, depth + 1, out);
            out.push_str(&format!("{pad}else:\n"));
            render_node(ne, columns, depth + 1, out);
        }
    }
}

fn build(data: &Dataset, indices: &[usize], params: &TreeParams, depth: usize) -> Node {
    let majority = majority_label(data, indices);
    if depth >= params.max_depth
        || indices.len() < params.min_samples_split
        || is_pure(data, indices)
    {
        return Node::Leaf { label: majority };
    }
    let parent_entropy = entropy(data, indices);
    let mut best: Option<(f64, Split)> = None;
    for feature in 0..data.columns().len() {
        for split in candidate_splits(data, indices, feature) {
            let (l, r) = partition(data, indices, &split);
            if l.is_empty() || r.is_empty() {
                continue;
            }
            let n = indices.len() as f64;
            let children =
                (l.len() as f64 / n) * entropy(data, &l) + (r.len() as f64 / n) * entropy(data, &r);
            let gain = parent_entropy - children;
            if gain >= params.min_gain && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                best = Some((gain, split));
            }
        }
    }
    match best {
        None => Node::Leaf { label: majority },
        Some((_, split)) => {
            let (l, r) = partition(data, indices, &split);
            let left = Box::new(build(data, &l, params, depth + 1));
            let right = Box::new(build(data, &r, params, depth + 1));
            match split {
                Split::Num { feature, threshold } => Node::SplitNum {
                    feature,
                    threshold,
                    left,
                    right,
                },
                Split::Cat { feature, category } => Node::SplitCat {
                    feature,
                    category,
                    eq: left,
                    ne: right,
                },
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Split {
    Num { feature: usize, threshold: f64 },
    Cat { feature: usize, category: u32 },
}

fn partition(data: &Dataset, indices: &[usize], split: &Split) -> (Vec<usize>, Vec<usize>) {
    let mut l = Vec::new();
    let mut r = Vec::new();
    for &i in indices {
        let goes_left = match split {
            Split::Num { feature, threshold } => match data.rows()[i][*feature] {
                Encoded::Num(v) => v <= *threshold,
                Encoded::Cat(_) => false,
            },
            Split::Cat { feature, category } => match data.rows()[i][*feature] {
                Encoded::Cat(c) => c == *category,
                Encoded::Num(_) => false,
            },
        };
        if goes_left {
            l.push(i);
        } else {
            r.push(i);
        }
    }
    (l, r)
}

fn candidate_splits(data: &Dataset, indices: &[usize], feature: usize) -> Vec<Split> {
    match data.columns()[feature].kind {
        FeatureKind::Numeric => {
            let mut values: Vec<f64> = indices
                .iter()
                .filter_map(|&i| match data.rows()[i][feature] {
                    Encoded::Num(v) => Some(v),
                    Encoded::Cat(_) => None,
                })
                .collect();
            values.sort_by(f64::total_cmp);
            values.dedup();
            values
                .windows(2)
                .map(|w| Split::Num {
                    feature,
                    threshold: (w[0] + w[1]) / 2.0,
                })
                .collect()
        }
        FeatureKind::Categorical => {
            let mut cats: Vec<u32> = indices
                .iter()
                .filter_map(|&i| match data.rows()[i][feature] {
                    Encoded::Cat(c) => Some(c),
                    Encoded::Num(_) => None,
                })
                .collect();
            cats.sort_unstable();
            cats.dedup();
            cats.into_iter()
                .map(|category| Split::Cat { feature, category })
                .collect()
        }
    }
}

fn is_pure(data: &Dataset, indices: &[usize]) -> bool {
    let first = data.labels()[indices[0]];
    indices.iter().all(|&i| data.labels()[i] == first)
}

fn majority_label(data: &Dataset, indices: &[usize]) -> u16 {
    let mut counts: Vec<(u16, usize)> = Vec::new();
    for &i in indices {
        let label = data.labels()[i];
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => counts.push((label, 1)),
        }
    }
    // Ties break toward the smaller label for determinism.
    counts.sort_by_key(|&(l, c)| (std::cmp::Reverse(c), l));
    counts[0].0
}

fn entropy(data: &Dataset, indices: &[usize]) -> f64 {
    let mut counts: Vec<(u16, usize)> = Vec::new();
    for &i in indices {
        let label = data.labels()[i];
        match counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => counts.push((label, 1)),
        }
    }
    let n = indices.len() as f64;
    -counts
        .iter()
        .map(|&(_, c)| {
            let p = c as f64 / n;
            p * p.log2()
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Raw;

    fn make_dataset(rows: &[(f64, &str, u16)]) -> Dataset {
        let mut d = Dataset::new();
        for &(n, c, label) in rows {
            d.push(
                &[
                    ("x".to_owned(), Raw::Num(n)),
                    ("kind".to_owned(), Raw::Cat(c.to_owned())),
                ],
                label,
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn learns_a_numeric_threshold() {
        let d = make_dataset(&[
            (1.0, "a", 0),
            (2.0, "a", 0),
            (3.0, "a", 0),
            (10.0, "a", 1),
            (11.0, "a", 1),
            (12.0, "a", 1),
        ]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        assert_eq!(
            t.predict(
                &d.encode(&[
                    ("x".to_owned(), Raw::Num(2.5)),
                    ("kind".to_owned(), Raw::Cat("a".into()))
                ])
                .unwrap()
            ),
            0
        );
        assert_eq!(
            t.predict(
                &d.encode(&[
                    ("x".to_owned(), Raw::Num(100.0)),
                    ("kind".to_owned(), Raw::Cat("a".into()))
                ])
                .unwrap()
            ),
            1
        );
        // Only feature 0 is informative.
        assert_eq!(t.used_features(), vec![0]);
    }

    #[test]
    fn learns_a_categorical_split() {
        let d = make_dataset(&[
            (5.0, "xml", 0),
            (5.0, "xml", 0),
            (5.0, "pdf", 1),
            (5.0, "pdf", 1),
        ]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        assert_eq!(t.used_features(), vec![1]);
        let enc = d
            .encode(&[
                ("x".to_owned(), Raw::Num(5.0)),
                ("kind".to_owned(), Raw::Cat("pdf".to_owned())),
            ])
            .unwrap();
        assert_eq!(t.predict(&enc), 1);
    }

    #[test]
    fn pure_dataset_is_a_single_leaf() {
        let d = make_dataset(&[(1.0, "a", 3), (2.0, "b", 3), (9.0, "c", 3)]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        assert_eq!(t.node_count(), 1);
        assert!(t.used_features().is_empty());
        let enc = d
            .encode(&[
                ("x".to_owned(), Raw::Num(42.0)),
                ("kind".to_owned(), Raw::Cat("zzz".to_owned())),
            ])
            .unwrap();
        assert_eq!(t.predict(&enc), 3);
    }

    #[test]
    fn constant_features_never_appear() {
        // Feature 0 is constant (a disabled option at its default);
        // feature 1 fully determines the label.
        let d = make_dataset(&[(7.0, "s", 0), (7.0, "m", 1), (7.0, "s", 0), (7.0, "m", 1)]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        assert_eq!(t.used_features(), vec![1]);
    }

    #[test]
    fn max_depth_limits_growth() {
        let rows: Vec<(f64, &str, u16)> =
            (0..64).map(|i| (i as f64, "a", (i % 4) as u16)).collect();
        let d = make_dataset(&rows);
        let shallow = ClassificationTree::fit(
            &d,
            &TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
        );
        let deep = ClassificationTree::fit(&d, &TreeParams::default());
        assert!(shallow.node_count() <= 3);
        assert!(deep.node_count() > shallow.node_count());
    }

    #[test]
    fn xor_requires_depth_two() {
        let d = make_dataset(&[
            (0.0, "a", 0),
            (0.0, "b", 1),
            (1.0, "a", 1),
            (1.0, "b", 0),
            (0.0, "a", 0),
            (0.0, "b", 1),
            (1.0, "a", 1),
            (1.0, "b", 0),
        ]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        for (x, k, want) in [
            (0.0, "a", 0u16),
            (0.0, "b", 1),
            (1.0, "a", 1),
            (1.0, "b", 0),
        ] {
            let enc = d
                .encode(&[
                    ("x".to_owned(), Raw::Num(x)),
                    ("kind".to_owned(), Raw::Cat(k.to_owned())),
                ])
                .unwrap();
            assert_eq!(t.predict(&enc), want, "xor({x}, {k})");
        }
        assert_eq!(t.used_features(), vec![0, 1]);
    }

    #[test]
    fn render_mentions_feature_names() {
        let d = make_dataset(&[(1.0, "a", 0), (9.0, "a", 1)]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        let text = t.render();
        assert!(text.contains("x <="), "{text}");
        assert!(text.contains("class 0"), "{text}");
    }

    #[test]
    fn serde_roundtrip() {
        let d = make_dataset(&[(1.0, "a", 0), (9.0, "b", 1)]);
        let t = ClassificationTree::fit(&d, &TreeParams::default());
        let json = serde_json::to_string(&t).unwrap();
        let back: ClassificationTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
