//! Baseline classifiers used as experimental controls and by the
//! repository-based (`Rep`) optimizer, which learns a single
//! input-oblivious answer.

use serde::{Deserialize, Serialize};

/// Predicts the majority class of its training labels, ignoring features —
/// exactly the information an input-oblivious history-based optimizer has.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MajorityClassifier {
    counts: Vec<(u16, u64)>,
}

impl MajorityClassifier {
    /// An empty classifier.
    pub fn new() -> MajorityClassifier {
        MajorityClassifier::default()
    }

    /// Record one observed label.
    pub fn observe(&mut self, label: u16) {
        match self.counts.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += 1,
            None => self.counts.push((label, 1)),
        }
    }

    /// The majority label (ties break toward the smaller label); `None`
    /// before any observation.
    pub fn predict(&self) -> Option<u16> {
        self.counts
            .iter()
            .max_by_key(|&&(l, c)| (c, std::cmp::Reverse(l)))
            .map(|&(l, _)| l)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&(_, c)| c).sum()
    }

    /// The fraction of observations matching the majority label — a
    /// resubstitution accuracy estimate for this classifier.
    pub fn purity(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let max = self.counts.iter().map(|&(_, c)| c).max().unwrap_or(0);
        max as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicts_none() {
        assert_eq!(MajorityClassifier::new().predict(), None);
    }

    #[test]
    fn majority_wins() {
        let mut m = MajorityClassifier::new();
        for l in [2, 1, 2, 2, 0] {
            m.observe(l);
        }
        assert_eq!(m.predict(), Some(2));
        assert_eq!(m.total(), 5);
        assert!((m.purity() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ties_break_to_smaller_label() {
        let mut m = MajorityClassifier::new();
        m.observe(3);
        m.observe(1);
        assert_eq!(m.predict(), Some(1));
    }
}
