//! Learning substrate of the evolvable VM.
//!
//! Implements the statistical machinery of the paper's §IV:
//!
//! - [`dataset`] — encoded training sets with mixed numeric/categorical
//!   features (the XICL translator's output becomes rows here);
//! - [`tree`] — CART-style classification trees with entropy splits, the
//!   paper's model of choice for input→optimization-level mapping;
//! - [`cv`] — deterministic k-fold cross-validation;
//! - [`confidence`] — the decayed-accuracy confidence tracker gating
//!   discriminative prediction (`conf ← (1−γ)·conf + γ·acc`);
//! - [`baseline`] — input-oblivious majority classifiers, the information
//!   ceiling of repository-based optimization.
//!
//! # Example
//!
//! ```
//! use evovm_learn::dataset::{Dataset, Raw};
//! use evovm_learn::tree::{ClassificationTree, TreeParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = Dataset::new();
//! for (size, level) in [(10.0, 0u16), (20.0, 0), (500.0, 2), (900.0, 2)] {
//!     data.push(&[("input.SIZE".to_owned(), Raw::Num(size))], level)?;
//! }
//! let tree = ClassificationTree::fit(&data, &TreeParams::default());
//! let small = data.encode(&[("input.SIZE".to_owned(), Raw::Num(15.0))])?;
//! assert_eq!(tree.predict(&small), 0);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod confidence;
pub mod cv;
pub mod dataset;
pub mod tree;

pub use baseline::MajorityClassifier;
pub use confidence::ConfidenceTracker;
pub use dataset::{CostDataset, CostSample, Dataset, DatasetError, Encoded, FeatureKind, Raw};
pub use tree::{ClassificationTree, TreeParams};
