//! Training datasets: encoded feature rows plus class labels.
//!
//! A [`Dataset`] owns a *schema* — the ordered feature names and kinds —
//! and encodes every row against it, interning categorical values to
//! integer ids. The schema is fixed by the first row (in the evolvable VM
//! it comes from the XICL spec, so all runs of an application agree).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Ordered, threshold-splittable.
    Numeric,
    /// Unordered, equality-splittable.
    Categorical,
}

/// An encoded feature value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Encoded {
    /// Numeric value.
    Num(f64),
    /// Interned category id ([`UNSEEN_CATEGORY`] for values never seen in
    /// training).
    Cat(u32),
}

/// Category id used for values absent from the training data.
pub const UNSEEN_CATEGORY: u32 = u32::MAX;

/// One column of the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Feature name.
    pub name: String,
    /// Feature kind.
    pub kind: FeatureKind,
    /// Interned categories (empty for numeric columns).
    pub categories: Vec<String>,
}

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row's layout does not match the schema.
    SchemaMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A row mixed kinds within a column.
    KindMismatch {
        /// The column name.
        column: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::SchemaMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            DatasetError::KindMismatch { column } => {
                write!(
                    f,
                    "column `{column}` saw both numeric and categorical values"
                )
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A raw (not yet interned) feature value.
#[derive(Debug, Clone, PartialEq)]
pub enum Raw {
    /// Numeric.
    Num(f64),
    /// Categorical.
    Cat(String),
}

/// An encoded training set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    columns: Vec<Column>,
    rows: Vec<Vec<Encoded>>,
    labels: Vec<u16>,
}

impl Dataset {
    /// An empty dataset; the schema is fixed by the first pushed row.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// The schema columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The encoded rows.
    pub fn rows(&self) -> &[Vec<Encoded>] {
        &self.rows
    }

    /// The labels, parallel to [`Dataset::rows`].
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Distinct labels present, sorted.
    pub fn classes(&self) -> Vec<u16> {
        let mut v = self.labels.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Append a row of named raw values and its label.
    ///
    /// # Errors
    ///
    /// [`DatasetError::SchemaMismatch`] if the layout differs from the
    /// schema, [`DatasetError::KindMismatch`] if a column changes kind.
    pub fn push(&mut self, values: &[(String, Raw)], label: u16) -> Result<(), DatasetError> {
        if self.columns.is_empty() && self.rows.is_empty() {
            self.columns = values
                .iter()
                .map(|(name, v)| Column {
                    name: name.clone(),
                    kind: match v {
                        Raw::Num(_) => FeatureKind::Numeric,
                        Raw::Cat(_) => FeatureKind::Categorical,
                    },
                    categories: Vec::new(),
                })
                .collect();
        }
        if values.len() != self.columns.len() {
            return Err(DatasetError::SchemaMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        let mut row = Vec::with_capacity(values.len());
        for (col_idx, (_, raw)) in values.iter().enumerate() {
            let column = &mut self.columns[col_idx];
            let encoded = match (column.kind, raw) {
                (FeatureKind::Numeric, Raw::Num(v)) => Encoded::Num(*v),
                (FeatureKind::Categorical, Raw::Cat(s)) => {
                    Encoded::Cat(intern(&mut column.categories, s))
                }
                _ => {
                    return Err(DatasetError::KindMismatch {
                        column: column.name.clone(),
                    })
                }
            };
            row.push(encoded);
        }
        self.rows.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// Encode a prediction-time row against the schema (unseen categories
    /// map to [`UNSEEN_CATEGORY`]; layout mismatches are an error).
    ///
    /// # Errors
    ///
    /// [`DatasetError::SchemaMismatch`] / [`DatasetError::KindMismatch`]
    /// as in [`Dataset::push`].
    pub fn encode(&self, values: &[(String, Raw)]) -> Result<Vec<Encoded>, DatasetError> {
        if values.len() != self.columns.len() {
            return Err(DatasetError::SchemaMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        values
            .iter()
            .zip(&self.columns)
            .map(|((_, raw), column)| match (column.kind, raw) {
                (FeatureKind::Numeric, Raw::Num(v)) => Ok(Encoded::Num(*v)),
                (FeatureKind::Categorical, Raw::Cat(s)) => Ok(Encoded::Cat(
                    column
                        .categories
                        .iter()
                        .position(|c| c == s)
                        .map_or(UNSEEN_CATEGORY, |i| i as u32),
                )),
                _ => Err(DatasetError::KindMismatch {
                    column: column.name.clone(),
                }),
            })
            .collect()
    }

    /// Encode a prediction-time row by *name*, tolerating missing and
    /// extra features: schema columns absent from `values` encode as
    /// `NaN` (numeric) or [`UNSEEN_CATEGORY`] (categorical), which trees
    /// route down their right/else branches; features not in the schema
    /// are ignored. This is what lets the evolvable VM predict at an
    /// interactive point before all runtime features have been published.
    pub fn encode_by_name(&self, values: &[(String, Raw)]) -> Vec<Encoded> {
        self.columns
            .iter()
            .map(|column| {
                let found = values.iter().find(|(n, _)| *n == column.name);
                match (column.kind, found) {
                    (FeatureKind::Numeric, Some((_, Raw::Num(v)))) => Encoded::Num(*v),
                    (FeatureKind::Categorical, Some((_, Raw::Cat(s)))) => Encoded::Cat(
                        column
                            .categories
                            .iter()
                            .position(|c| c == s)
                            .map_or(UNSEEN_CATEGORY, |i| i as u32),
                    ),
                    (FeatureKind::Numeric, _) => Encoded::Num(f64::NAN),
                    (FeatureKind::Categorical, _) => Encoded::Cat(UNSEEN_CATEGORY),
                }
            })
            .collect()
    }

    /// A dataset containing only the rows at `indices` (shared schema).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            columns: self.columns.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

/// One counterfactual cost observation from the compilation-forking data
/// factory: a feature row, the optimization level the forked run executed
/// under, and the run's total virtual cost under that level.
///
/// Samples sharing a `group` come from the *same* fork point (the same
/// snapshot replayed under different levels), so their costs are directly
/// comparable — the group's argmin is the empirically ideal level for
/// that input, which is exactly the label the classification trees train
/// on.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSample {
    /// Fork-point group id; samples with equal groups replay one snapshot.
    pub group: u64,
    /// The feature row (XICL features of the run's input).
    pub features: Vec<(String, Raw)>,
    /// The level label, shifted to `0..=3` (Jikes level + 1).
    pub level: u16,
    /// Total virtual cycles of the whole run under this level.
    pub cost: u64,
}

/// An accumulating set of [`CostSample`]s — the training-data side of the
/// counterfactual fork factory. Unlike [`Dataset`], rows here carry a
/// *cost* rather than a class; [`CostDataset::to_classification`] reduces
/// each fork group to its cheapest level and emits ordinary labelled rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostDataset {
    samples: Vec<CostSample>,
}

impl CostDataset {
    /// An empty cost dataset.
    pub fn new() -> CostDataset {
        CostDataset::default()
    }

    /// Append one cost observation.
    pub fn push(&mut self, sample: CostSample) {
        self.samples.push(sample);
    }

    /// Number of cost samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[CostSample] {
        &self.samples
    }

    /// Distinct group ids, in first-seen order.
    pub fn groups(&self) -> Vec<u64> {
        let mut groups = Vec::new();
        for s in &self.samples {
            if !groups.contains(&s.group) {
                groups.push(s.group);
            }
        }
        groups
    }

    /// Reduce every fork group to its argmin-cost level (ties break to the
    /// lower level, keeping the reduction deterministic) and emit one
    /// classification row per group: the group's feature row labelled with
    /// its empirically best level. The result feeds
    /// [`ClassificationTree::fit`](crate::tree::ClassificationTree::fit)
    /// exactly like the posterior ideal strategies do.
    ///
    /// # Errors
    ///
    /// [`DatasetError`] when groups disagree on the feature schema.
    pub fn to_classification(&self) -> Result<Dataset, DatasetError> {
        let mut dataset = Dataset::new();
        for group in self.groups() {
            let mut best: Option<&CostSample> = None;
            for s in self.samples.iter().filter(|s| s.group == group) {
                let better = match best {
                    None => true,
                    Some(b) => s.cost < b.cost || (s.cost == b.cost && s.level < b.level),
                };
                if better {
                    best = Some(s);
                }
            }
            if let Some(b) = best {
                dataset.push(&b.features, b.level)?;
            }
        }
        Ok(dataset)
    }
}

fn intern(categories: &mut Vec<String>, s: &str) -> u32 {
    match categories.iter().position(|c| c == s) {
        Some(i) => i as u32,
        None => {
            categories.push(s.to_owned());
            (categories.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: f64, cat: &str) -> Vec<(String, Raw)> {
        vec![
            ("size".to_owned(), Raw::Num(n)),
            ("format".to_owned(), Raw::Cat(cat.to_owned())),
        ]
    }

    #[test]
    fn schema_fixed_by_first_row() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        d.push(&row(2.0, "pdf"), 1).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.columns()[0].kind, FeatureKind::Numeric);
        assert_eq!(d.columns()[1].kind, FeatureKind::Categorical);
        assert_eq!(d.columns()[1].categories, vec!["xml", "pdf"]);
        assert_eq!(d.classes(), vec![0, 1]);
    }

    #[test]
    fn categories_are_interned() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        d.push(&row(2.0, "xml"), 0).unwrap();
        d.push(&row(3.0, "pdf"), 1).unwrap();
        assert_eq!(d.rows()[0][1], Encoded::Cat(0));
        assert_eq!(d.rows()[1][1], Encoded::Cat(0));
        assert_eq!(d.rows()[2][1], Encoded::Cat(1));
    }

    #[test]
    fn encode_maps_unseen_to_sentinel() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        let enc = d.encode(&row(9.0, "docx")).unwrap();
        assert_eq!(enc[0], Encoded::Num(9.0));
        assert_eq!(enc[1], Encoded::Cat(UNSEEN_CATEGORY));
    }

    #[test]
    fn mismatches_are_errors() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        assert!(matches!(
            d.push(&[("size".to_owned(), Raw::Num(1.0))], 0),
            Err(DatasetError::SchemaMismatch { .. })
        ));
        let bad = vec![
            ("size".to_owned(), Raw::Cat("oops".to_owned())),
            ("format".to_owned(), Raw::Cat("xml".to_owned())),
        ];
        assert!(matches!(
            d.push(&bad, 0),
            Err(DatasetError::KindMismatch { .. })
        ));
    }

    #[test]
    fn encode_by_name_tolerates_missing_and_extra() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        // Missing the categorical column, extra unknown column, shuffled.
        let partial = vec![
            ("unrelated".to_owned(), Raw::Num(9.0)),
            ("size".to_owned(), Raw::Num(5.0)),
        ];
        let enc = d.encode_by_name(&partial);
        assert_eq!(enc[0], Encoded::Num(5.0));
        assert_eq!(enc[1], Encoded::Cat(UNSEEN_CATEGORY));
        // Fully absent numeric becomes NaN.
        let none = d.encode_by_name(&[]);
        match none[0] {
            Encoded::Num(v) => assert!(v.is_nan()),
            ref other => panic!("expected NaN, got {other:?}"),
        }
    }

    fn cost(group: u64, n: f64, level: u16, cost: u64) -> CostSample {
        CostSample {
            group,
            features: vec![("size".to_owned(), Raw::Num(n))],
            level,
            cost,
        }
    }

    #[test]
    fn cost_dataset_reduces_groups_to_argmin_levels() {
        let mut d = CostDataset::new();
        // Group 0: level 2 is cheapest. Group 1: level 0 is cheapest.
        for (lvl, c) in [(0u16, 900), (1, 500), (2, 100), (3, 400)] {
            d.push(cost(0, 10.0, lvl, c));
        }
        for (lvl, c) in [(0u16, 50), (1, 80), (2, 120), (3, 700)] {
            d.push(cost(1, 99.0, lvl, c));
        }
        assert_eq!(d.len(), 8);
        assert_eq!(d.groups(), vec![0, 1]);
        let c = d.to_classification().unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.labels(), &[2, 0]);
        assert_eq!(c.rows()[0][0], Encoded::Num(10.0));
        assert_eq!(c.rows()[1][0], Encoded::Num(99.0));
    }

    #[test]
    fn cost_dataset_ties_break_to_the_lower_level() {
        let mut d = CostDataset::new();
        d.push(cost(7, 1.0, 3, 100));
        d.push(cost(7, 1.0, 1, 100));
        d.push(cost(7, 1.0, 2, 100));
        let c = d.to_classification().unwrap();
        assert_eq!(c.labels(), &[1]);
    }

    #[test]
    fn subset_selects_rows() {
        let mut d = Dataset::new();
        for i in 0..5 {
            d.push(&row(i as f64, "x"), (i % 2) as u16).unwrap();
        }
        let s = d.subset(&[0, 2, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[0, 0, 0]);
    }
}
