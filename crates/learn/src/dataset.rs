//! Training datasets: encoded feature rows plus class labels.
//!
//! A [`Dataset`] owns a *schema* — the ordered feature names and kinds —
//! and encodes every row against it, interning categorical values to
//! integer ids. The schema is fixed by the first row (in the evolvable VM
//! it comes from the XICL spec, so all runs of an application agree).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of a feature column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Ordered, threshold-splittable.
    Numeric,
    /// Unordered, equality-splittable.
    Categorical,
}

/// An encoded feature value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Encoded {
    /// Numeric value.
    Num(f64),
    /// Interned category id ([`UNSEEN_CATEGORY`] for values never seen in
    /// training).
    Cat(u32),
}

/// Category id used for values absent from the training data.
pub const UNSEEN_CATEGORY: u32 = u32::MAX;

/// One column of the schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Feature name.
    pub name: String,
    /// Feature kind.
    pub kind: FeatureKind,
    /// Interned categories (empty for numeric columns).
    pub categories: Vec<String>,
}

/// Errors from dataset construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A row's layout does not match the schema.
    SchemaMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A row mixed kinds within a column.
    KindMismatch {
        /// The column name.
        column: String,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::SchemaMismatch { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            DatasetError::KindMismatch { column } => {
                write!(
                    f,
                    "column `{column}` saw both numeric and categorical values"
                )
            }
        }
    }
}

impl std::error::Error for DatasetError {}

/// A raw (not yet interned) feature value.
#[derive(Debug, Clone, PartialEq)]
pub enum Raw {
    /// Numeric.
    Num(f64),
    /// Categorical.
    Cat(String),
}

/// An encoded training set.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    columns: Vec<Column>,
    rows: Vec<Vec<Encoded>>,
    labels: Vec<u16>,
}

impl Dataset {
    /// An empty dataset; the schema is fixed by the first pushed row.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// The schema columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The encoded rows.
    pub fn rows(&self) -> &[Vec<Encoded>] {
        &self.rows
    }

    /// The labels, parallel to [`Dataset::rows`].
    pub fn labels(&self) -> &[u16] {
        &self.labels
    }

    /// Distinct labels present, sorted.
    pub fn classes(&self) -> Vec<u16> {
        let mut v = self.labels.clone();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Append a row of named raw values and its label.
    ///
    /// # Errors
    ///
    /// [`DatasetError::SchemaMismatch`] if the layout differs from the
    /// schema, [`DatasetError::KindMismatch`] if a column changes kind.
    pub fn push(&mut self, values: &[(String, Raw)], label: u16) -> Result<(), DatasetError> {
        if self.columns.is_empty() && self.rows.is_empty() {
            self.columns = values
                .iter()
                .map(|(name, v)| Column {
                    name: name.clone(),
                    kind: match v {
                        Raw::Num(_) => FeatureKind::Numeric,
                        Raw::Cat(_) => FeatureKind::Categorical,
                    },
                    categories: Vec::new(),
                })
                .collect();
        }
        if values.len() != self.columns.len() {
            return Err(DatasetError::SchemaMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        let mut row = Vec::with_capacity(values.len());
        for (col_idx, (_, raw)) in values.iter().enumerate() {
            let column = &mut self.columns[col_idx];
            let encoded = match (column.kind, raw) {
                (FeatureKind::Numeric, Raw::Num(v)) => Encoded::Num(*v),
                (FeatureKind::Categorical, Raw::Cat(s)) => {
                    Encoded::Cat(intern(&mut column.categories, s))
                }
                _ => {
                    return Err(DatasetError::KindMismatch {
                        column: column.name.clone(),
                    })
                }
            };
            row.push(encoded);
        }
        self.rows.push(row);
        self.labels.push(label);
        Ok(())
    }

    /// Encode a prediction-time row against the schema (unseen categories
    /// map to [`UNSEEN_CATEGORY`]; layout mismatches are an error).
    ///
    /// # Errors
    ///
    /// [`DatasetError::SchemaMismatch`] / [`DatasetError::KindMismatch`]
    /// as in [`Dataset::push`].
    pub fn encode(&self, values: &[(String, Raw)]) -> Result<Vec<Encoded>, DatasetError> {
        if values.len() != self.columns.len() {
            return Err(DatasetError::SchemaMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        values
            .iter()
            .zip(&self.columns)
            .map(|((_, raw), column)| match (column.kind, raw) {
                (FeatureKind::Numeric, Raw::Num(v)) => Ok(Encoded::Num(*v)),
                (FeatureKind::Categorical, Raw::Cat(s)) => Ok(Encoded::Cat(
                    column
                        .categories
                        .iter()
                        .position(|c| c == s)
                        .map_or(UNSEEN_CATEGORY, |i| i as u32),
                )),
                _ => Err(DatasetError::KindMismatch {
                    column: column.name.clone(),
                }),
            })
            .collect()
    }

    /// Encode a prediction-time row by *name*, tolerating missing and
    /// extra features: schema columns absent from `values` encode as
    /// `NaN` (numeric) or [`UNSEEN_CATEGORY`] (categorical), which trees
    /// route down their right/else branches; features not in the schema
    /// are ignored. This is what lets the evolvable VM predict at an
    /// interactive point before all runtime features have been published.
    pub fn encode_by_name(&self, values: &[(String, Raw)]) -> Vec<Encoded> {
        self.columns
            .iter()
            .map(|column| {
                let found = values.iter().find(|(n, _)| *n == column.name);
                match (column.kind, found) {
                    (FeatureKind::Numeric, Some((_, Raw::Num(v)))) => Encoded::Num(*v),
                    (FeatureKind::Categorical, Some((_, Raw::Cat(s)))) => Encoded::Cat(
                        column
                            .categories
                            .iter()
                            .position(|c| c == s)
                            .map_or(UNSEEN_CATEGORY, |i| i as u32),
                    ),
                    (FeatureKind::Numeric, _) => Encoded::Num(f64::NAN),
                    (FeatureKind::Categorical, _) => Encoded::Cat(UNSEEN_CATEGORY),
                }
            })
            .collect()
    }

    /// A dataset containing only the rows at `indices` (shared schema).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            columns: self.columns.clone(),
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }
}

fn intern(categories: &mut Vec<String>, s: &str) -> u32 {
    match categories.iter().position(|c| c == s) {
        Some(i) => i as u32,
        None => {
            categories.push(s.to_owned());
            (categories.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(n: f64, cat: &str) -> Vec<(String, Raw)> {
        vec![
            ("size".to_owned(), Raw::Num(n)),
            ("format".to_owned(), Raw::Cat(cat.to_owned())),
        ]
    }

    #[test]
    fn schema_fixed_by_first_row() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        d.push(&row(2.0, "pdf"), 1).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.columns()[0].kind, FeatureKind::Numeric);
        assert_eq!(d.columns()[1].kind, FeatureKind::Categorical);
        assert_eq!(d.columns()[1].categories, vec!["xml", "pdf"]);
        assert_eq!(d.classes(), vec![0, 1]);
    }

    #[test]
    fn categories_are_interned() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        d.push(&row(2.0, "xml"), 0).unwrap();
        d.push(&row(3.0, "pdf"), 1).unwrap();
        assert_eq!(d.rows()[0][1], Encoded::Cat(0));
        assert_eq!(d.rows()[1][1], Encoded::Cat(0));
        assert_eq!(d.rows()[2][1], Encoded::Cat(1));
    }

    #[test]
    fn encode_maps_unseen_to_sentinel() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        let enc = d.encode(&row(9.0, "docx")).unwrap();
        assert_eq!(enc[0], Encoded::Num(9.0));
        assert_eq!(enc[1], Encoded::Cat(UNSEEN_CATEGORY));
    }

    #[test]
    fn mismatches_are_errors() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        assert!(matches!(
            d.push(&[("size".to_owned(), Raw::Num(1.0))], 0),
            Err(DatasetError::SchemaMismatch { .. })
        ));
        let bad = vec![
            ("size".to_owned(), Raw::Cat("oops".to_owned())),
            ("format".to_owned(), Raw::Cat("xml".to_owned())),
        ];
        assert!(matches!(
            d.push(&bad, 0),
            Err(DatasetError::KindMismatch { .. })
        ));
    }

    #[test]
    fn encode_by_name_tolerates_missing_and_extra() {
        let mut d = Dataset::new();
        d.push(&row(1.0, "xml"), 0).unwrap();
        // Missing the categorical column, extra unknown column, shuffled.
        let partial = vec![
            ("unrelated".to_owned(), Raw::Num(9.0)),
            ("size".to_owned(), Raw::Num(5.0)),
        ];
        let enc = d.encode_by_name(&partial);
        assert_eq!(enc[0], Encoded::Num(5.0));
        assert_eq!(enc[1], Encoded::Cat(UNSEEN_CATEGORY));
        // Fully absent numeric becomes NaN.
        let none = d.encode_by_name(&[]);
        match none[0] {
            Encoded::Num(v) => assert!(v.is_nan()),
            ref other => panic!("expected NaN, got {other:?}"),
        }
    }

    #[test]
    fn subset_selects_rows() {
        let mut d = Dataset::new();
        for i in 0..5 {
            d.push(&row(i as f64, "x"), (i % 2) as u16).unwrap();
        }
        let s = d.subset(&[0, 2, 4]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[0, 0, 0]);
    }
}
