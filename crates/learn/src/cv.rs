//! Cross-validation: estimating a model's quality from its training data.
//!
//! The paper's discriminative prediction uses "cross-validation to compute
//! a confidence level that reflects the quality of the model" (§I). This
//! module provides deterministic k-fold (and leave-one-out) accuracy
//! estimation for classification trees.

use crate::dataset::Dataset;
use crate::tree::{ClassificationTree, TreeParams};

/// Deterministic k-fold cross-validated accuracy.
///
/// Rows are assigned to folds round-robin (`row % k`), so results are
/// reproducible. With fewer rows than folds this degrades gracefully to
/// leave-one-out. Returns a value in `[0, 1]`; an empty dataset scores 0.
pub fn k_fold_accuracy(data: &Dataset, k: usize, params: &TreeParams) -> f64 {
    if data.is_empty() || k == 0 {
        return 0.0;
    }
    let k = k.min(data.len());
    if k < 2 {
        // Can't hold anything out; resubstitution accuracy.
        let tree = ClassificationTree::fit(data, params);
        let correct = data
            .rows()
            .iter()
            .zip(data.labels())
            .filter(|(row, &label)| tree.predict(row) == label)
            .count();
        return correct as f64 / data.len() as f64;
    }
    let mut correct = 0usize;
    for fold in 0..k {
        let train: Vec<usize> = (0..data.len()).filter(|i| i % k != fold).collect();
        let test: Vec<usize> = (0..data.len()).filter(|i| i % k == fold).collect();
        if train.is_empty() {
            continue;
        }
        let tree = ClassificationTree::fit(&data.subset(&train), params);
        for &i in &test {
            if tree.predict(&data.rows()[i]) == data.labels()[i] {
                correct += 1;
            }
        }
    }
    correct as f64 / data.len() as f64
}

/// Leave-one-out accuracy (k = n).
pub fn leave_one_out_accuracy(data: &Dataset, params: &TreeParams) -> f64 {
    k_fold_accuracy(data, data.len(), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Raw;

    fn dataset(rows: &[(f64, u16)]) -> Dataset {
        let mut d = Dataset::new();
        for &(x, label) in rows {
            d.push(&[("x".to_owned(), Raw::Num(x))], label).unwrap();
        }
        d
    }

    #[test]
    fn separable_data_scores_high() {
        let rows: Vec<(f64, u16)> = (0..20).map(|i| (i as f64, u16::from(i >= 10))).collect();
        let acc = k_fold_accuracy(&dataset(&rows), 5, &TreeParams::default());
        assert!(acc >= 0.9, "expected high accuracy, got {acc}");
    }

    #[test]
    fn label_noise_scores_low() {
        // Labels unrelated to the feature: CV should be unimpressive.
        let rows: Vec<(f64, u16)> = (0..20)
            .map(|i| (((i * 7) % 13) as f64, (i % 2) as u16))
            .collect();
        let acc = k_fold_accuracy(&dataset(&rows), 5, &TreeParams::default());
        assert!(acc <= 0.8, "expected low accuracy, got {acc}");
    }

    #[test]
    fn empty_dataset_scores_zero() {
        assert_eq!(
            k_fold_accuracy(&Dataset::new(), 5, &TreeParams::default()),
            0.0
        );
    }

    #[test]
    fn single_row_uses_resubstitution() {
        let acc = k_fold_accuracy(&dataset(&[(1.0, 1)]), 5, &TreeParams::default());
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn loo_matches_kfold_with_k_equals_n() {
        let rows: Vec<(f64, u16)> = (0..8).map(|i| (i as f64, u16::from(i >= 4))).collect();
        let d = dataset(&rows);
        assert_eq!(
            leave_one_out_accuracy(&d, &TreeParams::default()),
            k_fold_accuracy(&d, 8, &TreeParams::default())
        );
    }

    #[test]
    fn deterministic() {
        let rows: Vec<(f64, u16)> = (0..16).map(|i| (i as f64, (i % 3) as u16)).collect();
        let d = dataset(&rows);
        let a = k_fold_accuracy(&d, 4, &TreeParams::default());
        let b = k_fold_accuracy(&d, 4, &TreeParams::default());
        assert_eq!(a, b);
    }
}
