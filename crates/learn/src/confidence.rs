//! The decayed confidence tracker of discriminative prediction.
//!
//! The paper's Figure 7: `conf ← (1 − γ)·conf + γ·acc` after every run,
//! where `acc` is the sample-weighted prediction accuracy of that run.
//! Prediction is only applied when `conf` exceeds the confidence
//! threshold `TH_c`. Both γ and `TH_c` default to the paper's 0.7.

use serde::{Deserialize, Serialize};

/// The paper's default decay factor γ.
pub const DEFAULT_GAMMA: f64 = 0.7;

/// The paper's default confidence threshold `TH_c`.
pub const DEFAULT_THRESHOLD: f64 = 0.7;

/// Decayed-average confidence over per-run prediction accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceTracker {
    conf: f64,
    gamma: f64,
    threshold: f64,
    updates: u64,
}

impl Default for ConfidenceTracker {
    fn default() -> ConfidenceTracker {
        ConfidenceTracker::new(DEFAULT_GAMMA, DEFAULT_THRESHOLD)
    }
}

impl ConfidenceTracker {
    /// Create a tracker with explicit γ and threshold, both in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is outside `[0, 1]`.
    pub fn new(gamma: f64, threshold: f64) -> ConfidenceTracker {
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        ConfidenceTracker {
            conf: 0.0,
            gamma,
            threshold,
            updates: 0,
        }
    }

    /// Current confidence in `[0, 1]` (starts at 0).
    pub fn value(&self) -> f64 {
        self.conf
    }

    /// The confidence threshold `TH_c`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// True when the model is trusted: `conf > TH_c`.
    pub fn is_confident(&self) -> bool {
        self.conf > self.threshold
    }

    /// Fold in one run's prediction accuracy (clamped to `[0, 1]`).
    pub fn update(&mut self, accuracy: f64) {
        let acc = accuracy.clamp(0.0, 1.0);
        self.conf = (1.0 - self.gamma) * self.conf + self.gamma * acc;
        self.updates += 1;
    }

    /// Number of accuracy updates folded in.
    pub fn updates(&self) -> u64 {
        self.updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unconfident() {
        let c = ConfidenceTracker::default();
        assert_eq!(c.value(), 0.0);
        assert!(!c.is_confident());
    }

    #[test]
    fn rises_with_accurate_runs() {
        let mut c = ConfidenceTracker::default();
        c.update(1.0);
        assert!((c.value() - 0.7).abs() < 1e-12);
        assert!(!c.is_confident()); // 0.7 is not > 0.7
        c.update(1.0);
        assert!((c.value() - 0.91).abs() < 1e-12);
        assert!(c.is_confident());
    }

    #[test]
    fn falls_after_bad_runs() {
        let mut c = ConfidenceTracker::default();
        c.update(1.0);
        c.update(1.0);
        assert!(c.is_confident());
        c.update(0.0);
        assert!(!c.is_confident());
        assert!((c.value() - 0.273).abs() < 1e-12);
    }

    #[test]
    fn gamma_weights_recency() {
        let mut fast = ConfidenceTracker::new(0.9, 0.7);
        let mut slow = ConfidenceTracker::new(0.1, 0.7);
        fast.update(1.0);
        slow.update(1.0);
        assert!(fast.value() > slow.value());
    }

    #[test]
    fn accuracy_is_clamped() {
        let mut c = ConfidenceTracker::default();
        c.update(7.0);
        assert!(c.value() <= 1.0);
        c.update(-3.0);
        assert!(c.value() >= 0.0);
        assert_eq!(c.updates(), 2);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn bad_gamma_panics() {
        let _ = ConfidenceTracker::new(1.5, 0.7);
    }
}
