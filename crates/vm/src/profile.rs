//! Run profiles: what the sampling profiler observed during one execution.

use serde::{Deserialize, Serialize};

use evovm_bytecode::{FuncId, Instr};
use evovm_opt::OptLevel;

/// Sentinel for "no previous instruction yet" in the pair recorder.
const NO_PREV: u16 = u16::MAX;

/// Opcode and opcode-pair frequency counters gathered by the dispatch
/// loops when [`crate::VmConfig::profile_dispatch`] is set.
///
/// Counters are indexed by [`Instr::dispatch_class`]: `counts[c]` is how
/// often class `c` retired, and `pairs[prev * N + c]` how often class `c`
/// retired immediately after class `prev` in the *global* retirement
/// order (pairs deliberately span frame switches and event windows, so
/// the fast and reference loops count identically — the dispatch-profile
/// suite asserts it). Pair counts saturate at `u32::MAX` per cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchProfile {
    /// Retirements per dispatch class.
    pub counts: Vec<u64>,
    /// Flat `N×N` pair table, row = predecessor class.
    pub pairs: Vec<u32>,
    /// Class of the most recently retired instruction ([`NO_PREV`] before
    /// the first one).
    prev: u16,
}

impl Default for DispatchProfile {
    fn default() -> DispatchProfile {
        DispatchProfile::new()
    }
}

impl DispatchProfile {
    /// An empty profile sized for the full ISA.
    pub fn new() -> DispatchProfile {
        let n = Instr::DISPATCH_CLASSES;
        DispatchProfile {
            counts: vec![0; n],
            pairs: vec![0; n * n],
            prev: NO_PREV,
        }
    }

    /// Record the retirement of one instruction of `class`.
    #[inline(always)]
    pub fn record(&mut self, class: u16) {
        self.counts[class as usize] += 1;
        if self.prev != NO_PREV {
            let cell =
                &mut self.pairs[self.prev as usize * Instr::DISPATCH_CLASSES + class as usize];
            *cell = cell.saturating_add(1);
        }
        self.prev = class;
    }

    /// Total retirements recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another profile's counters into this one (pair adjacency at
    /// the seam is not synthesized — used for aggregating across runs).
    pub fn absorb(&mut self, other: &DispatchProfile) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.pairs.iter_mut().zip(&other.pairs) {
            *a = a.saturating_add(*b);
        }
    }

    /// Classes ordered by retirement count (descending, ties by class),
    /// zero-count classes excluded.
    pub fn top_classes(&self) -> Vec<(u16, u64)> {
        let mut v: Vec<(u16, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(c, &n)| (c as u16, n))
            .collect();
        v.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        v
    }

    /// Pairs ordered by frequency (descending, ties by classes),
    /// zero-count pairs excluded.
    pub fn top_pairs(&self) -> Vec<(u16, u16, u64)> {
        let n = Instr::DISPATCH_CLASSES;
        let mut v: Vec<(u16, u16, u64)> = self
            .pairs
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| ((i / n) as u16, (i % n) as u16, u64::from(c)))
            .collect();
        v.sort_by_key(|&(a, b, c)| (std::cmp::Reverse(c), a, b));
        v
    }
}

/// One recompilation performed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecompileEvent {
    /// Virtual cycle timestamp.
    pub at_cycles: u64,
    /// The recompiled method.
    pub method: FuncId,
    /// Level before.
    pub from: OptLevel,
    /// Level after.
    pub to: OptLevel,
}

/// The profile of one finished run.
///
/// Indexing is by [`FuncId::index`]; every vector has one entry per
/// function of the program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Timer samples attributed to each method.
    pub samples: Vec<u64>,
    /// Invocation counts.
    pub invocations: Vec<u64>,
    /// The level each method's code had when the run ended (methods never
    /// invoked stay at `Baseline`).
    pub final_levels: Vec<OptLevel>,
    /// All recompilations, in order.
    pub recompilations: Vec<RecompileEvent>,
    /// Deepest call stack observed (frames, entry included). Tracked at
    /// every invoke in both dispatch loops, so it is exact in either mode.
    pub peak_call_depth: usize,
    /// Largest frame-arena occupancy observed, in value slots. Exact in
    /// *both* dispatch loops: arena length only grows at frame pushes and
    /// at net-pushing instructions, and both loops track the high-water
    /// mark at exactly those points — the soundness suite asserts the two
    /// modes agree and checks the value against the static
    /// [`frame bounds`](evovm_bytecode::analysis::FrameBounds).
    pub peak_arena_slots: usize,
    /// Opcode/opcode-pair counters, present when the VM ran with
    /// [`crate::VmConfig::profile_dispatch`] set. (Serialized as `null`
    /// when absent; the serde shim reads a missing field as `None`.)
    pub dispatch: Option<DispatchProfile>,
}

impl RunProfile {
    /// Create a profile for a program with `n` functions.
    pub fn new(n: usize) -> RunProfile {
        RunProfile {
            samples: vec![0; n],
            invocations: vec![0; n],
            final_levels: vec![OptLevel::Baseline; n],
            recompilations: Vec::new(),
            peak_call_depth: 0,
            peak_arena_slots: 0,
            dispatch: None,
        }
    }

    /// Total samples taken.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Methods ordered by hotness (most samples first), ties by id.
    pub fn hottest(&self) -> Vec<FuncId> {
        let mut ids: Vec<usize> = (0..self.samples.len()).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(self.samples[i]), i));
        ids.into_iter().map(|i| FuncId(i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_orders_by_samples_then_id() {
        let mut p = RunProfile::new(3);
        p.samples = vec![5, 9, 5];
        assert_eq!(p.hottest(), vec![FuncId(1), FuncId(0), FuncId(2)]);
        assert_eq!(p.total_samples(), 19);
    }

    #[test]
    fn dispatch_profile_counts_classes_and_pairs() {
        let mut d = DispatchProfile::new();
        let load = Instr::Load(0).dispatch_class();
        let iadd = Instr::IAdd.dispatch_class();
        d.record(load);
        d.record(load);
        d.record(iadd);
        assert_eq!(d.total(), 3);
        assert_eq!(d.top_classes()[0], (load, 2));
        // Pairs: (load,load) once, (load,iadd) once; the first record has
        // no predecessor.
        assert_eq!(d.top_pairs(), vec![(load, load, 1), (load, iadd, 1)]);
        let mut e = DispatchProfile::new();
        e.record(iadd);
        e.absorb(&d);
        assert_eq!(e.counts[iadd as usize], 2);
        assert_eq!(e.total(), 4);
    }
}
