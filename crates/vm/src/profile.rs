//! Run profiles: what the sampling profiler observed during one execution.

use serde::{Deserialize, Serialize};

use evovm_bytecode::FuncId;
use evovm_opt::OptLevel;

/// One recompilation performed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecompileEvent {
    /// Virtual cycle timestamp.
    pub at_cycles: u64,
    /// The recompiled method.
    pub method: FuncId,
    /// Level before.
    pub from: OptLevel,
    /// Level after.
    pub to: OptLevel,
}

/// The profile of one finished run.
///
/// Indexing is by [`FuncId::index`]; every vector has one entry per
/// function of the program.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunProfile {
    /// Timer samples attributed to each method.
    pub samples: Vec<u64>,
    /// Invocation counts.
    pub invocations: Vec<u64>,
    /// The level each method's code had when the run ended (methods never
    /// invoked stay at `Baseline`).
    pub final_levels: Vec<OptLevel>,
    /// All recompilations, in order.
    pub recompilations: Vec<RecompileEvent>,
    /// Deepest call stack observed (frames, entry included). Tracked at
    /// every invoke in both dispatch loops, so it is exact in either mode.
    pub peak_call_depth: usize,
    /// Largest frame-arena occupancy observed, in value slots. The fast
    /// loop samples it at frame pushes (a lower bound on the true peak);
    /// the reference loop tracks it per instruction, making it exact —
    /// the soundness suite checks it against the static
    /// [`frame bounds`](evovm_bytecode::analysis::FrameBounds).
    pub peak_arena_slots: usize,
}

impl RunProfile {
    /// Create a profile for a program with `n` functions.
    pub fn new(n: usize) -> RunProfile {
        RunProfile {
            samples: vec![0; n],
            invocations: vec![0; n],
            final_levels: vec![OptLevel::Baseline; n],
            recompilations: Vec::new(),
            peak_call_depth: 0,
            peak_arena_slots: 0,
        }
    }

    /// Total samples taken.
    pub fn total_samples(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Methods ordered by hotness (most samples first), ties by id.
    pub fn hottest(&self) -> Vec<FuncId> {
        let mut ids: Vec<usize> = (0..self.samples.len()).collect();
        ids.sort_by_key(|&i| (std::cmp::Reverse(self.samples[i]), i));
        ids.into_iter().map(|i| FuncId(i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hottest_orders_by_samples_then_id() {
        let mut p = RunProfile::new(3);
        p.samples = vec![5, 9, 5];
        assert_eq!(p.hottest(), vec![FuncId(1), FuncId(0), FuncId(2)]);
        assert_eq!(p.total_samples(), 19);
    }
}
