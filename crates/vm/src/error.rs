//! VM error types.

use std::fmt;

use evovm_bytecode::scalar::ArithError;
use evovm_bytecode::VerifyError;
use evovm_opt::CompileError;

/// A runtime trap: a condition the executed program caused.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trap {
    /// Integer division or remainder by zero.
    DivByZero,
    /// An operation received a value of the wrong kind (e.g. arithmetic on
    /// null, bitwise on a float, indexing a non-array).
    TypeError,
    /// Dereferencing the null reference.
    NullDeref,
    /// Array access outside bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Array allocation with a negative or oversized length.
    BadAllocation {
        /// The requested length.
        len: i64,
    },
    /// The call stack exceeded the configured depth.
    StackOverflow,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::TypeError => write!(f, "operation on a value of the wrong type"),
            Trap::NullDeref => write!(f, "null dereference"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for array of length {len}")
            }
            Trap::BadAllocation { len } => write!(f, "bad array allocation length {len}"),
            Trap::StackOverflow => write!(f, "call stack overflow"),
        }
    }
}

/// Errors surfaced by the VM.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The program failed the bytecode verifier before execution.
    ///
    /// Boxed (as is `Miscompile`) to keep `VmError` at 24 bytes: the
    /// interpreter's dispatch loop returns `Result<_, VmError>` per
    /// instruction, so the error type's size is hot even though the
    /// error paths are cold.
    Verify(Box<VerifyError>),
    /// A JIT pipeline emitted code that failed re-verification; the bad
    /// code was rejected before it could execute.
    Miscompile(Box<CompileError>),
    /// The program trapped at runtime.
    Trap(Trap),
    /// The run exceeded the configured cycle budget.
    CycleBudgetExceeded {
        /// The configured budget.
        budget: u64,
    },
    /// `resume` was called on a machine that already finished.
    AlreadyFinished,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Verify(e) => write!(f, "{e}"),
            VmError::Miscompile(e) => write!(f, "{e}"),
            VmError::Trap(t) => write!(f, "runtime trap: {t}"),
            VmError::CycleBudgetExceeded { budget } => {
                write!(f, "run exceeded the cycle budget of {budget}")
            }
            VmError::AlreadyFinished => write!(f, "the machine has already finished"),
        }
    }
}

impl std::error::Error for VmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmError::Verify(e) => Some(e),
            VmError::Miscompile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VerifyError> for VmError {
    fn from(e: VerifyError) -> VmError {
        VmError::Verify(Box::new(e))
    }
}

impl From<CompileError> for VmError {
    fn from(e: CompileError) -> VmError {
        VmError::Miscompile(Box::new(e))
    }
}

impl From<ArithError> for VmError {
    fn from(e: ArithError) -> VmError {
        match e {
            ArithError::DivByZero => VmError::Trap(Trap::DivByZero),
            ArithError::TypeError => VmError::Trap(Trap::TypeError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_errors_map_to_traps() {
        assert_eq!(
            VmError::from(ArithError::DivByZero),
            VmError::Trap(Trap::DivByZero)
        );
        assert_eq!(
            VmError::from(ArithError::TypeError),
            VmError::Trap(Trap::TypeError)
        );
    }

    #[test]
    fn displays_are_lowercase_and_nonempty() {
        let msgs = [
            Trap::DivByZero.to_string(),
            Trap::NullDeref.to_string(),
            VmError::AlreadyFinished.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
