//! Engine-level tests: semantics, clock accounting, sampling, policies,
//! recompilation and the pause/resume protocol.

use std::sync::Arc;

use evovm_bytecode::asm::parse;
use evovm_bytecode::scalar::Scalar;
use evovm_opt::OptLevel;

use crate::{
    BaselineOnlyPolicy, CostBenefitPolicy, InterpMode, Outcome, Trap, Vm, VmConfig, VmError,
};

fn run_src(src: &str) -> crate::RunResult {
    run_src_with(src, VmConfig::default())
}

fn run_src_with(src: &str, config: VmConfig) -> crate::RunResult {
    let program = Arc::new(parse(src).unwrap());
    let mut vm = Vm::new(program, Box::new(CostBenefitPolicy::new()), config).unwrap();
    match vm.run().unwrap() {
        Outcome::Finished(r) => *r,
        Outcome::FeaturesReady => panic!("unexpected pause"),
    }
}

#[test]
fn arithmetic_and_print() {
    let r =
        run_src("entry func main/0 {\n  const 6\n  const 7\n  mul\n  print\n  null\n  return\n}");
    assert_eq!(r.output, vec!["42"]);
    assert!(r.total_cycles > 0);
    assert_eq!(r.total_cycles, r.exec_cycles + r.compile_cycles);
}

#[test]
fn loops_and_calls() {
    let r = run_src(
        "entry func main/0 locals=1 {
  const 0
  store 0
top:
  load 0
  const 5
  icmpge
  jumpif end
  load 0
  call square
  print
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}
func square/1 {
  load 0
  load 0
  imul
  return
}",
    );
    assert_eq!(r.output, vec!["0", "1", "4", "9", "16"]);
    let p = parse("entry func main/0 {\n null\n return\n}").unwrap();
    drop(p);
    assert_eq!(r.profile.invocations[1], 5);
}

#[test]
fn recursion_works() {
    let r = run_src(
        "entry func main/0 {
  const 10
  call fib
  print
  null
  return
}
func fib/1 {
  load 0
  const 2
  icmplt
  jumpifnot rec
  load 0
  return
rec:
  load 0
  const 1
  isub
  call fib
  load 0
  const 2
  isub
  call fib
  iadd
  return
}",
    );
    assert_eq!(r.output, vec!["55"]);
}

#[test]
fn arrays_roundtrip() {
    let r = run_src(
        "entry func main/0 locals=2 {
  const 3
  newarray
  store 0
  load 0
  const 0
  const 11
  astore
  load 0
  const 2
  const 33
  astore
  load 0
  const 0
  aload
  load 0
  const 2
  aload
  iadd
  print
  load 0
  alen
  print
  null
  return
}",
    );
    assert_eq!(r.output, vec!["44", "3"]);
}

#[test]
fn float_formatting_is_stable() {
    let r = run_src(
        "entry func main/0 {\n  fconst 2.5\n  fconst 0.5\n  fadd\n  print\n  const 9\n  math sqrt\n  print\n  null\n  return\n}",
    );
    assert_eq!(r.output, vec!["3", "3"]);
}

#[test]
fn div_by_zero_traps() {
    let program = Arc::new(
        parse("entry func main/0 {\n  const 1\n  const 0\n  idiv\n  print\n  null\n  return\n}")
            .unwrap(),
    );
    let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
    assert_eq!(vm.run().unwrap_err(), VmError::Trap(Trap::DivByZero));
}

#[test]
fn deep_recursion_overflows() {
    let program = Arc::new(
        parse(
            "entry func main/0 {\n  const 0\n  call forever\n  print\n  null\n  return\n}\nfunc forever/1 {\n  load 0\n  call forever\n  return\n}",
        )
        .unwrap(),
    );
    let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
    assert_eq!(vm.run().unwrap_err(), VmError::Trap(Trap::StackOverflow));
}

#[test]
fn cycle_budget_is_enforced() {
    let src = "entry func main/0 {
top:
  const 1
  jumpif top
  null
  return
}";
    let program = Arc::new(parse(src).unwrap());
    let mut vm = Vm::new(
        program,
        Box::new(BaselineOnlyPolicy),
        VmConfig {
            cycle_budget: Some(100_000),
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(
        vm.run().unwrap_err(),
        VmError::CycleBudgetExceeded { .. }
    ));
}

/// A program that spins in a hot helper long enough for the sampler and
/// cost-benefit policy to engage.
fn hot_program(iters: u64) -> String {
    format!(
        "entry func main/0 locals=1 {{
  const 0
  store 0
top:
  load 0
  const {iters}
  icmpge
  jumpif end
  load 0
  call work
  pop
  load 0
  const 1
  iadd
  store 0
  jump top
end:
  null
  return
}}
func work/1 locals=2 {{
  const 0
  store 1
inner:
  load 1
  const 200
  cmpge
  jumpif out
  load 1
  const 3
  mul
  const 7
  add
  pop
  load 1
  const 1
  add
  store 1
  jump inner
out:
  load 1
  return
}}"
    )
}

#[test]
fn sampler_attributes_samples_to_the_hot_method() {
    let r = run_src(&hot_program(2_000));
    let p = parse(&hot_program(2_000)).unwrap();
    let work = p.find("work").unwrap();
    assert!(r.profile.total_samples() > 10);
    assert!(
        r.profile.samples[work.index()] > r.profile.samples[p.entry().index()],
        "work should dominate the samples: {:?}",
        r.profile.samples
    );
}

#[test]
fn cost_benefit_policy_recompiles_hot_methods() {
    let r = run_src(&hot_program(2_000));
    let p = parse(&hot_program(2_000)).unwrap();
    let work = p.find("work").unwrap();
    assert!(
        !r.profile.recompilations.is_empty(),
        "expected at least one recompilation"
    );
    assert!(r.profile.final_levels[work.index()] > OptLevel::Baseline);
    assert!(r.compile_cycles > 0);
}

#[test]
fn adaptive_run_beats_baseline_only_run() {
    let src = hot_program(2_000);
    let adaptive = run_src(&src);
    let program = Arc::new(parse(&src).unwrap());
    let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
    let baseline = match vm.run().unwrap() {
        Outcome::Finished(r) => *r,
        Outcome::FeaturesReady => unreachable!(),
    };
    assert_eq!(
        adaptive.output, baseline.output,
        "semantics must not change"
    );
    assert!(
        adaptive.total_cycles < baseline.total_cycles,
        "adaptive {} should beat baseline {}",
        adaptive.total_cycles,
        baseline.total_cycles
    );
}

#[test]
fn publish_and_done_pause_the_machine() {
    let src = "entry func main/0 {
  const 128
  publish \"size\"
  fconst 0.5
  publish \"ratio\"
  done
  const 1
  print
  null
  return
}";
    let program = Arc::new(parse(src).unwrap());
    let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
    match vm.run().unwrap() {
        Outcome::FeaturesReady => {}
        Outcome::Finished(_) => panic!("expected a pause at done"),
    }
    assert_eq!(
        vm.published(),
        &[
            ("size".to_owned(), Scalar::Int(128)),
            ("ratio".to_owned(), Scalar::Float(0.5)),
        ]
    );
    // Swap in a different policy mid-pause (the evolvable VM's move).
    let _old = vm.replace_policy(Box::new(CostBenefitPolicy::new()));
    match vm.run().unwrap() {
        Outcome::Finished(r) => assert_eq!(r.output, vec!["1"]),
        Outcome::FeaturesReady => panic!("expected completion"),
    }
    assert!(matches!(vm.run(), Err(VmError::AlreadyFinished)));
}

#[test]
fn determinism_same_program_same_cycles() {
    let a = run_src(&hot_program(1_000));
    let b = run_src(&hot_program(1_000));
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.profile.samples, b.profile.samples);
    assert_eq!(a.output, b.output);
}

#[test]
fn optimized_code_is_semantically_identical() {
    // Force every method to each level via a policy that pins levels.
    #[derive(Debug, Clone)]
    struct PinPolicy(OptLevel);
    impl crate::AosPolicy for PinPolicy {
        fn on_first_compile(
            &mut self,
            _m: evovm_bytecode::FuncId,
            _ctx: crate::AosContext<'_>,
        ) -> Option<OptLevel> {
            Some(self.0)
        }
        fn fork_box(&self) -> Box<dyn crate::AosPolicy> {
            Box::new(self.clone())
        }
    }
    let src = hot_program(500);
    let mut outputs = Vec::new();
    for level in OptLevel::ALL {
        let program = Arc::new(parse(&src).unwrap());
        let mut vm = Vm::new(program, Box::new(PinPolicy(level)), VmConfig::default()).unwrap();
        match vm.run().unwrap() {
            Outcome::Finished(r) => outputs.push(r.output),
            Outcome::FeaturesReady => unreachable!(),
        }
    }
    for w in outputs.windows(2) {
        assert_eq!(w[0], w[1]);
    }
}

#[test]
fn pinned_higher_levels_run_fewer_exec_cycles() {
    #[derive(Debug, Clone)]
    struct PinPolicy(OptLevel);
    impl crate::AosPolicy for PinPolicy {
        fn on_first_compile(
            &mut self,
            _m: evovm_bytecode::FuncId,
            _ctx: crate::AosContext<'_>,
        ) -> Option<OptLevel> {
            Some(self.0)
        }
        fn fork_box(&self) -> Box<dyn crate::AosPolicy> {
            Box::new(self.clone())
        }
    }
    let src = hot_program(500);
    let mut exec = Vec::new();
    for level in [OptLevel::Baseline, OptLevel::O0, OptLevel::O1] {
        let program = Arc::new(parse(&src).unwrap());
        let mut vm = Vm::new(program, Box::new(PinPolicy(level)), VmConfig::default()).unwrap();
        match vm.run().unwrap() {
            Outcome::Finished(r) => exec.push(r.exec_cycles),
            Outcome::FeaturesReady => unreachable!(),
        }
    }
    assert!(exec[0] > exec[1], "O0 beats baseline: {exec:?}");
    assert!(exec[1] > exec[2], "O1 beats O0: {exec:?}");
}

#[test]
fn apply_strategy_recompiles_compiled_methods_upward() {
    let src = "entry func main/0 {
  const 1
  publish \"x\"
  done
  const 5
  call work
  print
  null
  return
}
func work/1 {
  load 0
  const 2
  imul
  return
}";
    let program = Arc::new(parse(src).unwrap());
    let work = program.find("work").unwrap();
    let mut vm = Vm::new(
        Arc::clone(&program),
        Box::new(BaselineOnlyPolicy),
        VmConfig::default(),
    )
    .unwrap();
    let Outcome::FeaturesReady = vm.run().unwrap() else {
        panic!("expected pause");
    };
    let cycles_before = vm.cycles();
    // main is compiled (it is running); work is not yet. Apply a strategy
    // covering both: only main recompiles now.
    let mut levels = vec![None; 2];
    levels[0] = Some(OptLevel::O2);
    levels[work.index()] = Some(OptLevel::O2);
    vm.apply_strategy(&levels).unwrap();
    assert!(vm.cycles() > cycles_before, "recompilation charged");
    let Outcome::Finished(r) = vm.run().unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(r.output, vec!["10"]);
    // main was upgraded by apply_strategy; work stayed baseline because
    // apply_strategy only touches already-compiled methods.
    assert_eq!(r.profile.final_levels[0], OptLevel::O2);
    assert_eq!(r.profile.final_levels[work.index()], OptLevel::Baseline);
    assert_eq!(r.profile.recompilations.len(), 1);
}

#[test]
fn charge_overhead_moves_the_clock() {
    let program = Arc::new(parse("entry func main/0 {\n  null\n  return\n}").unwrap());
    let mut vm = Vm::new(program, Box::new(BaselineOnlyPolicy), VmConfig::default()).unwrap();
    vm.charge_overhead(1234).unwrap();
    assert_eq!(vm.cycles(), 1234);
    let Outcome::Finished(r) = vm.run().unwrap() else {
        panic!("expected completion");
    };
    assert!(r.total_cycles >= 1234);
    assert_eq!(r.total_cycles - r.exec_cycles - r.compile_cycles, 1234);
}

#[test]
fn seconds_conversion() {
    let r = run_src("entry func main/0 {\n  null\n  return\n}");
    assert!(r.seconds() > 0.0);
    assert!(r.seconds() < 1.0);
}

#[test]
fn fast_and_reference_interpreters_agree_bit_for_bit() {
    let src = hot_program(2_000);
    let mut results = Vec::new();
    for mode in [InterpMode::Fast, InterpMode::Reference] {
        let program = Arc::new(parse(&src).unwrap());
        let mut vm = Vm::new(
            program,
            Box::new(CostBenefitPolicy::new()),
            VmConfig {
                sample_interval_cycles: 10_000,
                interp: mode,
                ..VmConfig::default()
            },
        )
        .unwrap();
        let Outcome::Finished(r) = vm.run().unwrap() else {
            panic!("expected completion");
        };
        results.push(r);
    }
    let (a, b) = (&results[0], &results[1]);
    assert_eq!(a.output, b.output);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.compile_cycles, b.compile_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.profile.samples, b.profile.samples);
    assert_eq!(a.profile.invocations, b.profile.invocations);
    assert_eq!(a.profile.final_levels, b.profile.final_levels);
    assert_eq!(a.profile.recompilations, b.profile.recompilations);
    // The comparison only means something if the run exercised sampling
    // and recompilation.
    assert!(a.profile.total_samples() > 0);
    assert!(!a.profile.recompilations.is_empty());
}

#[test]
fn budget_trips_at_the_same_cycle_in_both_modes() {
    let src = hot_program(50_000);
    let mut stops = Vec::new();
    for mode in [InterpMode::Fast, InterpMode::Reference] {
        let program = Arc::new(parse(&src).unwrap());
        let mut vm = Vm::new(
            program,
            Box::new(BaselineOnlyPolicy),
            VmConfig {
                cycle_budget: Some(500_000),
                interp: mode,
                ..VmConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            vm.run().unwrap_err(),
            VmError::CycleBudgetExceeded { .. }
        ));
        stops.push(vm.cycles());
    }
    assert_eq!(stops[0], stops[1]);
}

#[test]
fn launch_overhead_skips_ticks_instead_of_deferring_them() {
    let program = Arc::new(parse("entry func main/0 {\n  null\n  return\n}").unwrap());
    let mut vm = Vm::new(
        program,
        Box::new(BaselineOnlyPolicy),
        VmConfig {
            sample_interval_cycles: 1_000,
            ..VmConfig::default()
        },
    )
    .unwrap();
    // Ten intervals of prediction overhead before launch: nothing is
    // running, so the ticks are dropped (like a timer firing in an idle
    // VM), not delivered to the entry method's first instruction.
    vm.charge_overhead(10_000).unwrap();
    let Outcome::Finished(r) = vm.run().unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(r.profile.total_samples(), 0);
    assert_eq!(r.total_cycles - r.exec_cycles - r.compile_cycles, 10_000);
}

#[test]
fn pause_overhead_delivers_ticks_to_the_paused_method() {
    let src = "entry func main/0 {\n  const 1\n  publish \"x\"\n  done\n  null\n  return\n}";
    let program = Arc::new(parse(src).unwrap());
    let mut vm = Vm::new(
        program,
        Box::new(BaselineOnlyPolicy),
        VmConfig {
            sample_interval_cycles: 1_000,
            ..VmConfig::default()
        },
    )
    .unwrap();
    let Outcome::FeaturesReady = vm.run().unwrap() else {
        panic!("expected pause");
    };
    // Five intervals of prediction overhead while main is paused
    // mid-method: an equal amount of executed cycles would have delivered
    // five samples, and so does the overhead.
    vm.charge_overhead(5_000).unwrap();
    let Outcome::Finished(r) = vm.run().unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(r.profile.total_samples(), 5);
    assert_eq!(r.profile.samples[0], 5);
}

#[test]
fn run_result_counts_retired_instructions() {
    let r =
        run_src("entry func main/0 {\n  const 6\n  const 7\n  mul\n  print\n  null\n  return\n}");
    assert_eq!(r.instructions, 6);
}

/// Compare every bit-comparable field of two results (floats via output
/// formatting, which is already exact for identical bits).
fn assert_identical(a: &crate::RunResult, b: &crate::RunResult) {
    assert_eq!(a.output, b.output);
    assert_eq!(a.published, b.published);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.compile_cycles, b.compile_cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.profile.samples, b.profile.samples);
    assert_eq!(a.profile.invocations, b.profile.invocations);
    assert_eq!(a.profile.final_levels, b.profile.final_levels);
    assert_eq!(a.profile.recompilations, b.profile.recompilations);
    assert_eq!(a.profile.peak_call_depth, b.profile.peak_call_depth);
    assert_eq!(a.profile.peak_arena_slots, b.profile.peak_arena_slots);
}

#[test]
fn snapshot_at_pause_resumes_bit_identically() {
    let src = "entry func main/0 {
  const 1
  publish \"x\"
  done
  const 5
  call work
  print
  null
  return
}
func work/1 locals=2 {
  const 0
  store 1
inner:
  load 1
  const 50
  cmpge
  jumpif out
  load 1
  const 1
  add
  store 1
  jump inner
out:
  load 0
  load 1
  imul
  return
}";
    for mode in [InterpMode::Fast, InterpMode::Reference] {
        let config = VmConfig {
            sample_interval_cycles: 1_000,
            interp: mode,
            ..VmConfig::default()
        };
        let program = Arc::new(parse(src).unwrap());
        let mut straight = Vm::new(
            Arc::clone(&program),
            Box::new(CostBenefitPolicy::new()),
            config.clone(),
        )
        .unwrap();
        let Outcome::FeaturesReady = straight.run().unwrap() else {
            panic!("expected pause");
        };
        // Fork the paused run, then drive both to completion.
        let snap = straight.snapshot();
        let mut resumed = Vm::resume(snap).unwrap();
        let Outcome::Finished(a) = straight.run().unwrap() else {
            panic!("expected completion");
        };
        let Outcome::Finished(b) = resumed.run().unwrap() else {
            panic!("expected completion");
        };
        assert_identical(&a, &b);
    }
}

#[test]
fn fork_points_capture_recompilation_decisions() {
    let src = hot_program(2_000);
    for mode in [InterpMode::Fast, InterpMode::Reference] {
        let config = VmConfig {
            sample_interval_cycles: 10_000,
            interp: mode,
            fork_snapshots: 8,
            ..VmConfig::default()
        };
        let program = Arc::new(parse(&src).unwrap());
        let mut vm = Vm::new(program, Box::new(CostBenefitPolicy::new()), config).unwrap();
        let Outcome::Finished(straight) = vm.run().unwrap() else {
            panic!("expected completion");
        };
        let forks = vm.take_fork_snapshots();
        assert!(
            !straight.profile.recompilations.is_empty(),
            "run must recompile for the test to mean anything"
        );
        // Sample-driven decisions are captured (the proactive
        // on_first_compile path is not a fork point), and each snapshot
        // replays its decision to the same final result.
        assert!(!forks.is_empty());
        assert!(forks.len() <= straight.profile.recompilations.len());
        for snap in forks {
            let (method, level) = snap.pending_decision().expect("fork carries a decision");
            assert!(level > snap.level_of(method));
            let mut replay = Vm::resume(snap).unwrap();
            let Outcome::Finished(r) = replay.run().unwrap() else {
                panic!("expected completion");
            };
            assert_identical(&straight, &r);
        }
    }
}

#[test]
fn overridden_fork_decision_diverges_from_the_original() {
    let src = hot_program(2_000);
    let config = VmConfig {
        sample_interval_cycles: 10_000,
        fork_snapshots: 1,
        ..VmConfig::default()
    };
    let program = Arc::new(parse(&src).unwrap());
    let mut vm = Vm::new(program, Box::new(CostBenefitPolicy::new()), config).unwrap();
    let Outcome::Finished(straight) = vm.run().unwrap() else {
        panic!("expected completion");
    };
    let mut forks = vm.take_fork_snapshots();
    let mut snap = forks.pop().expect("one fork point");
    // Suppress the recompilation: the counterfactual keeps the sampled
    // method at its current level for now. The stateless cost-benefit
    // policy re-makes the decision on a later tick, so the observable
    // output is unchanged but the recompilation timeline shifts.
    snap.override_decision(None);
    let mut replay = Vm::resume(snap).unwrap();
    let Outcome::Finished(r) = replay.run().unwrap() else {
        panic!("expected completion");
    };
    assert_eq!(straight.output, r.output);
    assert_ne!(straight.profile.recompilations, r.profile.recompilations);
}

#[test]
fn resumed_runs_never_self_capture() {
    let src = hot_program(2_000);
    let config = VmConfig {
        sample_interval_cycles: 10_000,
        fork_snapshots: 8,
        ..VmConfig::default()
    };
    let program = Arc::new(parse(&src).unwrap());
    let mut vm = Vm::new(program, Box::new(CostBenefitPolicy::new()), config).unwrap();
    vm.run().unwrap();
    let snap = vm
        .take_fork_snapshots()
        .into_iter()
        .next()
        .expect("one fork point");
    let mut replay = Vm::resume(snap).unwrap();
    replay.run().unwrap();
    assert!(replay.take_fork_snapshots().is_empty());
}
