//! Runtime values and the array heap.

use std::fmt;

use evovm_bytecode::scalar::Scalar;

use crate::error::{Trap, VmError};

/// A runtime value: the scalar domain plus null and array references.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Value {
    /// The null reference (initial value of non-argument locals).
    #[default]
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Reference into the VM's array heap.
    Ref(u32),
}

impl Value {
    /// Truthiness: nonzero scalars and non-null references are true.
    pub fn truthy(self) -> bool {
        match self {
            Value::Null => false,
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
            Value::Ref(_) => true,
        }
    }

    /// View as a scalar for arithmetic.
    ///
    /// # Errors
    ///
    /// [`Trap::TypeError`] for `Null` and `Ref` values.
    pub fn as_scalar(self) -> Result<Scalar, VmError> {
        match self {
            Value::Int(v) => Ok(Scalar::Int(v)),
            Value::Float(v) => Ok(Scalar::Float(v)),
            _ => Err(VmError::Trap(Trap::TypeError)),
        }
    }

    /// View as an integer.
    ///
    /// # Errors
    ///
    /// [`Trap::TypeError`] unless the value is an `Int`.
    pub fn as_int(self) -> Result<i64, VmError> {
        match self {
            Value::Int(v) => Ok(v),
            _ => Err(VmError::Trap(Trap::TypeError)),
        }
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Value {
        match s {
            Scalar::Int(v) => Value::Int(v),
            Scalar::Float(v) => Value::Float(v),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "ref@{r}"),
        }
    }
}

/// The array heap. Arrays are the only heap objects; garbage is never
/// collected within a run (runs are short and the paper's GC work is out
/// of scope — see `DESIGN.md`).
#[derive(Debug, Clone, Default)]
pub struct Heap {
    arrays: Vec<Vec<Value>>,
}

/// Largest allocatable array.
pub const MAX_ARRAY_LEN: i64 = 1 << 22;

impl Heap {
    /// Create an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate a zero-filled array of `len` elements.
    ///
    /// # Errors
    ///
    /// [`Trap::BadAllocation`] if `len` is negative or exceeds
    /// [`MAX_ARRAY_LEN`].
    pub fn alloc(&mut self, len: i64) -> Result<Value, VmError> {
        if !(0..=MAX_ARRAY_LEN).contains(&len) {
            return Err(VmError::Trap(Trap::BadAllocation { len }));
        }
        let id = self.arrays.len() as u32;
        self.arrays.push(vec![Value::Null; len as usize]);
        Ok(Value::Ref(id))
    }

    /// Read `array[index]`.
    ///
    /// # Errors
    ///
    /// [`Trap::NullDeref`] on null, [`Trap::TypeError`] on a non-reference,
    /// [`Trap::IndexOutOfBounds`] outside the array.
    pub fn load(&self, array: Value, index: i64) -> Result<Value, VmError> {
        let a = self.resolve(array)?;
        a.get(checked_index(index, a.len())?)
            .copied()
            .ok_or(VmError::Trap(Trap::IndexOutOfBounds {
                index,
                len: a.len(),
            }))
    }

    /// Write `array[index] = value`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Heap::load`].
    pub fn store(&mut self, array: Value, index: i64, value: Value) -> Result<(), VmError> {
        let id = self.resolve_id(array)?;
        let a = &mut self.arrays[id];
        let i = checked_index(index, a.len())?;
        a[i] = value;
        Ok(())
    }

    /// Length of the array behind `array`.
    ///
    /// # Errors
    ///
    /// [`Trap::NullDeref`] / [`Trap::TypeError`] as in [`Heap::load`].
    pub fn len(&self, array: Value) -> Result<i64, VmError> {
        Ok(self.resolve(array)?.len() as i64)
    }

    /// True if no arrays have been allocated.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Number of live arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    fn resolve(&self, array: Value) -> Result<&Vec<Value>, VmError> {
        Ok(&self.arrays[self.resolve_id(array)?])
    }

    fn resolve_id(&self, array: Value) -> Result<usize, VmError> {
        match array {
            Value::Ref(id) if (id as usize) < self.arrays.len() => Ok(id as usize),
            Value::Null => Err(VmError::Trap(Trap::NullDeref)),
            _ => Err(VmError::Trap(Trap::TypeError)),
        }
    }
}

fn checked_index(index: i64, len: usize) -> Result<usize, VmError> {
    if index < 0 || index as usize >= len {
        Err(VmError::Trap(Trap::IndexOutOfBounds { index, len }))
    } else {
        Ok(index as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store_roundtrip() {
        let mut h = Heap::new();
        let a = h.alloc(3).unwrap();
        h.store(a, 1, Value::Int(42)).unwrap();
        assert_eq!(h.load(a, 1).unwrap(), Value::Int(42));
        assert_eq!(h.load(a, 0).unwrap(), Value::Null);
        assert_eq!(h.len(a).unwrap(), 3);
    }

    #[test]
    fn bounds_are_checked() {
        let mut h = Heap::new();
        let a = h.alloc(2).unwrap();
        assert!(matches!(
            h.load(a, 2),
            Err(VmError::Trap(Trap::IndexOutOfBounds { .. }))
        ));
        assert!(matches!(
            h.store(a, -1, Value::Int(0)),
            Err(VmError::Trap(Trap::IndexOutOfBounds { .. }))
        ));
    }

    #[test]
    fn null_and_type_traps() {
        let h = Heap::new();
        assert!(matches!(
            h.load(Value::Null, 0),
            Err(VmError::Trap(Trap::NullDeref))
        ));
        assert!(matches!(
            h.load(Value::Int(3), 0),
            Err(VmError::Trap(Trap::TypeError))
        ));
    }

    #[test]
    fn negative_and_huge_allocations_trap() {
        let mut h = Heap::new();
        assert!(h.alloc(-1).is_err());
        assert!(h.alloc(MAX_ARRAY_LEN + 1).is_err());
        assert!(h.alloc(0).is_ok());
    }

    #[test]
    fn truthiness_and_conversions() {
        assert!(Value::Ref(0).truthy());
        assert!(!Value::Null.truthy());
        assert!(Value::Int(5).as_scalar().is_ok());
        assert!(Value::Null.as_scalar().is_err());
        assert_eq!(Value::from(Scalar::Int(3)), Value::Int(3));
    }
}
