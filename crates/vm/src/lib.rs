//! Execution engine of the evolvable VM.
//!
//! Provides the resumable interpreter ([`Vm`]) with:
//!
//! - a deterministic virtual cycle clock ([`machine::CYCLES_PER_SECOND`]),
//! - multi-level JIT compilation through [`evovm_opt`],
//! - a timer-based sampling profiler producing [`RunProfile`]s,
//! - pluggable recompilation policies ([`AosPolicy`]): the reactive
//!   Jikes-style [`CostBenefitPolicy`] ships here; the proactive
//!   (predicted) and repository-based policies live in the `evovm` crate.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use evovm_bytecode::asm::parse;
//! use evovm_vm::{CostBenefitPolicy, Outcome, Vm, VmConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse(
//!     "entry func main/0 {\n  const 6\n  const 7\n  mul\n  print\n  null\n  return\n}",
//! )?;
//! let mut vm = Vm::new(
//!     Arc::new(program),
//!     Box::new(CostBenefitPolicy::new()),
//!     VmConfig::default(),
//! )?;
//! match vm.run()? {
//!     Outcome::Finished(result) => assert_eq!(result.output, vec!["42"]),
//!     Outcome::FeaturesReady => unreachable!("program has no done instruction"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod machine;
pub mod policy;
pub mod profile;
pub mod value;

pub use error::{Trap, VmError};
pub use machine::{InterpMode, Outcome, RunResult, RunSnapshot, Vm, VmConfig, CYCLES_PER_SECOND};
pub use policy::{AosContext, AosPolicy, BaselineOnlyPolicy, CostBenefitPolicy};
pub use profile::{DispatchProfile, RecompileEvent, RunProfile};
pub use value::{Heap, Value};

#[cfg(test)]
mod tests;
