//! Adaptive-optimization policies: who decides when to recompile what.
//!
//! The engine consults an [`AosPolicy`] at two points:
//!
//! 1. right after a method's first (baseline) compilation — this is where
//!    a *proactive* policy such as the evolvable VM's predicted strategy
//!    requests an immediate recompilation to the predicted level;
//! 2. on every timer sample — this is where the *reactive* default policy
//!    (Jikes RVM's cost-benefit model, [`CostBenefitPolicy`]) and the
//!    repository-based strategies decide.
//!
//! Policies return at most one target level for the method in question;
//! the engine performs the compilation and charges its cost to the clock.

use evovm_bytecode::program::Program;
use evovm_bytecode::FuncId;
use evovm_opt::OptLevel;

/// Read-only view of the adaptive system's state offered to policies.
#[derive(Debug, Clone, Copy)]
pub struct AosContext<'a> {
    /// The executing program.
    pub program: &'a Program,
    /// Timer samples per method so far.
    pub samples: &'a [u64],
    /// Current compiled level per method.
    pub levels: &'a [OptLevel],
    /// Virtual cycles between timer samples.
    pub sample_interval_cycles: u64,
}

/// A recompilation decision policy.
pub trait AosPolicy: std::fmt::Debug + Send {
    /// Called immediately after `method` was baseline-compiled on its
    /// first invocation. Returning a level schedules an immediate
    /// recompilation (the paper's proactive path: first compile at −1 to
    /// avoid too-early optimization, then jump straight to the predicted
    /// level).
    fn on_first_compile(&mut self, method: FuncId, ctx: AosContext<'_>) -> Option<OptLevel> {
        let (_, _) = (method, ctx);
        None
    }

    /// Called when a timer sample is attributed to `method`. Returning a
    /// level schedules a recompilation.
    fn on_sample(&mut self, method: FuncId, ctx: AosContext<'_>) -> Option<OptLevel> {
        let (_, _) = (method, ctx);
        None
    }

    /// Clone this policy for a forked run. A [`crate::RunSnapshot`] carries
    /// an owned policy so a resumed fork replays the original's decisions
    /// independently; implementations are expected to return a faithful
    /// copy of their current decision state (for the stateless built-in
    /// policies this is a plain `Clone`).
    fn fork_box(&self) -> Box<dyn AosPolicy>;
}

/// The reactive default: Jikes RVM's cost-benefit model.
///
/// On each sample of method `m`, estimate the method's future running time
/// as equal to its past running time (`samples(m) × interval`), and pick
/// the level `j > cur` maximizing `benefit(j) − cost(j)` where
///
/// - `benefit(j) = future × (1 − quality(j)/quality(cur))`
/// - `cost(j)   = compile_cost_per_instr(j) × size(m)`
///
/// Recompile only if the best net benefit is positive.
#[derive(Debug, Clone, Default)]
pub struct CostBenefitPolicy {
    _private: (),
}

impl CostBenefitPolicy {
    /// Create the default reactive policy.
    pub fn new() -> CostBenefitPolicy {
        CostBenefitPolicy::default()
    }

    /// The posterior variant of the model: given the *known* total running
    /// time of a method (in cycles, as observed at the method's final
    /// quality), the level that the cost-benefit model would have chosen
    /// with perfect knowledge. This is what the paper calls the *ideal*
    /// strategy `o` computed after a run from the full profile.
    pub fn ideal_level(program: &Program, method: FuncId, total_method_cycles: u64) -> OptLevel {
        let f = program.function(method);
        let name = &f.name;
        let size = f.code.len() as u64;
        // The method's intrinsic work, normalized out of the baseline
        // quality it was (mostly) observed at.
        let base_work = total_method_cycles as f64 / OptLevel::Baseline.quality_for(name);
        let mut best = OptLevel::Baseline;
        let mut best_total = base_work * OptLevel::Baseline.quality_for(name);
        for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let exec = base_work * level.quality_for(name);
            let compile = (level.compile_cost_per_instr() * size) as f64;
            let total = exec + compile;
            if total < best_total {
                best_total = total;
                best = level;
            }
        }
        best
    }
}

impl AosPolicy for CostBenefitPolicy {
    fn fork_box(&self) -> Box<dyn AosPolicy> {
        Box::new(self.clone())
    }

    fn on_sample(&mut self, method: FuncId, ctx: AosContext<'_>) -> Option<OptLevel> {
        let cur = ctx.levels[method.index()];
        let f = ctx.program.function(method);
        let past = ctx.samples[method.index()] * ctx.sample_interval_cycles;
        let future = past as f64; // Jikes' as-long-again assumption
        let q_cur = cur.quality_for(&f.name);
        let size = f.code.len() as u64;
        let mut best: Option<(f64, OptLevel)> = None;
        let mut candidate = cur.next();
        while let Some(level) = candidate {
            let q = level.quality_for(&f.name);
            let benefit = future * (1.0 - q / q_cur);
            let cost = (level.compile_cost_per_instr() * size) as f64;
            let net = benefit - cost;
            if net > 0.0 && best.is_none_or(|(b, _)| net > b) {
                best = Some((net, level));
            }
            candidate = level.next();
        }
        best.map(|(_, level)| level)
    }
}

/// A policy that never recompiles: every method runs baseline code.
/// Useful as an experimental control and in tests.
#[derive(Debug, Clone, Default)]
pub struct BaselineOnlyPolicy;

impl AosPolicy for BaselineOnlyPolicy {
    fn fork_box(&self) -> Box<dyn AosPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_bytecode::asm::parse;

    fn program() -> Program {
        parse(
            "entry func main/0 {\n  null\n  return\n}\nfunc hot/1 {\n  load 0\n  const 1\n  iadd\n  return\n}",
        )
        .unwrap()
    }

    #[test]
    fn cold_methods_stay_put() {
        let p = program();
        let hot = p.find("hot").unwrap();
        let samples = vec![0, 1];
        let levels = vec![OptLevel::Baseline; 2];
        let mut policy = CostBenefitPolicy::new();
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        // One sample: past = 100k cycles; benefit at O0 = 100k*(1-5/12) ≈ 58k
        // vs cost = 45*4 = 180 — actually profitable. Use a tiny interval to
        // model a cold method instead.
        let cold_ctx = AosContext {
            sample_interval_cycles: 10,
            ..ctx
        };
        assert_eq!(policy.on_sample(hot, cold_ctx), None);
    }

    #[test]
    fn hot_methods_climb_levels() {
        let p = program();
        let hot = p.find("hot").unwrap();
        let samples = vec![0, 50];
        let levels = vec![OptLevel::Baseline; 2];
        let mut policy = CostBenefitPolicy::new();
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        let target = policy.on_sample(hot, ctx);
        // With 5M cycles of history the model picks an optimizing level.
        assert!(target.is_some());
        assert!(target.unwrap() > OptLevel::Baseline);
    }

    #[test]
    fn already_optimal_methods_are_left_alone() {
        let p = program();
        let hot = p.find("hot").unwrap();
        let samples = vec![0, 50];
        let levels = vec![OptLevel::Baseline, OptLevel::O2];
        let mut policy = CostBenefitPolicy::new();
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        assert_eq!(policy.on_sample(hot, ctx), None);
    }

    #[test]
    fn ideal_level_grows_with_method_time() {
        let p = program();
        let hot = p.find("hot").unwrap();
        let short = CostBenefitPolicy::ideal_level(&p, hot, 100);
        let long = CostBenefitPolicy::ideal_level(&p, hot, 1_000_000_000);
        assert_eq!(short, OptLevel::Baseline);
        assert!(long >= OptLevel::O1);
        assert!(short <= long);
    }

    #[test]
    fn baseline_only_policy_never_recompiles() {
        let p = program();
        let hot = p.find("hot").unwrap();
        let samples = vec![0, 10_000];
        let levels = vec![OptLevel::Baseline; 2];
        let mut policy = BaselineOnlyPolicy;
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        assert_eq!(policy.on_sample(hot, ctx), None);
        assert_eq!(policy.on_first_compile(hot, ctx), None);
    }
}
