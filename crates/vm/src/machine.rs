//! The execution engine: a resumable interpreter with a virtual cycle
//! clock, timer-based sampling profiler and policy-driven recompilation.
//!
//! # Execution model
//!
//! - Every method is compiled by the **baseline** compiler on its first
//!   invocation (Jikes level −1); the active [`AosPolicy`] may immediately
//!   request a recompilation (the evolvable VM's proactive path) or do so
//!   later on a timer sample (the reactive path).
//! - Each executed instruction charges `base_cost × quality(level)` virtual
//!   cycles; compilations charge their own cost at the moment they happen.
//!   The clock is deterministic, so speedups and overheads are exactly
//!   reproducible.
//! - Every [`VmConfig::sample_interval_cycles`] cycles, one sample is
//!   attributed to the currently-executing method and the policy is
//!   consulted — mirroring Jikes RVM's timer-based sample organizer.
//! - Frames hold an `Arc` of their compiled code: a method recompiled
//!   mid-run keeps executing old code in active frames and picks up the
//!   new code on the next call, exactly like a real JIT.
//! - The `Done` instruction (XICL's `done()` call) pauses the machine and
//!   yields [`Outcome::FeaturesReady`] so the host can run prediction and
//!   swap the policy before resuming.
//!
//! # Program context vs run state
//!
//! A [`Vm`] is split in two (see `DESIGN.md` §13):
//!
//! - the **program context** — the verified program, engine config,
//!   optimizer and the statically proven frame bounds — is fixed for the
//!   life of the machine;
//! - the **[`RunState`]** — frame stack, value arena, heap, virtual
//!   clock/budget accounting, sampler state, profile, pending publishes
//!   *and* the compiled-code caches (recompilation is a run event that
//!   moves the clock, so compilation state is run state) — is everything
//!   execution mutates.
//!
//! Because the clock is virtual, a cloned `RunState` replays *exactly*:
//! [`Vm::snapshot`] captures one at any host-side window boundary,
//! [`Vm::resume`] rebuilds a machine around it, and the continuation is
//! bit-identical to never having snapshotted (`tests/fork_equiv.rs`).
//! With [`VmConfig::fork_snapshots`] set, the engine also self-captures at
//! recompilation decisions — the fork points the compilation-forking data
//! factory replays under counterfactual levels (`evovm_core::fork`).
//!
//! # Host-side performance (the interpreter hot path)
//!
//! The virtual clock above defines *what* a run costs; this section is
//! about how cheaply the host computes it. Three structural choices keep
//! the per-instruction path tight, all invisible to the virtual clock
//! (see `DESIGN.md` § "Interpreter internals" and the equivalence suite
//! `tests/interp_equiv.rs`):
//!
//! - **Fuel-based event accounting** — sample delivery and cycle-budget
//!   exhaustion only matter at clock thresholds, so the dispatch loop
//!   computes the next event deadline once per window and decrements a
//!   local fuel counter; the division, `Option` check and sample
//!   comparison of the naive loop run only at event boundaries.
//! - **Folded cost tables** — [`CompiledCode::cost_milli`] precomputes
//!   `base_cost × quality_milli` per instruction at compile time; the hot
//!   loop does one indexed load.
//! - **Frame arena** — operand stacks and locals of all active frames
//!   live in one contiguous [`Vec<Value>`]; calls reuse the caller's
//!   argument slots in place and allocate nothing.
//!
//! [`InterpMode::Reference`] selects a deliberately naive dispatch loop
//! (per-instruction checks, multiplies and re-borrows) kept as the golden
//! oracle for differential tests and as the "before" side of the
//! dispatch microbenchmark.

use std::sync::Arc;

use evovm_bytecode::analysis::{frame_bounds, FrameBounds};
use evovm_bytecode::program::Program;
use evovm_bytecode::scalar::{self, BinOp, BitOp, CmpOp, Scalar};
use evovm_bytecode::{FuncId, Instr, StrId};
use evovm_opt::{CompiledCode, OptLevel, Optimizer};

use crate::error::{Trap, VmError};
use crate::policy::{AosContext, AosPolicy};
use crate::profile::{DispatchProfile, RecompileEvent, RunProfile};
use crate::value::{Heap, Value};

/// Virtual cycles per simulated second; converts clock readings into the
/// "running time" figures the experiments report.
pub const CYCLES_PER_SECOND: u64 = 100_000_000;

/// Cap on how many arena slots [`Vm::new`] preallocates from the static
/// bound, so a deep-but-bounded call chain cannot make construction
/// reserve absurd memory up front (the arena still grows on demand past
/// the cap, exactly as before pre-sizing existed).
const ARENA_PRESIZE_CAP_SLOTS: usize = 1 << 16;

/// Which dispatch loop executes the program. Both produce bit-identical
/// virtual-clock results (cycles, samples, recompilations, output); they
/// differ only in host-side cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// The production hot path: fuel-based event windows, folded cost
    /// tables, arena frames.
    #[default]
    Fast,
    /// The straight-line reference loop: per-instruction budget check
    /// (with its division), per-instruction sample polling, a
    /// `base_cost × quality` multiply per instruction and a
    /// `frames.last_mut()` re-borrow per step. Kept as the differential-
    /// testing oracle and the microbenchmark baseline.
    Reference,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Virtual cycles between profiler samples (Jikes-style timer ticks).
    pub sample_interval_cycles: u64,
    /// Maximum call depth before a [`Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Optional hard cycle budget (guards against runaway programs).
    pub cycle_budget: Option<u64>,
    /// Which dispatch loop to run (differential-testing hook; defaults to
    /// [`InterpMode::Fast`]).
    pub interp: InterpMode,
    /// Collect per-opcode and opcode-pair frequency counters into
    /// [`RunProfile::dispatch`]. Off by default: the fast loop is compiled
    /// in two monomorphic flavours, so the counters cost nothing when
    /// disabled.
    pub profile_dispatch: bool,
    /// Let the optimizer fuse hot opcode pairs into superinstructions at
    /// O1/O2. On by default; the off switch exists so the dispatch
    /// profiler can measure the raw pre-fusion pair distribution and so
    /// tests can compare fused against unfused runs (the virtual clock is
    /// bit-identical either way).
    pub fuse: bool,
    /// Maximum number of fork points the engine self-captures at
    /// recompilation decisions (a [`RunSnapshot`] taken right before each
    /// decision applies, drained via [`Vm::take_fork_snapshots`]). Zero —
    /// the default — disables capture entirely; the check lives on the
    /// sample tick path, never in the dispatch loop, so production runs
    /// pay nothing.
    pub fork_snapshots: usize,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            sample_interval_cycles: 100_000,
            max_call_depth: 2048,
            cycle_budget: None,
            interp: InterpMode::Fast,
            profile_dispatch: false,
            fuse: true,
            fork_snapshots: 0,
        }
    }
}

/// Why the machine returned control.
#[derive(Debug)]
pub enum Outcome {
    /// The program ran to completion. Boxed: one `Outcome` moves per run,
    /// and keeping the enum a pointer wide spares every pause/resume
    /// round-trip from copying an inline [`RunResult`].
    Finished(Box<RunResult>),
    /// The program executed `Done` (XICL `done()`): published features are
    /// complete and the host may predict + swap the policy, then call
    /// [`Vm::run`] again.
    FeaturesReady,
}

/// Everything observable about one finished run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values printed by the program, in order.
    pub output: Vec<String>,
    /// Features published via `Publish`, in order.
    pub published: Vec<(String, Scalar)>,
    /// Total virtual cycles (execution + compilation).
    pub total_cycles: u64,
    /// Cycles spent executing program instructions.
    pub exec_cycles: u64,
    /// Cycles spent compiling.
    pub compile_cycles: u64,
    /// Program instructions retired. A host-throughput denominator (see
    /// `examples/perf_sweep.rs`); it has no effect on the virtual clock.
    pub instructions: u64,
    /// What the profiler saw.
    pub profile: RunProfile,
}

impl RunResult {
    /// The run's simulated wall-clock duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / CYCLES_PER_SECOND as f64
    }
}

/// One active call: plain metadata into the shared arena. The records
/// live in a pooled `Vec` (popping keeps capacity), so steady-state calls
/// allocate nothing.
#[derive(Debug, Clone)]
struct Frame {
    method: FuncId,
    code: Arc<Vec<Instr>>,
    cost_milli: Arc<Vec<u64>>,
    quality_milli: u64,
    ip: usize,
    /// First arena slot of this frame's locals; the frame's operand
    /// stack is the arena tail above them. Everything below belongs to
    /// callers and is untouchable (the verifier bounds stack depth).
    locals_base: usize,
}

/// What [`step_op`] asks the dispatch loop to do next.
enum Step {
    /// Keep executing the current frame.
    Next,
    /// Push a frame for the callee.
    Call(FuncId),
    /// Pop the current frame.
    Return,
    /// Pause the machine (XICL `done()`).
    Done,
}

/// One monomorphic call-site cache entry: everything a frame push needs,
/// resolved once per (callee, compiled code) and reused until the callee
/// recompiles. Because calls name their callee statically, caching per
/// callee is exactly caching per call site.
#[derive(Debug, Clone)]
struct CallTarget {
    arity: usize,
    locals: u16,
    max_stack: u32,
    quality_milli: u64,
    code: Arc<Vec<Instr>>,
    cost_milli: Arc<Vec<u64>>,
}

/// What ended a fuel window.
enum Pending {
    /// Fuel exhausted: a sample is due and/or the budget deadline passed.
    Event,
    /// A `Call` needs a frame push (and possibly a compilation).
    Call(FuncId),
    /// A `Return` needs a frame pop.
    Return,
    /// `Done` pauses the machine.
    Done,
    /// A trap or runtime error surfaced mid-window.
    Fault(VmError),
}

/// The run-mutable half of a [`Vm`]: everything execution changes.
///
/// This includes the compiled-code and call-site caches and the per-method
/// levels — recompilations happen mid-run and charge the virtual clock, so
/// compilation state *is* run state and must travel with a snapshot for
/// the continuation to replay bit-identically. The immutable program
/// context (program, config, optimizer, static bounds) stays on [`Vm`].
#[derive(Debug, Clone)]
struct RunState {
    cache: Vec<Option<CompiledCode>>,
    /// Monomorphic call-site cache, indexed like `cache`; entries are
    /// invalidated whenever the callee recompiles.
    call_cache: Vec<Option<CallTarget>>,
    levels: Vec<OptLevel>,
    heap: Heap,
    frames: Vec<Frame>,
    /// Locals + operand stacks of all active frames, contiguously.
    arena: Vec<Value>,
    clock_milli: u64,
    exec_milli: u64,
    compile_milli: u64,
    next_sample_milli: u64,
    instructions: u64,
    profile: RunProfile,
    output: Vec<String>,
    published: Vec<(String, Scalar)>,
    /// Publishes since the last pause, as interned ids: the hot loop
    /// never allocates a feature name; ids resolve in [`Vm::flush_published`]
    /// at the next `Done` pause or at finish.
    pending_publish: Vec<(StrId, Scalar)>,
    started: bool,
    finished: bool,
}

/// A point-in-time copy of one run, taken at a window boundary — either
/// by the host via [`Vm::snapshot`] (between [`Vm::run`] calls) or by the
/// engine itself at a recompilation decision when
/// [`VmConfig::fork_snapshots`] is set.
///
/// A snapshot is self-contained and `Send`: it carries the program, the
/// config, a forked copy of the policy ([`AosPolicy::fork_box`]) and the
/// full [`RunState`], so [`Vm::resume`] can rebuild the machine anywhere —
/// on another worker thread, under a different cycle budget, or under a
/// counterfactual level decision ([`RunSnapshot::override_decision`]).
/// Resuming and running to completion is bit-identical to never having
/// snapshotted, in both [`InterpMode`]s (`tests/fork_equiv.rs`).
#[derive(Debug)]
pub struct RunSnapshot {
    program: Arc<Program>,
    config: VmConfig,
    static_bounds: FrameBounds,
    policy: Box<dyn AosPolicy>,
    state: RunState,
    /// The recompilation decision captured at a fork point: the sampled
    /// method and the level the live policy chose. `None` for host-side
    /// snapshots.
    decision: Option<(FuncId, OptLevel)>,
    /// The level [`Vm::resume`] will actually compile `decision`'s method
    /// to. Starts equal to the captured decision; forks override it per
    /// counterfactual. `None` suppresses the recompilation entirely (the
    /// "keep the current level" arm — and because upward-only recompile
    /// semantics make any target `<=` the current level a no-op, lower
    /// counterfactuals degrade to this arm naturally).
    applied: Option<OptLevel>,
    /// Arena capacity at capture. Cloning a `Vec` copies contents, not
    /// spare capacity, and the dispatch loop's unchecked pushes rely on
    /// the operand headroom reserved at frame entry — resume re-reserves
    /// to this figure before executing anything.
    arena_capacity: usize,
}

impl Clone for RunSnapshot {
    fn clone(&self) -> RunSnapshot {
        RunSnapshot {
            program: Arc::clone(&self.program),
            config: self.config.clone(),
            static_bounds: self.static_bounds,
            policy: self.policy.fork_box(),
            state: self.state.clone(),
            decision: self.decision,
            applied: self.applied,
            arena_capacity: self.arena_capacity,
        }
    }
}

impl RunSnapshot {
    /// Virtual clock at capture, in cycles.
    pub fn cycles(&self) -> u64 {
        self.state.clock_milli / 1000
    }

    /// Instructions retired up to capture.
    pub fn instructions(&self) -> u64 {
        self.state.instructions
    }

    /// The recompilation decision pending at capture (`None` for
    /// host-side snapshots): the sampled method and the level the live
    /// policy chose for it.
    pub fn pending_decision(&self) -> Option<(FuncId, OptLevel)> {
        self.decision
    }

    /// The compiled level `method` had at capture.
    pub fn level_of(&self, method: FuncId) -> OptLevel {
        self.state.levels[method.index()]
    }

    /// Replace the level [`Vm::resume`] applies for the captured decision.
    /// `None` suppresses the recompilation (the counterfactual "stay where
    /// you are"). No effect on host-side snapshots, which carry no
    /// decision.
    pub fn override_decision(&mut self, level: Option<OptLevel>) {
        if self.decision.is_some() {
            self.applied = level;
        }
    }

    /// Replace the cycle budget the resumed machine runs under. Forks use
    /// this to lift a budget that already tripped, or to bound
    /// counterfactual continuations.
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.config.cycle_budget = budget;
    }
}

/// The virtual machine: the immutable program context plus one
/// [`RunState`] (see the module docs on the split).
#[derive(Debug)]
pub struct Vm {
    program: Arc<Program>,
    config: VmConfig,
    policy: Box<dyn AosPolicy>,
    optimizer: Optimizer,
    /// Static call-depth/arena bounds proven at construction; used to
    /// pre-size `frames` and `arena` and exposed for soundness checks.
    static_bounds: FrameBounds,
    state: RunState,
    /// Fork points self-captured at recompilation decisions, in decision
    /// order, up to [`VmConfig::fork_snapshots`]. Kept outside `state` so
    /// snapshots never nest.
    fork_points: Vec<RunSnapshot>,
}

impl Vm {
    /// Create a machine for `program` under `policy`.
    ///
    /// Verification also yields the whole-program frame bounds
    /// ([`evovm_bytecode::analysis::frame_bounds`]); when the program's
    /// call graph is recursion-free, the frame arena and the frame stack
    /// are preallocated to the proven maxima of the verified bytecode, so
    /// execution at levels that preserve locals counts performs no arena
    /// growth at all (O2 inlining may add locals and grow past the hint;
    /// recursion falls back to on-demand growth as before).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Verify`] if the program fails verification.
    pub fn new(
        program: Arc<Program>,
        policy: Box<dyn AosPolicy>,
        config: VmConfig,
    ) -> Result<Vm, VmError> {
        let facts = evovm_bytecode::verify::verify_with_facts(&program)?;
        let static_bounds = frame_bounds(&program, &facts);
        let arena_capacity = static_bounds
            .arena_slots
            .unwrap_or(0)
            .min(ARENA_PRESIZE_CAP_SLOTS);
        let frame_capacity = static_bounds
            .call_depth
            .unwrap_or(0)
            .min(config.max_call_depth);
        let n = program.functions().len();
        let mut profile = RunProfile::new(n);
        if config.profile_dispatch {
            profile.dispatch = Some(DispatchProfile::new());
        }
        Ok(Vm {
            program,
            optimizer: Optimizer::new().with_fusion(config.fuse),
            state: RunState {
                cache: (0..n).map(|_| None).collect(),
                call_cache: (0..n).map(|_| None).collect(),
                levels: vec![OptLevel::Baseline; n],
                heap: Heap::new(),
                frames: Vec::with_capacity(frame_capacity),
                arena: Vec::with_capacity(arena_capacity),
                clock_milli: 0,
                exec_milli: 0,
                compile_milli: 0,
                next_sample_milli: config.sample_interval_cycles * 1000,
                instructions: 0,
                profile,
                output: Vec::new(),
                published: Vec::new(),
                pending_publish: Vec::new(),
                started: false,
                finished: false,
            },
            config,
            policy,
            static_bounds,
            fork_points: Vec::new(),
        })
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The static call-depth/arena bounds proven at construction. `None`
    /// fields mean recursion makes the quantity statically unbounded.
    pub fn static_bounds(&self) -> FrameBounds {
        self.static_bounds
    }

    /// Features published so far. Complete at every `FeaturesReady` pause
    /// and after the run finishes (names resolve from the string table at
    /// those points, not per `Publish`).
    pub fn published(&self) -> &[(String, Scalar)] {
        &self.state.published
    }

    /// Swap the recompilation policy, returning the old one. Intended for
    /// the `FeaturesReady` pause, where the host installs a predicted
    /// strategy before resuming.
    pub fn replace_policy(&mut self, policy: Box<dyn AosPolicy>) -> Box<dyn AosPolicy> {
        std::mem::replace(&mut self.policy, policy)
    }

    /// Current virtual clock in cycles.
    pub fn cycles(&self) -> u64 {
        self.state.clock_milli / 1000
    }

    /// Capture the run as a [`RunSnapshot`]. Valid at any point where the
    /// host holds control — before the first [`Vm::run`], at a
    /// `FeaturesReady` pause, or after an error returned with the state
    /// intact (e.g. a tripped cycle budget) — which are exactly the event-
    /// window boundaries: frame ips and accounting are fully written back
    /// there, so the copy resumes bit-identically.
    pub fn snapshot(&self) -> RunSnapshot {
        self.make_snapshot(None)
    }

    /// Drain the fork points self-captured at recompilation decisions
    /// (none unless [`VmConfig::fork_snapshots`] is set).
    pub fn take_fork_snapshots(&mut self) -> Vec<RunSnapshot> {
        std::mem::take(&mut self.fork_points)
    }

    /// Rebuild a machine from `snapshot` and re-enter the run exactly
    /// where it was captured. If the snapshot carries a recompilation
    /// decision (a fork point), the decision — or its counterfactual
    /// override — is applied first, then any sample ticks the compilation
    /// pushed the clock past are delivered, exactly continuing the
    /// sampler loop the capture interrupted. The resumed machine never
    /// self-captures fork points of its own (forks don't fork).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Miscompile`] if replaying the captured decision
    /// fails to produce verifiable code.
    pub fn resume(snapshot: RunSnapshot) -> Result<Vm, VmError> {
        let RunSnapshot {
            program,
            mut config,
            static_bounds,
            policy,
            mut state,
            decision,
            applied,
            arena_capacity,
        } = snapshot;
        config.fork_snapshots = 0;
        // Re-establish the unchecked-push invariant: every active frame's
        // entry reserved `locals + max_stack` arena slots and capacity
        // never shrinks, so the capture-time capacity covers the verified
        // operand headroom of every frame on the stack.
        state
            .arena
            .reserve(arena_capacity.saturating_sub(state.arena.len()));
        let mut vm = Vm {
            optimizer: Optimizer::new().with_fusion(config.fuse),
            program,
            config,
            policy,
            static_bounds,
            state,
            fork_points: Vec::new(),
        };
        if decision.is_some() {
            if let (Some((method, _)), Some(level)) = (decision, applied) {
                vm.recompile(method, level)?;
            }
            vm.maybe_sample()?;
        }
        Ok(vm)
    }

    /// Apply a per-method level strategy to methods that are *already*
    /// compiled, recompiling upward where the target exceeds the current
    /// level. Methods not yet compiled are unaffected (the active policy's
    /// `on_first_compile` covers them). Used by the evolvable VM when a
    /// prediction arrives at a `FeaturesReady` pause.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Miscompile`] if a pipeline emits unverifiable
    /// code for one of the recompiled methods.
    pub fn apply_strategy(&mut self, levels: &[Option<OptLevel>]) -> Result<(), VmError> {
        for (i, target) in levels.iter().enumerate() {
            let (Some(level), true) = (target, self.state.cache[i].is_some()) else {
                continue;
            };
            self.recompile(FuncId(i as u32), *level)?;
        }
        Ok(())
    }

    /// Charge extra virtual cycles to the clock (the evolvable VM charges
    /// its feature-extraction and prediction overheads this way, so they
    /// appear in the run's total time exactly as in the paper).
    ///
    /// Overhead goes through the same event accounting as execution:
    /// timer ticks falling inside the charged span are delivered here —
    /// attributed to the currently-executing method, or skipped when the
    /// machine is not running (before start, the usual case for launch
    /// overhead) — rather than being silently deferred or swallowed.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Miscompile`] if a sample delivered inside the
    /// charged span triggers a recompilation whose pipeline emits
    /// unverifiable code.
    pub fn charge_overhead(&mut self, cycles: u64) -> Result<(), VmError> {
        self.state.clock_milli += cycles * 1000;
        self.maybe_sample()
    }

    /// Run (or resume) the program until it finishes or pauses.
    ///
    /// # Errors
    ///
    /// Runtime traps, budget exhaustion, or [`VmError::AlreadyFinished`]
    /// if called again after completion.
    pub fn run(&mut self) -> Result<Outcome, VmError> {
        if self.state.finished {
            return Err(VmError::AlreadyFinished);
        }
        if !self.state.started {
            self.state.started = true;
            let entry = self.program.entry();
            self.invoke(entry, 0)?;
        }
        match self.config.interp {
            InterpMode::Fast => {
                // Two monomorphic flavours: dispatch profiling off is the
                // production path and pays nothing for the counters.
                if self.state.profile.dispatch.is_some() {
                    self.execute::<true>()
                } else {
                    self.execute::<false>()
                }
            }
            InterpMode::Reference => self.execute_reference(),
        }
    }

    // --- snapshotting ---

    fn make_snapshot(&self, decision: Option<(FuncId, OptLevel)>) -> RunSnapshot {
        RunSnapshot {
            program: Arc::clone(&self.program),
            config: self.config.clone(),
            static_bounds: self.static_bounds,
            policy: self.policy.fork_box(),
            state: self.state.clone(),
            decision,
            applied: decision.map(|(_, level)| level),
            arena_capacity: self.state.arena.capacity(),
        }
    }

    // --- compilation management ---

    /// Compile `method` at `level` and install the result. The pipeline's
    /// output is re-verified in every build profile; unverifiable code is
    /// rejected as [`VmError::Miscompile`] before it can execute.
    fn compile_to(&mut self, method: FuncId, level: OptLevel) -> Result<(), VmError> {
        let compiled = self
            .optimizer
            .compile_checked(&self.program, method, level)?;
        self.state.clock_milli += compiled.compile_cycles * 1000;
        self.state.compile_milli += compiled.compile_cycles * 1000;
        self.state.levels[method.index()] = level;
        self.state.cache[method.index()] = Some(compiled);
        // New code: any cached call target for this method is stale.
        self.state.call_cache[method.index()] = None;
        Ok(())
    }

    fn recompile(&mut self, method: FuncId, to: OptLevel) -> Result<(), VmError> {
        let from = self.state.levels[method.index()];
        if to <= from {
            return Ok(());
        }
        self.compile_to(method, to)?;
        self.state.profile.recompilations.push(RecompileEvent {
            at_cycles: self.state.clock_milli / 1000,
            method,
            from,
            to,
        });
        Ok(())
    }

    fn ensure_compiled(&mut self, method: FuncId) -> Result<(), VmError> {
        if self.state.cache[method.index()].is_some() {
            return Ok(());
        }
        // First invocation: baseline-compile, then give the policy its
        // proactive chance.
        self.compile_to(method, OptLevel::Baseline)?;
        let target = self.policy.on_first_compile(
            method,
            AosContext {
                program: &self.program,
                samples: &self.state.profile.samples,
                levels: &self.state.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            self.recompile(method, level)?;
        }
        Ok(())
    }

    /// Push a frame for `method`. The callee's `arity` arguments are the
    /// topmost arena values (the caller's stack tail) and become the
    /// head of the callee's locals in place — no argument vector, no
    /// locals vector, no operand-stack vector is allocated.
    fn invoke(&mut self, method: FuncId, arity: usize) -> Result<(), VmError> {
        if self.state.frames.len() >= self.config.max_call_depth {
            return Err(VmError::Trap(Trap::StackOverflow));
        }
        self.ensure_compiled(method)?;
        self.state.profile.invocations[method.index()] += 1;
        let compiled = self.state.cache[method.index()]
            .as_ref()
            .expect("just compiled");
        let locals_base = self.state.arena.len() - arity;
        // Zero-fill the non-argument locals, then reserve the verified
        // operand-stack bound: while this frame is on top the arena never
        // outgrows `locals_base + locals + max_stack`, so the dispatch
        // loop's push sites can skip the capacity check (see
        // `push_tracked`). Capacity never shrinks, so the guarantee
        // survives event windows and deeper calls (each reserves its own).
        self.state
            .arena
            .resize(locals_base + compiled.locals as usize, Value::Null);
        self.state.arena.reserve(compiled.max_stack as usize);
        self.state.frames.push(Frame {
            method,
            code: Arc::clone(&compiled.code),
            cost_milli: Arc::clone(&compiled.cost_milli),
            quality_milli: compiled.quality_milli,
            ip: 0,
            locals_base,
        });
        self.state.profile.peak_call_depth = self
            .state
            .profile
            .peak_call_depth
            .max(self.state.frames.len());
        self.state.profile.peak_arena_slots = self
            .state
            .profile
            .peak_arena_slots
            .max(self.state.arena.len());
        Ok(())
    }

    /// [`Vm::invoke`] through the monomorphic call-site cache: on a hit
    /// the frame push reads everything from one [`CallTarget`] record —
    /// no function-table walk, no compiled-code cache probe, no policy
    /// consultation (a hit implies the callee is already compiled, so
    /// [`Vm::ensure_compiled`] would be a no-op anyway). A miss takes the
    /// full [`Vm::invoke`] path and then primes the cache. Accounting
    /// (depth check, invocation count, peaks) is identical in both paths
    /// and the virtual clock is untouched either way.
    fn invoke_cached(&mut self, callee: FuncId) -> Result<(), VmError> {
        if self.state.call_cache[callee.index()].is_none() {
            let arity = self.program.function(callee).arity as usize;
            self.invoke(callee, arity)?;
            let compiled = self.state.cache[callee.index()]
                .as_ref()
                .expect("just compiled");
            self.state.call_cache[callee.index()] = Some(CallTarget {
                arity,
                locals: compiled.locals,
                max_stack: compiled.max_stack,
                quality_milli: compiled.quality_milli,
                code: Arc::clone(&compiled.code),
                cost_milli: Arc::clone(&compiled.cost_milli),
            });
            return Ok(());
        }
        if self.state.frames.len() >= self.config.max_call_depth {
            return Err(VmError::Trap(Trap::StackOverflow));
        }
        self.state.profile.invocations[callee.index()] += 1;
        let target = self.state.call_cache[callee.index()]
            .as_ref()
            .expect("checked");
        let locals_base = self.state.arena.len() - target.arity;
        // Same reservation as `Vm::invoke`: locals zero-filled, then the
        // verified operand bound so hot-loop pushes can skip the capacity
        // check.
        self.state
            .arena
            .resize(locals_base + target.locals as usize, Value::Null);
        self.state.arena.reserve(target.max_stack as usize);
        self.state.frames.push(Frame {
            method: callee,
            code: Arc::clone(&target.code),
            cost_milli: Arc::clone(&target.cost_milli),
            quality_milli: target.quality_milli,
            ip: 0,
            locals_base,
        });
        self.state.profile.peak_call_depth = self
            .state
            .profile
            .peak_call_depth
            .max(self.state.frames.len());
        self.state.profile.peak_arena_slots = self
            .state
            .profile
            .peak_arena_slots
            .max(self.state.arena.len());
        Ok(())
    }

    fn take_sample(&mut self) -> Result<(), VmError> {
        let method = self
            .state
            .frames
            .last()
            .expect("sampling requires a frame")
            .method;
        self.state.profile.samples[method.index()] += 1;
        let target = self.policy.on_sample(
            method,
            AosContext {
                program: &self.program,
                samples: &self.state.profile.samples,
                levels: &self.state.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            // Fork capture: the state is a consistent window boundary here
            // (both dispatch loops write frame ips and accounting back
            // before delivering samples), and the decision has not applied
            // yet — so a resumed snapshot can replay it, or any
            // counterfactual. Only genuine upgrades are fork points;
            // `recompile` would no-op on the rest.
            if self.fork_points.len() < self.config.fork_snapshots
                && level > self.state.levels[method.index()]
            {
                let snap = self.make_snapshot(Some((method, level)));
                self.fork_points.push(snap);
            }
            self.recompile(method, level)?;
        }
        Ok(())
    }

    /// Resolve the pending publish ids against the string table. Runs at
    /// `Done` pauses and at finish, keeping the name allocation out of
    /// the dispatch loop.
    fn flush_published(&mut self) {
        for (id, value) in self.state.pending_publish.drain(..) {
            self.state
                .published
                .push((self.program.string(id).to_owned(), value));
        }
    }

    fn finish(&mut self) -> RunResult {
        self.state.finished = true;
        self.flush_published();
        self.state.profile.final_levels = self.state.levels.clone();
        RunResult {
            output: std::mem::take(&mut self.state.output),
            published: std::mem::take(&mut self.state.published),
            total_cycles: self.state.clock_milli / 1000,
            exec_cycles: self.state.exec_milli / 1000,
            compile_cycles: self.state.compile_milli / 1000,
            instructions: self.state.instructions,
            profile: std::mem::take(&mut self.state.profile),
        }
    }

    // --- event accounting ---

    /// First clock reading (in milli-cycles) at which the slow path must
    /// run: the next sample tick or the budget deadline, whichever comes
    /// first. The budget trips when `cycles() > budget`, i.e. at
    /// `(budget + 1) * 1000` milli.
    fn event_deadline_milli(&self) -> u64 {
        let budget_deadline = self
            .config
            .cycle_budget
            .map_or(u64::MAX, |b| b.saturating_add(1).saturating_mul(1000));
        self.state.next_sample_milli.min(budget_deadline)
    }

    fn check_budget(&self) -> Result<(), VmError> {
        if let Some(budget) = self.config.cycle_budget {
            if self.state.clock_milli / 1000 > budget {
                return Err(VmError::CycleBudgetExceeded { budget });
            }
        }
        Ok(())
    }

    fn maybe_sample(&mut self) -> Result<(), VmError> {
        while self.state.clock_milli >= self.state.next_sample_milli {
            self.state.next_sample_milli += self.config.sample_interval_cycles * 1000;
            if !self.state.frames.is_empty() {
                self.take_sample()?;
            }
        }
        Ok(())
    }

    // --- the interpreters ---

    /// The production dispatch loop: executes fuel windows of
    /// straight-line work and falls into the slow path only at event
    /// boundaries (sample ticks, budget deadline) and frame switches.
    ///
    /// `PROFILE` selects the dispatch-profiling flavour (counters bumped
    /// at every fetch); [`Vm::run`] picks it from whether
    /// [`RunProfile::dispatch`] is present, so the plain flavour carries
    /// no trace of the counters.
    fn execute<const PROFILE: bool>(&mut self) -> Result<Outcome, VmError> {
        self.check_budget()?;
        // Arena high-water mark, kept in a local so the hot loop's
        // net-push arms can bump it without touching the profile;
        // written back at every window boundary. Exact: the arena only
        // grows at net-push instructions (tracked in `step_op`) and at
        // frame pushes (tracked in `invoke`) — a `Return` can never set a
        // new maximum because the popped frame already reached at least
        // the post-return height while it ran.
        let mut peak = self.state.profile.peak_arena_slots;
        loop {
            // One event window: no sample can become due and the budget
            // cannot trip while `fuel` stays positive, because only
            // instruction costs move the clock inside the window. Calls
            // and returns between frames stay *inside* the window on
            // their hot paths (cached callee, depth in range, non-final
            // return): a frame switch moves no clock, so the deadline is
            // unchanged and the remaining fuel carries over — only the
            // cold paths (first invocation, which charges compilation;
            // depth overflow; the final return) fall out to the slow
            // path below.
            let fuel0 = i64::try_from(
                self.event_deadline_milli()
                    .saturating_sub(self.state.clock_milli),
            )
            .unwrap_or(i64::MAX);
            let mut fuel = fuel0;
            let mut retired: u64 = 0;
            let pending = 'frames: loop {
                // A shared borrow of the frame alongside mutable borrows
                // of the disjoint execution state — no `Arc` clones and
                // no `last_mut()` re-borrow per instruction. The borrow
                // ends at every segment break below, freeing `frames`
                // for the inline push/pop.
                let frame = self.state.frames.last().expect("running without a frame");
                let code: &[Instr] = &frame.code;
                // Equal-length reslice so the optimizer can fold the two
                // per-instruction bounds checks into one (the compiler
                // emits the tables in lockstep).
                let costs: &[u64] = &frame.cost_milli[..code.len()];
                let locals_base = frame.locals_base;
                let mut ip = frame.ip;
                let segment = loop {
                    // SAFETY: `ip` is always a valid pc of verified code.
                    // The verifier rejects empty functions (`EmptyCode`,
                    // so the entry pc 0 is valid), any branch whose target
                    // is not `< code.len()` (`BranchOutOfRange` — and
                    // `step_op` only assigns `ip` from such targets), and
                    // any non-terminator at the last pc (`FallsOffEnd`,
                    // so the `ip + 1` fall-through of a `Step::Next`
                    // instruction is in range). `costs` is resliced to
                    // `code.len()` above. The reference loop keeps its
                    // checked fetch and the differential suite pins the
                    // two loops instruction-for-instruction.
                    let (instr, cost) = unsafe {
                        debug_assert!(ip < code.len());
                        (*code.get_unchecked(ip), *costs.get_unchecked(ip))
                    };
                    ip += 1;
                    fuel -= cost as i64;
                    retired += 1;
                    if PROFILE {
                        self.state
                            .profile
                            .dispatch
                            .as_mut()
                            .expect("PROFILE flavour implies a dispatch profile")
                            .record(instr.dispatch_class());
                    }
                    match step_op(
                        &mut self.state.arena,
                        &mut self.state.heap,
                        &mut self.state.output,
                        &mut self.state.pending_publish,
                        instr,
                        &mut ip,
                        locals_base,
                        &mut retired,
                        &mut peak,
                    ) {
                        Ok(Step::Next) => {
                            // Events fire *after* the instruction that
                            // crosses the deadline, exactly like the
                            // per-instruction reference loop.
                            if fuel <= 0 {
                                break Pending::Event;
                            }
                        }
                        Ok(Step::Call(callee)) => break Pending::Call(callee),
                        Ok(Step::Return) => break Pending::Return,
                        Ok(Step::Done) => break Pending::Done,
                        Err(e) => break Pending::Fault(e),
                    }
                };
                match segment {
                    Pending::Call(callee) => {
                        let idx = callee.index();
                        if self.state.call_cache[idx].is_some()
                            && self.state.frames.len() < self.config.max_call_depth
                        {
                            // In-window frame push: the same work as
                            // `invoke_cached`'s hit path, minus the window
                            // teardown. A sample or budget check due *at*
                            // the call instruction is not lost: `fuel <= 0`
                            // breaks to the event path below, and because
                            // the push moves no clock, the event fires with
                            // the callee on top — exactly where the
                            // window-per-call structure sampled it.
                            self.state.frames.last_mut().expect("frame").ip = ip;
                            self.state.profile.invocations[idx] += 1;
                            let target = self.state.call_cache[idx].as_ref().expect("checked");
                            let locals_base = self.state.arena.len() - target.arity;
                            // Same locals fill + operand-bound reservation
                            // as `Vm::invoke` (see there for the
                            // `push_tracked` capacity invariant).
                            self.state
                                .arena
                                .resize(locals_base + target.locals as usize, Value::Null);
                            self.state.arena.reserve(target.max_stack as usize);
                            self.state.frames.push(Frame {
                                method: callee,
                                code: Arc::clone(&target.code),
                                cost_milli: Arc::clone(&target.cost_milli),
                                quality_milli: target.quality_milli,
                                ip: 0,
                                locals_base,
                            });
                            self.state.profile.peak_call_depth = self
                                .state
                                .profile
                                .peak_call_depth
                                .max(self.state.frames.len());
                            peak = peak.max(self.state.arena.len());
                            if fuel <= 0 {
                                // The callee frame's ip is already 0; no
                                // write-back needed.
                                break 'frames Pending::Event;
                            }
                            continue 'frames;
                        }
                        self.state.frames.last_mut().expect("frame").ip = ip;
                        break 'frames Pending::Call(callee);
                    }
                    Pending::Return => {
                        if self.state.frames.len() > 1 {
                            // In-window frame pop: identical to the slow
                            // path below except the window survives. The
                            // caller frame's ip was stored when it made
                            // the call.
                            let value = self.state.arena.pop().expect("verified");
                            let locals_base = self.state.frames.last().expect("frame").locals_base;
                            self.state.arena.truncate(locals_base);
                            self.state.frames.pop();
                            self.state.arena.push(value);
                            if fuel <= 0 {
                                break 'frames Pending::Event;
                            }
                            continue 'frames;
                        }
                        break 'frames Pending::Return;
                    }
                    Pending::Event | Pending::Done => {
                        self.state.frames.last_mut().expect("frame").ip = ip;
                        break 'frames segment;
                    }
                    Pending::Fault(_) => break 'frames segment,
                }
            };
            let spent = (fuel0 - fuel) as u64;
            self.state.clock_milli += spent;
            self.state.exec_milli += spent;
            self.state.instructions += retired;
            if peak > self.state.profile.peak_arena_slots {
                self.state.profile.peak_arena_slots = peak;
            }
            match pending {
                Pending::Event => {
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Call(callee) => {
                    // Cold call: first invocation of the callee (compile +
                    // cache priming, which moves the clock) or a depth
                    // overflow about to trap.
                    self.invoke_cached(callee)?;
                    // The frame push may have grown the arena.
                    peak = self.state.profile.peak_arena_slots;
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Return => {
                    // Final return: the program is done.
                    let value = self.state.arena.pop().expect("verified");
                    let locals_base = self.state.frames.last().expect("frame").locals_base;
                    self.state.arena.truncate(locals_base);
                    self.state.frames.pop();
                    if self.state.frames.is_empty() {
                        return Ok(Outcome::Finished(Box::new(self.finish())));
                    }
                    self.state.arena.push(value);
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Done => {
                    // Pause *after* advancing ip, then give the host
                    // control with resolved feature names.
                    self.flush_published();
                    self.maybe_sample()?;
                    return Ok(Outcome::FeaturesReady);
                }
                Pending::Fault(e) => return Err(e),
            }
        }
    }

    /// The naive per-instruction loop: the "old accounting" structure
    /// (division + `Option` budget check, sample poll and
    /// `frames.last_mut()` re-borrow on every instruction, cost
    /// recomputed as a multiply). Semantically bit-identical to
    /// [`Vm::execute`]; kept as the differential-testing oracle and the
    /// dispatch microbenchmark baseline.
    fn execute_reference(&mut self) -> Result<Outcome, VmError> {
        loop {
            if let Some(budget) = self.config.cycle_budget {
                if self.state.clock_milli / 1000 > budget {
                    return Err(VmError::CycleBudgetExceeded { budget });
                }
            }
            let frame = self.state.frames.last().expect("running without a frame");
            let ip = frame.ip;
            let instr = frame.code[ip];
            let locals_base = frame.locals_base;
            let cost = instr.base_cost() * frame.quality_milli;
            self.state.frames.last_mut().expect("frame").ip = ip + 1;
            self.state.clock_milli += cost;
            self.state.exec_milli += cost;
            self.state.instructions += 1;
            if let Some(d) = self.state.profile.dispatch.as_mut() {
                // Recorded at fetch, exactly like the fast loop, so the
                // two modes see the same global retirement order.
                d.record(instr.dispatch_class());
            }
            let mut next_ip = ip + 1;
            let mut peak = self.state.profile.peak_arena_slots;
            match step_op(
                &mut self.state.arena,
                &mut self.state.heap,
                &mut self.state.output,
                &mut self.state.pending_publish,
                instr,
                &mut next_ip,
                locals_base,
                &mut self.state.instructions,
                &mut peak,
            )? {
                Step::Next => self.state.frames.last_mut().expect("frame").ip = next_ip,
                Step::Call(callee) => {
                    let arity = self.program.function(callee).arity as usize;
                    self.invoke(callee, arity)?;
                }
                Step::Return => {
                    let value = self.state.arena.pop().expect("verified");
                    self.state.arena.truncate(locals_base);
                    self.state.frames.pop();
                    match self.state.frames.last() {
                        Some(_) => self.state.arena.push(value),
                        None => return Ok(Outcome::Finished(Box::new(self.finish()))),
                    }
                }
                Step::Done => {
                    self.flush_published();
                    self.maybe_sample()?;
                    return Ok(Outcome::FeaturesReady);
                }
            }
            // Exact arena-peak tracking: fold in the step's net-push
            // high-water mark (which sees transient heights inside fused
            // instructions) plus the post-step length.
            self.state.profile.peak_arena_slots = peak.max(self.state.arena.len());
            self.maybe_sample()?;
        }
    }
}

/// Execute one instruction against the arena and tell the dispatch loop
/// what to do next. A free function over the *disjoint* pieces of VM
/// state it touches, so callers can keep a shared borrow of the current
/// frame (code, cost table, locals base) alive across the call — no
/// `Arc` clone or `frames.last_mut()` re-borrow per instruction.
///
/// `retired` is the caller's retired-instruction counter, already bumped
/// by one for this dispatch; fused superinstructions add their remaining
/// component count so retirement totals stay identical to unfused code.
/// `peak` is the arena high-water mark; every net-push arm maxes it, which
/// together with the frame-push tracking in `Vm::invoke` keeps the peak
/// exact (see `RunProfile::peak_arena_slots`).
/// Read local `n` of the running frame without a bounds check.
///
/// SAFETY: every program the VM runs has passed [`evovm_bytecode::verify`],
/// which rejects any `Load`/`Store`-family operand with `n >= f.locals`
/// (`LocalOutOfRange`, including the fused forms), and `Vm::invoke`
/// establishes the frame layout `arena.len() >= locals_base + locals`
/// before the first dispatch. Operand pops can never shrink the arena
/// below `locals_base + locals` because the verifier proves the operand
/// depth at every pc covers every pop (`InconsistentDepth` /
/// `StackUnderflow` rejections), so `locals_base + n` stays in bounds
/// for the whole life of the frame.
#[inline(always)]
fn local(stack: &[Value], locals_base: usize, n: u16) -> Value {
    debug_assert!(locals_base + (n as usize) < stack.len());
    unsafe { *stack.get_unchecked(locals_base + n as usize) }
}

/// Write local `n` of the running frame without a bounds check.
///
/// SAFETY: identical argument to [`local`].
#[inline(always)]
fn set_local(stack: &mut [Value], locals_base: usize, n: u16, v: Value) {
    debug_assert!(locals_base + (n as usize) < stack.len());
    unsafe {
        *stack.get_unchecked_mut(locals_base + n as usize) = v;
    }
}

#[inline(always)]
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn step_op(
    stack: &mut Vec<Value>,
    heap: &mut Heap,
    output: &mut Vec<String>,
    pending_publish: &mut Vec<(StrId, Scalar)>,
    instr: Instr,
    ip: &mut usize,
    locals_base: usize,
    retired: &mut u64,
    peak: &mut usize,
) -> Result<Step, VmError> {
    // Arm order follows the measured retirement distribution in
    // BENCH_dispatch.json: local traffic (load 36%, const 12%, store
    // 10%), their fused forms, then branches lead the match.
    match instr {
        Instr::Load(n) => {
            let v = local(stack, locals_base, n);
            push_tracked(stack, peak, v);
        }
        Instr::Store(n) => {
            let v = pop(stack);
            set_local(stack, locals_base, n, v);
        }
        Instr::Const(v) => push_tracked(stack, peak, Value::Int(v)),

        // Fused superinstructions (formed by `evovm_opt`'s fusion pass).
        // Each arm bumps `retired` once per extra component, placed so a
        // trapping component leaves the same retirement count as its
        // unfused expansion (components before the trapping one counted,
        // later ones not).
        Instr::LoadLoad(a, b) => {
            *retired += 1;
            let v = local(stack, locals_base, a);
            push_tracked(stack, peak, v);
            let v = local(stack, locals_base, b);
            push_tracked(stack, peak, v);
        }
        Instr::LoadConst(n, v) => {
            *retired += 1;
            let l = local(stack, locals_base, n);
            push_tracked(stack, peak, l);
            push_tracked(stack, peak, Value::Int(v));
        }
        Instr::StoreLoad(n, m) => {
            *retired += 1;
            let v = pop(stack);
            set_local(stack, locals_base, n, v);
            let v = local(stack, locals_base, m);
            push_tracked(stack, peak, v);
        }
        Instr::StoreJump(n, t) => {
            *retired += 1;
            let v = pop(stack);
            set_local(stack, locals_base, n, v);
            *ip = t as usize;
        }
        // In `const v; op` the constant is the most recently pushed
        // operand, so the op computes `a op v` with `a` the prior top.
        Instr::ConstIBin(op, v) | Instr::ConstBin(op, v) => {
            *retired += 1;
            let slot = top_mut(stack);
            if let Value::Int(x) = *slot {
                *slot = scalar::binop(op, x.into(), v.into())?.into();
            } else {
                let a = (*slot).as_scalar()?;
                *slot = scalar::binop(op, a, v.into())?.into();
            }
        }
        Instr::ConstBit(op, v) => {
            *retired += 1;
            let slot = top_mut(stack);
            let a = (*slot).as_scalar()?;
            *slot = scalar::bitop(op, a, v.into())?.into();
        }
        Instr::ConstICmp(op, v) => {
            *retired += 1;
            let slot = top_mut(stack);
            *slot = cmp_values(op, *slot, Value::Int(v))?;
        }
        Instr::ICmpBr(op, t, when) | Instr::CmpBr(op, t, when) => {
            let b = pop(stack);
            let a = pop(stack);
            let taken = cmp_values(op, a, b)?.truthy();
            *retired += 1;
            if taken == when {
                *ip = t as usize;
            }
        }
        Instr::ConstICmpBr(op, v, t, when) => {
            *retired += 1;
            let a = pop(stack);
            let taken = cmp_values(op, a, Value::Int(v))?.truthy();
            *retired += 1;
            if taken == when {
                *ip = t as usize;
            }
        }
        // `op; store n`: the store component retires only once the op
        // has produced a value, exactly as the unfused pair would.
        Instr::IBinStore(op, n) | Instr::BinStore(op, n) => {
            binary(stack, op)?;
            *retired += 1;
            let r = pop(stack);
            set_local(stack, locals_base, n, r);
        }
        Instr::BitStore(op, n) => {
            bitwise(stack, op)?;
            *retired += 1;
            let r = pop(stack);
            set_local(stack, locals_base, n, r);
        }
        // `load n; op`: the loaded local is the most recently pushed
        // operand, so the op computes `a op locals[n]`.
        Instr::LoadIBin(op, n) | Instr::LoadBin(op, n) => {
            *retired += 1;
            let b = local(stack, locals_base, n);
            let slot = top_mut(stack);
            if let (Value::Int(x), Value::Int(y)) = (*slot, b) {
                *slot = scalar::binop(op, x.into(), y.into())?.into();
            } else {
                let b = b.as_scalar()?;
                let a = (*slot).as_scalar()?;
                *slot = scalar::binop(op, a, b)?.into();
            }
        }
        // `load n; aload`: the local is the element index, the array is
        // the prior stack top; index conversion traps first, as unfused.
        Instr::LoadALoad(n) => {
            *retired += 1;
            let index = local(stack, locals_base, n).as_int()?;
            let slot = top_mut(stack);
            *slot = heap.load(*slot, index)?;
        }
        // Tier-3 forms. Retirement bumps bracket the first component
        // that can trap, so a fault leaves the same retired count as the
        // unfused sequence (loads and consts retire before the op, the
        // trailing store/branch components after it succeeds).
        Instr::LoadLoadBin(op, a, b) => {
            *retired += 2;
            let x = local(stack, locals_base, a);
            let y = local(stack, locals_base, b);
            let r: Value = if let (Value::Int(x), Value::Int(y)) = (x, y) {
                scalar::binop(op, x.into(), y.into())?.into()
            } else {
                scalar::binop(op, x.as_scalar()?, y.as_scalar()?)?.into()
            };
            push_tracked(stack, peak, r);
        }
        Instr::LoadConstIBin(op, n, v) => {
            *retired += 2;
            let a = local(stack, locals_base, n);
            let r: Value = if let Value::Int(x) = a {
                scalar::binop(op, x.into(), v.into())?.into()
            } else {
                scalar::binop(op, a.as_scalar()?, v.into())?.into()
            };
            push_tracked(stack, peak, r);
        }
        Instr::LoadLoadCmpBr(op, a, b, t, when) => {
            *retired += 2;
            let x = local(stack, locals_base, a);
            let y = local(stack, locals_base, b);
            let taken = cmp_values(op, x, y)?.truthy();
            *retired += 1;
            if taken == when {
                *ip = t as usize;
            }
        }
        // `const v; bit; store n; load m`: mask the top of stack into
        // local `n`, then start the next statement from local `m`. The
        // store lands before the load so `n == m` reloads the stored
        // value, exactly as the unfused sequence would.
        Instr::ConstBitStoreLoad(op, v, n, m) => {
            *retired += 1;
            let a = (*top_mut(stack)).as_scalar()?;
            let r: Value = scalar::bitop(op, a, v.into())?.into();
            *retired += 2;
            set_local(stack, locals_base, n, r);
            let next = local(stack, locals_base, m);
            *top_mut(stack) = next;
        }
        Instr::ConstIBinStoreJump(op, v, n, t) => {
            *retired += 1;
            let a = pop(stack);
            let r: Value = if let Value::Int(x) = a {
                scalar::binop(op, x.into(), v.into())?.into()
            } else {
                scalar::binop(op, a.as_scalar()?, v.into())?.into()
            };
            *retired += 2;
            set_local(stack, locals_base, n, r);
            *ip = t as usize;
        }

        Instr::Jump(t) => *ip = t as usize,
        Instr::JumpIf(t) => {
            if pop(stack).truthy() {
                *ip = t as usize;
            }
        }
        Instr::JumpIfNot(t) => {
            if !pop(stack).truthy() {
                *ip = t as usize;
            }
        }

        Instr::FConst(v) => push_tracked(stack, peak, Value::Float(v)),
        Instr::Null => push_tracked(stack, peak, Value::Null),
        Instr::Dup => {
            let v = *top_mut(stack);
            push_tracked(stack, peak, v);
        }
        Instr::Pop => {
            stack.pop();
        }
        Instr::Swap => {
            let n = stack.len();
            stack.swap(n - 1, n - 2);
        }

        Instr::Add | Instr::IAdd | Instr::FAdd => binary(stack, BinOp::Add)?,
        Instr::Sub | Instr::ISub | Instr::FSub => binary(stack, BinOp::Sub)?,
        Instr::Mul | Instr::IMul | Instr::FMul => binary(stack, BinOp::Mul)?,
        Instr::Div | Instr::IDiv | Instr::FDiv => binary(stack, BinOp::Div)?,
        Instr::Rem | Instr::IRem => binary(stack, BinOp::Rem)?,
        Instr::Neg | Instr::INeg | Instr::FNeg => {
            let slot = top_mut(stack);
            let a = (*slot).as_scalar()?;
            *slot = scalar::neg(a).into();
        }

        Instr::Shl => bitwise(stack, BitOp::Shl)?,
        Instr::Shr => bitwise(stack, BitOp::Shr)?,
        Instr::BitAnd => bitwise(stack, BitOp::And)?,
        Instr::BitOr => bitwise(stack, BitOp::Or)?,
        Instr::BitXor => bitwise(stack, BitOp::Xor)?,

        Instr::CmpEq | Instr::ICmpEq | Instr::FCmpEq => compare(stack, CmpOp::Eq)?,
        Instr::CmpNe | Instr::ICmpNe | Instr::FCmpNe => compare(stack, CmpOp::Ne)?,
        Instr::CmpLt | Instr::ICmpLt | Instr::FCmpLt => compare(stack, CmpOp::Lt)?,
        Instr::CmpLe | Instr::ICmpLe | Instr::FCmpLe => compare(stack, CmpOp::Le)?,
        Instr::CmpGt | Instr::ICmpGt | Instr::FCmpGt => compare(stack, CmpOp::Gt)?,
        Instr::CmpGe | Instr::ICmpGe | Instr::FCmpGe => compare(stack, CmpOp::Ge)?,

        Instr::ToFloat => {
            let slot = top_mut(stack);
            let a = (*slot).as_scalar()?;
            *slot = scalar::to_float(a).into();
        }
        Instr::ToInt => {
            let slot = top_mut(stack);
            let a = (*slot).as_scalar()?;
            *slot = scalar::to_int(a).into();
        }

        Instr::NewArray => {
            let slot = top_mut(stack);
            let len = (*slot).as_int()?;
            *slot = heap.alloc(len)?;
        }
        Instr::ALoad => {
            let index = pop(stack).as_int()?;
            let slot = top_mut(stack);
            *slot = heap.load(*slot, index)?;
        }
        Instr::AStore => {
            let value = pop(stack);
            let index = pop(stack).as_int()?;
            let array = pop(stack);
            heap.store(array, index, value)?;
        }
        Instr::ALen => {
            let slot = top_mut(stack);
            *slot = Value::Int(heap.len(*slot)?);
        }

        Instr::Math(m) => {
            if m.arity() == 1 {
                let slot = top_mut(stack);
                let a = (*slot).as_scalar()?;
                *slot = scalar::math1(m, a).into();
            } else {
                let b = pop(stack).as_scalar()?;
                let slot = top_mut(stack);
                let a = (*slot).as_scalar()?;
                *slot = scalar::math2(m, a, b).into();
            }
        }

        Instr::Print => {
            let v = pop(stack);
            output.push(v.to_string());
        }
        Instr::Publish(s) => {
            let v = pop(stack);
            match v.as_scalar() {
                Ok(value) => pending_publish.push((s, value)),
                Err(_) => return Err(VmError::Trap(Trap::TypeError)),
            }
        }
        Instr::Nop => {}

        Instr::Call(callee) => return Ok(Step::Call(callee)),
        Instr::Return => return Ok(Step::Return),
        Instr::Done => return Ok(Step::Done),
    }
    Ok(Step::Next)
}

/// Push onto the operand stack and keep the arena high-water mark
/// current. Only the net-push arms of [`step_op`] go through here — every
/// other instruction leaves the stack no taller than it found it.
///
/// SAFETY: skips `Vec::push`'s capacity check. `Vm::invoke` /
/// `Vm::invoke_cached` reserve `locals + max_stack` arena slots at every
/// frame entry, where `max_stack` is the operand-depth bound the verifier
/// proved for the frame's code (`CompiledCode::max_stack`), and `Vec`
/// capacity never shrinks (a resumed snapshot re-reserves the capture-time
/// capacity before executing, preserving the bound across `Vm::resume`).
/// Every `step_op` push happens under a verified depth `< max_stack` of
/// the top frame, so `len < capacity` holds here.
#[inline(always)]
fn push_tracked(stack: &mut Vec<Value>, peak: &mut usize, v: Value) {
    let len = stack.len();
    debug_assert!(len < stack.capacity());
    unsafe {
        std::ptr::write(stack.as_mut_ptr().add(len), v);
        stack.set_len(len + 1);
    }
    if len + 1 > *peak {
        *peak = len + 1;
    }
}

/// Pop the operand-stack top without the emptiness check.
///
/// SAFETY: only called from [`step_op`] arms whose pop count the verifier
/// proved is covered by the operand depth at that pc (`StackUnderflow` /
/// `InconsistentDepth` rejections), so the stack is never empty here.
#[inline(always)]
fn pop(stack: &mut Vec<Value>) -> Value {
    debug_assert!(!stack.is_empty());
    unsafe {
        let len = stack.len() - 1;
        let v = *stack.get_unchecked(len);
        stack.set_len(len);
        v
    }
}

/// The operand-stack top, mutably, without the emptiness check.
///
/// SAFETY: identical argument to [`pop`].
#[inline(always)]
fn top_mut(stack: &mut [Value]) -> &mut Value {
    debug_assert!(!stack.is_empty());
    unsafe {
        let len = stack.len() - 1;
        stack.get_unchecked_mut(len)
    }
}

// The two-operand helpers pop the right operand and overwrite the left
// operand's slot in place: one length decrement and one store instead of
// a second pop plus a (capacity-checked) push.

#[inline(always)]
fn binary(stack: &mut Vec<Value>, op: BinOp) -> Result<(), VmError> {
    let b = pop(stack);
    let slot = top_mut(stack);
    // Int×int first, skipping the Value↔Scalar round-trips; `scalar::binop`
    // stays the single source of the arithmetic semantics either way.
    if let (Value::Int(x), Value::Int(y)) = (*slot, b) {
        *slot = scalar::binop(op, x.into(), y.into())?.into();
        return Ok(());
    }
    let b = b.as_scalar()?;
    let a = (*slot).as_scalar()?;
    *slot = scalar::binop(op, a, b)?.into();
    Ok(())
}

#[inline(always)]
fn bitwise(stack: &mut Vec<Value>, op: BitOp) -> Result<(), VmError> {
    let b = pop(stack);
    let slot = top_mut(stack);
    if let (Value::Int(x), Value::Int(y)) = (*slot, b) {
        *slot = scalar::bitop(op, x.into(), y.into())?.into();
        return Ok(());
    }
    let b = b.as_scalar()?;
    let a = (*slot).as_scalar()?;
    *slot = scalar::bitop(op, a, b)?.into();
    Ok(())
}

#[inline(always)]
fn compare(stack: &mut Vec<Value>, op: CmpOp) -> Result<(), VmError> {
    let b = pop(stack);
    let a = *top_mut(stack);
    let result = cmp_values(op, a, b)?;
    *top_mut(stack) = result;
    Ok(())
}

/// The comparison semantics shared by plain compares and the fused
/// compare-with-constant / compare-and-branch forms.
#[inline(always)]
fn cmp_values(op: CmpOp, a: Value, b: Value) -> Result<Value, VmError> {
    Ok(match (a, b) {
        (Value::Int(x), Value::Int(y)) => scalar::cmp(op, x.into(), y.into()).into(),
        // Reference/null equality is identity; ordering is a type error.
        (Value::Null, Value::Null) => match op {
            CmpOp::Eq => Value::Int(1),
            CmpOp::Ne => Value::Int(0),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Ref(x), Value::Ref(y)) => match op {
            CmpOp::Eq => Value::Int((x == y) as i64),
            CmpOp::Ne => Value::Int((x != y) as i64),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => match op {
            CmpOp::Eq => Value::Int(0),
            CmpOp::Ne => Value::Int(1),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        _ => scalar::cmp(op, a.as_scalar()?, b.as_scalar()?).into(),
    })
}
