//! The execution engine: a resumable interpreter with a virtual cycle
//! clock, timer-based sampling profiler and policy-driven recompilation.
//!
//! # Execution model
//!
//! - Every method is compiled by the **baseline** compiler on its first
//!   invocation (Jikes level −1); the active [`AosPolicy`] may immediately
//!   request a recompilation (the evolvable VM's proactive path) or do so
//!   later on a timer sample (the reactive path).
//! - Each executed instruction charges `base_cost × quality(level)` virtual
//!   cycles; compilations charge their own cost at the moment they happen.
//!   The clock is deterministic, so speedups and overheads are exactly
//!   reproducible.
//! - Every [`VmConfig::sample_interval_cycles`] cycles, one sample is
//!   attributed to the currently-executing method and the policy is
//!   consulted — mirroring Jikes RVM's timer-based sample organizer.
//! - Frames hold an `Arc` of their compiled code: a method recompiled
//!   mid-run keeps executing old code in active frames and picks up the
//!   new code on the next call, exactly like a real JIT.
//! - The `Done` instruction (XICL's `done()` call) pauses the machine and
//!   yields [`Outcome::FeaturesReady`] so the host can run prediction and
//!   swap the policy before resuming.
//!
//! # Host-side performance (the interpreter hot path)
//!
//! The virtual clock above defines *what* a run costs; this section is
//! about how cheaply the host computes it. Three structural choices keep
//! the per-instruction path tight, all invisible to the virtual clock
//! (see `DESIGN.md` § "Interpreter internals" and the equivalence suite
//! `tests/interp_equiv.rs`):
//!
//! - **Fuel-based event accounting** — sample delivery and cycle-budget
//!   exhaustion only matter at clock thresholds, so the dispatch loop
//!   computes the next event deadline once per window and decrements a
//!   local fuel counter; the division, `Option` check and sample
//!   comparison of the naive loop run only at event boundaries.
//! - **Folded cost tables** — [`CompiledCode::cost_milli`] precomputes
//!   `base_cost × quality_milli` per instruction at compile time; the hot
//!   loop does one indexed load.
//! - **Frame arena** — operand stacks and locals of all active frames
//!   live in one contiguous [`Vec<Value>`]; calls reuse the caller's
//!   argument slots in place and allocate nothing.
//!
//! [`InterpMode::Reference`] selects a deliberately naive dispatch loop
//! (per-instruction checks, multiplies and re-borrows) kept as the golden
//! oracle for differential tests and as the "before" side of the
//! dispatch microbenchmark.

use std::sync::Arc;

use evovm_bytecode::analysis::{frame_bounds, FrameBounds};
use evovm_bytecode::program::Program;
use evovm_bytecode::scalar::{self, BinOp, BitOp, CmpOp, Scalar};
use evovm_bytecode::{FuncId, Instr, StrId};
use evovm_opt::{CompiledCode, OptLevel, Optimizer};

use crate::error::{Trap, VmError};
use crate::policy::{AosContext, AosPolicy};
use crate::profile::{RecompileEvent, RunProfile};
use crate::value::{Heap, Value};

/// Virtual cycles per simulated second; converts clock readings into the
/// "running time" figures the experiments report.
pub const CYCLES_PER_SECOND: u64 = 100_000_000;

/// Cap on how many arena slots [`Vm::new`] preallocates from the static
/// bound, so a deep-but-bounded call chain cannot make construction
/// reserve absurd memory up front (the arena still grows on demand past
/// the cap, exactly as before pre-sizing existed).
const ARENA_PRESIZE_CAP_SLOTS: usize = 1 << 16;

/// Which dispatch loop executes the program. Both produce bit-identical
/// virtual-clock results (cycles, samples, recompilations, output); they
/// differ only in host-side cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterpMode {
    /// The production hot path: fuel-based event windows, folded cost
    /// tables, arena frames.
    #[default]
    Fast,
    /// The straight-line reference loop: per-instruction budget check
    /// (with its division), per-instruction sample polling, a
    /// `base_cost × quality` multiply per instruction and a
    /// `frames.last_mut()` re-borrow per step. Kept as the differential-
    /// testing oracle and the microbenchmark baseline.
    Reference,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Virtual cycles between profiler samples (Jikes-style timer ticks).
    pub sample_interval_cycles: u64,
    /// Maximum call depth before a [`Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Optional hard cycle budget (guards against runaway programs).
    pub cycle_budget: Option<u64>,
    /// Which dispatch loop to run (differential-testing hook; defaults to
    /// [`InterpMode::Fast`]).
    pub interp: InterpMode,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            sample_interval_cycles: 100_000,
            max_call_depth: 2048,
            cycle_budget: None,
            interp: InterpMode::Fast,
        }
    }
}

/// Why the machine returned control.
#[derive(Debug)]
pub enum Outcome {
    /// The program ran to completion.
    Finished(RunResult),
    /// The program executed `Done` (XICL `done()`): published features are
    /// complete and the host may predict + swap the policy, then call
    /// [`Vm::resume`].
    FeaturesReady,
}

/// Everything observable about one finished run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values printed by the program, in order.
    pub output: Vec<String>,
    /// Features published via `Publish`, in order.
    pub published: Vec<(String, Scalar)>,
    /// Total virtual cycles (execution + compilation).
    pub total_cycles: u64,
    /// Cycles spent executing program instructions.
    pub exec_cycles: u64,
    /// Cycles spent compiling.
    pub compile_cycles: u64,
    /// Program instructions retired. A host-throughput denominator (see
    /// `examples/perf_sweep.rs`); it has no effect on the virtual clock.
    pub instructions: u64,
    /// What the profiler saw.
    pub profile: RunProfile,
}

impl RunResult {
    /// The run's simulated wall-clock duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / CYCLES_PER_SECOND as f64
    }
}

/// One active call: plain metadata into the shared arena. The records
/// live in a pooled `Vec` (popping keeps capacity), so steady-state calls
/// allocate nothing.
#[derive(Debug)]
struct Frame {
    method: FuncId,
    code: Arc<Vec<Instr>>,
    cost_milli: Arc<Vec<u64>>,
    quality_milli: u64,
    ip: usize,
    /// First arena slot of this frame's locals; the frame's operand
    /// stack is the arena tail above them. Everything below belongs to
    /// callers and is untouchable (the verifier bounds stack depth).
    locals_base: usize,
}

/// What [`step_op`] asks the dispatch loop to do next.
enum Step {
    /// Keep executing the current frame.
    Next,
    /// Push a frame for the callee.
    Call(FuncId),
    /// Pop the current frame.
    Return,
    /// Pause the machine (XICL `done()`).
    Done,
}

/// What ended a fuel window.
enum Pending {
    /// Fuel exhausted: a sample is due and/or the budget deadline passed.
    Event,
    /// A `Call` needs a frame push (and possibly a compilation).
    Call(FuncId),
    /// A `Return` needs a frame pop.
    Return,
    /// `Done` pauses the machine.
    Done,
    /// A trap or runtime error surfaced mid-window.
    Fault(VmError),
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    program: Arc<Program>,
    config: VmConfig,
    policy: Box<dyn AosPolicy>,
    optimizer: Optimizer,
    cache: Vec<Option<CompiledCode>>,
    levels: Vec<OptLevel>,
    heap: Heap,
    frames: Vec<Frame>,
    /// Locals + operand stacks of all active frames, contiguously.
    arena: Vec<Value>,
    /// Static call-depth/arena bounds proven at construction; used to
    /// pre-size `frames` and `arena` and exposed for soundness checks.
    static_bounds: FrameBounds,
    clock_milli: u64,
    exec_milli: u64,
    compile_milli: u64,
    next_sample_milli: u64,
    instructions: u64,
    profile: RunProfile,
    output: Vec<String>,
    published: Vec<(String, Scalar)>,
    /// Publishes since the last pause, as interned ids: the hot loop
    /// never allocates a feature name; ids resolve in [`Vm::flush_published`]
    /// at the next `Done` pause or at finish.
    pending_publish: Vec<(StrId, Scalar)>,
    started: bool,
    finished: bool,
}

impl Vm {
    /// Create a machine for `program` under `policy`.
    ///
    /// Verification also yields the whole-program frame bounds
    /// ([`evovm_bytecode::analysis::frame_bounds`]); when the program's
    /// call graph is recursion-free, the frame arena and the frame stack
    /// are preallocated to the proven maxima of the verified bytecode, so
    /// execution at levels that preserve locals counts performs no arena
    /// growth at all (O2 inlining may add locals and grow past the hint;
    /// recursion falls back to on-demand growth as before).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Verify`] if the program fails verification.
    pub fn new(
        program: Arc<Program>,
        policy: Box<dyn AosPolicy>,
        config: VmConfig,
    ) -> Result<Vm, VmError> {
        let facts = evovm_bytecode::verify::verify_with_facts(&program)?;
        let static_bounds = frame_bounds(&program, &facts);
        let arena_capacity = static_bounds
            .arena_slots
            .unwrap_or(0)
            .min(ARENA_PRESIZE_CAP_SLOTS);
        let frame_capacity = static_bounds
            .call_depth
            .unwrap_or(0)
            .min(config.max_call_depth);
        let n = program.functions().len();
        Ok(Vm {
            program,
            next_sample_milli: config.sample_interval_cycles * 1000,
            config,
            policy,
            optimizer: Optimizer::new(),
            cache: (0..n).map(|_| None).collect(),
            levels: vec![OptLevel::Baseline; n],
            heap: Heap::new(),
            frames: Vec::with_capacity(frame_capacity),
            arena: Vec::with_capacity(arena_capacity),
            static_bounds,
            clock_milli: 0,
            exec_milli: 0,
            compile_milli: 0,
            instructions: 0,
            profile: RunProfile::new(n),
            output: Vec::new(),
            published: Vec::new(),
            pending_publish: Vec::new(),
            started: false,
            finished: false,
        })
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The static call-depth/arena bounds proven at construction. `None`
    /// fields mean recursion makes the quantity statically unbounded.
    pub fn static_bounds(&self) -> FrameBounds {
        self.static_bounds
    }

    /// Features published so far. Complete at every `FeaturesReady` pause
    /// and after the run finishes (names resolve from the string table at
    /// those points, not per `Publish`).
    pub fn published(&self) -> &[(String, Scalar)] {
        &self.published
    }

    /// Swap the recompilation policy, returning the old one. Intended for
    /// the `FeaturesReady` pause, where the host installs a predicted
    /// strategy before resuming.
    pub fn replace_policy(&mut self, policy: Box<dyn AosPolicy>) -> Box<dyn AosPolicy> {
        std::mem::replace(&mut self.policy, policy)
    }

    /// Current virtual clock in cycles.
    pub fn cycles(&self) -> u64 {
        self.clock_milli / 1000
    }

    /// Apply a per-method level strategy to methods that are *already*
    /// compiled, recompiling upward where the target exceeds the current
    /// level. Methods not yet compiled are unaffected (the active policy's
    /// `on_first_compile` covers them). Used by the evolvable VM when a
    /// prediction arrives at a `FeaturesReady` pause.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Miscompile`] if a pipeline emits unverifiable
    /// code for one of the recompiled methods.
    pub fn apply_strategy(&mut self, levels: &[Option<OptLevel>]) -> Result<(), VmError> {
        for (i, target) in levels.iter().enumerate() {
            let (Some(level), true) = (target, self.cache[i].is_some()) else {
                continue;
            };
            self.recompile(FuncId(i as u32), *level)?;
        }
        Ok(())
    }

    /// Charge extra virtual cycles to the clock (the evolvable VM charges
    /// its feature-extraction and prediction overheads this way, so they
    /// appear in the run's total time exactly as in the paper).
    ///
    /// Overhead goes through the same event accounting as execution:
    /// timer ticks falling inside the charged span are delivered here —
    /// attributed to the currently-executing method, or skipped when the
    /// machine is not running (before start, the usual case for launch
    /// overhead) — rather than being silently deferred or swallowed.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Miscompile`] if a sample delivered inside the
    /// charged span triggers a recompilation whose pipeline emits
    /// unverifiable code.
    pub fn charge_overhead(&mut self, cycles: u64) -> Result<(), VmError> {
        self.clock_milli += cycles * 1000;
        self.maybe_sample()
    }

    /// Run (or resume) the program until it finishes or pauses.
    ///
    /// # Errors
    ///
    /// Runtime traps, budget exhaustion, or [`VmError::AlreadyFinished`]
    /// if called again after completion.
    pub fn run(&mut self) -> Result<Outcome, VmError> {
        if self.finished {
            return Err(VmError::AlreadyFinished);
        }
        if !self.started {
            self.started = true;
            let entry = self.program.entry();
            self.invoke(entry, 0)?;
        }
        match self.config.interp {
            InterpMode::Fast => self.execute(),
            InterpMode::Reference => self.execute_reference(),
        }
    }

    /// Alias of [`Vm::run`] for readability at `FeaturesReady` pauses.
    ///
    /// # Errors
    ///
    /// Same as [`Vm::run`].
    pub fn resume(&mut self) -> Result<Outcome, VmError> {
        self.run()
    }

    // --- compilation management ---

    /// Compile `method` at `level` and install the result. The pipeline's
    /// output is re-verified in every build profile; unverifiable code is
    /// rejected as [`VmError::Miscompile`] before it can execute.
    fn compile_to(&mut self, method: FuncId, level: OptLevel) -> Result<(), VmError> {
        let compiled = self
            .optimizer
            .compile_checked(&self.program, method, level)?;
        self.clock_milli += compiled.compile_cycles * 1000;
        self.compile_milli += compiled.compile_cycles * 1000;
        self.levels[method.index()] = level;
        self.cache[method.index()] = Some(compiled);
        Ok(())
    }

    fn recompile(&mut self, method: FuncId, to: OptLevel) -> Result<(), VmError> {
        let from = self.levels[method.index()];
        if to <= from {
            return Ok(());
        }
        self.compile_to(method, to)?;
        self.profile.recompilations.push(RecompileEvent {
            at_cycles: self.clock_milli / 1000,
            method,
            from,
            to,
        });
        Ok(())
    }

    fn ensure_compiled(&mut self, method: FuncId) -> Result<(), VmError> {
        if self.cache[method.index()].is_some() {
            return Ok(());
        }
        // First invocation: baseline-compile, then give the policy its
        // proactive chance.
        self.compile_to(method, OptLevel::Baseline)?;
        let target = self.policy.on_first_compile(
            method,
            AosContext {
                program: &self.program,
                samples: &self.profile.samples,
                levels: &self.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            self.recompile(method, level)?;
        }
        Ok(())
    }

    /// Push a frame for `method`. The callee's `arity` arguments are the
    /// topmost arena values (the caller's stack tail) and become the
    /// head of the callee's locals in place — no argument vector, no
    /// locals vector, no operand-stack vector is allocated.
    fn invoke(&mut self, method: FuncId, arity: usize) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_call_depth {
            return Err(VmError::Trap(Trap::StackOverflow));
        }
        self.ensure_compiled(method)?;
        self.profile.invocations[method.index()] += 1;
        let compiled = self.cache[method.index()].as_ref().expect("just compiled");
        let locals_base = self.arena.len() - arity;
        // Zero-fill the non-argument locals.
        self.arena
            .resize(locals_base + compiled.locals as usize, Value::Null);
        self.frames.push(Frame {
            method,
            code: Arc::clone(&compiled.code),
            cost_milli: Arc::clone(&compiled.cost_milli),
            quality_milli: compiled.quality_milli,
            ip: 0,
            locals_base,
        });
        self.profile.peak_call_depth = self.profile.peak_call_depth.max(self.frames.len());
        self.profile.peak_arena_slots = self.profile.peak_arena_slots.max(self.arena.len());
        Ok(())
    }

    fn take_sample(&mut self) -> Result<(), VmError> {
        let method = self
            .frames
            .last()
            .expect("sampling requires a frame")
            .method;
        self.profile.samples[method.index()] += 1;
        let target = self.policy.on_sample(
            method,
            AosContext {
                program: &self.program,
                samples: &self.profile.samples,
                levels: &self.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            self.recompile(method, level)?;
        }
        Ok(())
    }

    /// Resolve the pending publish ids against the string table. Runs at
    /// `Done` pauses and at finish, keeping the name allocation out of
    /// the dispatch loop.
    fn flush_published(&mut self) {
        for (id, value) in self.pending_publish.drain(..) {
            self.published
                .push((self.program.string(id).to_owned(), value));
        }
    }

    fn finish(&mut self) -> RunResult {
        self.finished = true;
        self.flush_published();
        self.profile.final_levels = self.levels.clone();
        RunResult {
            output: std::mem::take(&mut self.output),
            published: std::mem::take(&mut self.published),
            total_cycles: self.clock_milli / 1000,
            exec_cycles: self.exec_milli / 1000,
            compile_cycles: self.compile_milli / 1000,
            instructions: self.instructions,
            profile: std::mem::take(&mut self.profile),
        }
    }

    // --- event accounting ---

    /// First clock reading (in milli-cycles) at which the slow path must
    /// run: the next sample tick or the budget deadline, whichever comes
    /// first. The budget trips when `cycles() > budget`, i.e. at
    /// `(budget + 1) * 1000` milli.
    fn event_deadline_milli(&self) -> u64 {
        let budget_deadline = self
            .config
            .cycle_budget
            .map_or(u64::MAX, |b| b.saturating_add(1).saturating_mul(1000));
        self.next_sample_milli.min(budget_deadline)
    }

    fn check_budget(&self) -> Result<(), VmError> {
        if let Some(budget) = self.config.cycle_budget {
            if self.clock_milli / 1000 > budget {
                return Err(VmError::CycleBudgetExceeded { budget });
            }
        }
        Ok(())
    }

    fn maybe_sample(&mut self) -> Result<(), VmError> {
        while self.clock_milli >= self.next_sample_milli {
            self.next_sample_milli += self.config.sample_interval_cycles * 1000;
            if !self.frames.is_empty() {
                self.take_sample()?;
            }
        }
        Ok(())
    }

    // --- the interpreters ---

    /// The production dispatch loop: executes fuel windows of
    /// straight-line work and falls into the slow path only at event
    /// boundaries (sample ticks, budget deadline) and frame switches.
    fn execute(&mut self) -> Result<Outcome, VmError> {
        self.check_budget()?;
        loop {
            // One event window: no sample can become due and the budget
            // cannot trip while `fuel` stays positive, because only
            // instruction costs move the clock inside the window (calls,
            // which also charge compilation, break out of it).
            let fuel0 = i64::try_from(self.event_deadline_milli().saturating_sub(self.clock_milli))
                .unwrap_or(i64::MAX);
            let mut fuel = fuel0;
            let mut retired: u64 = 0;
            let ip_after;
            let pending = {
                // A shared borrow of the frame alongside mutable borrows
                // of the disjoint execution state — no `Arc` clones and
                // no `last_mut()` re-borrow per instruction.
                let frame = self.frames.last().expect("running without a frame");
                let code: &[Instr] = &frame.code;
                // Equal-length reslice so the optimizer can fold the two
                // per-instruction bounds checks into one (the compiler
                // emits the tables in lockstep).
                let costs: &[u64] = &frame.cost_milli[..code.len()];
                let locals_base = frame.locals_base;
                let mut ip = frame.ip;
                let pending = loop {
                    let instr = code[ip];
                    let cost = costs[ip];
                    ip += 1;
                    fuel -= cost as i64;
                    retired += 1;
                    match step_op(
                        &mut self.arena,
                        &mut self.heap,
                        &mut self.output,
                        &mut self.pending_publish,
                        instr,
                        &mut ip,
                        locals_base,
                    ) {
                        Ok(Step::Next) => {
                            // Events fire *after* the instruction that
                            // crosses the deadline, exactly like the
                            // per-instruction reference loop.
                            if fuel <= 0 {
                                break Pending::Event;
                            }
                        }
                        Ok(Step::Call(callee)) => break Pending::Call(callee),
                        Ok(Step::Return) => break Pending::Return,
                        Ok(Step::Done) => break Pending::Done,
                        Err(e) => break Pending::Fault(e),
                    }
                };
                ip_after = ip;
                pending
            };
            let spent = (fuel0 - fuel) as u64;
            self.clock_milli += spent;
            self.exec_milli += spent;
            self.instructions += retired;
            match pending {
                Pending::Event => {
                    self.frames.last_mut().expect("frame").ip = ip_after;
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Call(callee) => {
                    self.frames.last_mut().expect("frame").ip = ip_after;
                    let arity = self.program.function(callee).arity as usize;
                    self.invoke(callee, arity)?;
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Return => {
                    let value = self.arena.pop().expect("verified");
                    let locals_base = self.frames.last().expect("frame").locals_base;
                    self.arena.truncate(locals_base);
                    self.frames.pop();
                    if self.frames.is_empty() {
                        return Ok(Outcome::Finished(self.finish()));
                    }
                    self.arena.push(value);
                    self.maybe_sample()?;
                    self.check_budget()?;
                }
                Pending::Done => {
                    // Pause *after* advancing ip, then give the host
                    // control with resolved feature names.
                    self.frames.last_mut().expect("frame").ip = ip_after;
                    self.flush_published();
                    self.maybe_sample()?;
                    return Ok(Outcome::FeaturesReady);
                }
                Pending::Fault(e) => return Err(e),
            }
        }
    }

    /// The naive per-instruction loop: the "old accounting" structure
    /// (division + `Option` budget check, sample poll and
    /// `frames.last_mut()` re-borrow on every instruction, cost
    /// recomputed as a multiply). Semantically bit-identical to
    /// [`Vm::execute`]; kept as the differential-testing oracle and the
    /// dispatch microbenchmark baseline.
    fn execute_reference(&mut self) -> Result<Outcome, VmError> {
        loop {
            if let Some(budget) = self.config.cycle_budget {
                if self.clock_milli / 1000 > budget {
                    return Err(VmError::CycleBudgetExceeded { budget });
                }
            }
            let frame = self.frames.last().expect("running without a frame");
            let ip = frame.ip;
            let instr = frame.code[ip];
            let locals_base = frame.locals_base;
            let cost = instr.base_cost() * frame.quality_milli;
            self.frames.last_mut().expect("frame").ip = ip + 1;
            self.clock_milli += cost;
            self.exec_milli += cost;
            self.instructions += 1;
            let mut next_ip = ip + 1;
            match step_op(
                &mut self.arena,
                &mut self.heap,
                &mut self.output,
                &mut self.pending_publish,
                instr,
                &mut next_ip,
                locals_base,
            )? {
                Step::Next => self.frames.last_mut().expect("frame").ip = next_ip,
                Step::Call(callee) => {
                    let arity = self.program.function(callee).arity as usize;
                    self.invoke(callee, arity)?;
                }
                Step::Return => {
                    let value = self.arena.pop().expect("verified");
                    self.arena.truncate(locals_base);
                    self.frames.pop();
                    match self.frames.last() {
                        Some(_) => self.arena.push(value),
                        None => return Ok(Outcome::Finished(self.finish())),
                    }
                }
                Step::Done => {
                    self.flush_published();
                    self.maybe_sample()?;
                    return Ok(Outcome::FeaturesReady);
                }
            }
            // Exact arena-peak tracking: the reference loop pays one max
            // per instruction so the soundness suite can compare the true
            // dynamic peak against the static bound.
            self.profile.peak_arena_slots = self.profile.peak_arena_slots.max(self.arena.len());
            self.maybe_sample()?;
        }
    }
}

/// Execute one instruction against the arena and tell the dispatch loop
/// what to do next. A free function over the *disjoint* pieces of VM
/// state it touches, so callers can keep a shared borrow of the current
/// frame (code, cost table, locals base) alive across the call — no
/// `Arc` clone or `frames.last_mut()` re-borrow per instruction.
#[inline(always)]
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn step_op(
    stack: &mut Vec<Value>,
    heap: &mut Heap,
    output: &mut Vec<String>,
    pending_publish: &mut Vec<(StrId, Scalar)>,
    instr: Instr,
    ip: &mut usize,
    locals_base: usize,
) -> Result<Step, VmError> {
    match instr {
        Instr::Const(v) => stack.push(Value::Int(v)),
        Instr::FConst(v) => stack.push(Value::Float(v)),
        Instr::Null => stack.push(Value::Null),
        Instr::Load(n) => {
            let v = stack[locals_base + n as usize];
            stack.push(v);
        }
        Instr::Store(n) => {
            let v = stack.pop().expect("verified");
            stack[locals_base + n as usize] = v;
        }
        Instr::Dup => {
            let v = *stack.last().expect("verified");
            stack.push(v);
        }
        Instr::Pop => {
            stack.pop();
        }
        Instr::Swap => {
            let n = stack.len();
            stack.swap(n - 1, n - 2);
        }

        Instr::Add | Instr::IAdd | Instr::FAdd => binary(stack, BinOp::Add)?,
        Instr::Sub | Instr::ISub | Instr::FSub => binary(stack, BinOp::Sub)?,
        Instr::Mul | Instr::IMul | Instr::FMul => binary(stack, BinOp::Mul)?,
        Instr::Div | Instr::IDiv | Instr::FDiv => binary(stack, BinOp::Div)?,
        Instr::Rem | Instr::IRem => binary(stack, BinOp::Rem)?,
        Instr::Neg | Instr::INeg | Instr::FNeg => {
            let slot = stack.last_mut().expect("verified");
            let a = (*slot).as_scalar()?;
            *slot = scalar::neg(a).into();
        }

        Instr::Shl => bitwise(stack, BitOp::Shl)?,
        Instr::Shr => bitwise(stack, BitOp::Shr)?,
        Instr::BitAnd => bitwise(stack, BitOp::And)?,
        Instr::BitOr => bitwise(stack, BitOp::Or)?,
        Instr::BitXor => bitwise(stack, BitOp::Xor)?,

        Instr::CmpEq | Instr::ICmpEq | Instr::FCmpEq => compare(stack, CmpOp::Eq)?,
        Instr::CmpNe | Instr::ICmpNe | Instr::FCmpNe => compare(stack, CmpOp::Ne)?,
        Instr::CmpLt | Instr::ICmpLt | Instr::FCmpLt => compare(stack, CmpOp::Lt)?,
        Instr::CmpLe | Instr::ICmpLe | Instr::FCmpLe => compare(stack, CmpOp::Le)?,
        Instr::CmpGt | Instr::ICmpGt | Instr::FCmpGt => compare(stack, CmpOp::Gt)?,
        Instr::CmpGe | Instr::ICmpGe | Instr::FCmpGe => compare(stack, CmpOp::Ge)?,

        Instr::ToFloat => {
            let slot = stack.last_mut().expect("verified");
            let a = (*slot).as_scalar()?;
            *slot = scalar::to_float(a).into();
        }
        Instr::ToInt => {
            let slot = stack.last_mut().expect("verified");
            let a = (*slot).as_scalar()?;
            *slot = scalar::to_int(a).into();
        }

        Instr::Jump(t) => *ip = t as usize,
        Instr::JumpIf(t) => {
            if stack.pop().expect("verified").truthy() {
                *ip = t as usize;
            }
        }
        Instr::JumpIfNot(t) => {
            if !stack.pop().expect("verified").truthy() {
                *ip = t as usize;
            }
        }

        Instr::NewArray => {
            let len = stack.pop().expect("verified").as_int()?;
            let r = heap.alloc(len)?;
            stack.push(r);
        }
        Instr::ALoad => {
            let index = stack.pop().expect("verified").as_int()?;
            let array = stack.pop().expect("verified");
            let v = heap.load(array, index)?;
            stack.push(v);
        }
        Instr::AStore => {
            let value = stack.pop().expect("verified");
            let index = stack.pop().expect("verified").as_int()?;
            let array = stack.pop().expect("verified");
            heap.store(array, index, value)?;
        }
        Instr::ALen => {
            let array = stack.pop().expect("verified");
            let len = heap.len(array)?;
            stack.push(Value::Int(len));
        }

        Instr::Math(m) => {
            if m.arity() == 1 {
                let slot = stack.last_mut().expect("verified");
                let a = (*slot).as_scalar()?;
                *slot = scalar::math1(m, a).into();
            } else {
                let b = stack.pop().expect("verified").as_scalar()?;
                let slot = stack.last_mut().expect("verified");
                let a = (*slot).as_scalar()?;
                *slot = scalar::math2(m, a, b).into();
            }
        }

        Instr::Print => {
            let v = stack.pop().expect("verified");
            output.push(v.to_string());
        }
        Instr::Publish(s) => {
            let v = stack.pop().expect("verified");
            match v.as_scalar() {
                Ok(value) => pending_publish.push((s, value)),
                Err(_) => return Err(VmError::Trap(Trap::TypeError)),
            }
        }
        Instr::Nop => {}

        Instr::Call(callee) => return Ok(Step::Call(callee)),
        Instr::Return => return Ok(Step::Return),
        Instr::Done => return Ok(Step::Done),
    }
    Ok(Step::Next)
}

// The two-operand helpers pop the right operand and overwrite the left
// operand's slot in place: one length decrement and one store instead of
// a second pop plus a (capacity-checked) push.

#[inline(always)]
fn binary(stack: &mut Vec<Value>, op: BinOp) -> Result<(), VmError> {
    let b = stack.pop().expect("verified");
    let slot = stack.last_mut().expect("verified");
    // Int×int first, skipping the Value↔Scalar round-trips; `scalar::binop`
    // stays the single source of the arithmetic semantics either way.
    if let (Value::Int(x), Value::Int(y)) = (*slot, b) {
        *slot = scalar::binop(op, x.into(), y.into())?.into();
        return Ok(());
    }
    let b = b.as_scalar()?;
    let a = (*slot).as_scalar()?;
    *slot = scalar::binop(op, a, b)?.into();
    Ok(())
}

#[inline(always)]
fn bitwise(stack: &mut Vec<Value>, op: BitOp) -> Result<(), VmError> {
    let b = stack.pop().expect("verified");
    let slot = stack.last_mut().expect("verified");
    if let (Value::Int(x), Value::Int(y)) = (*slot, b) {
        *slot = scalar::bitop(op, x.into(), y.into())?.into();
        return Ok(());
    }
    let b = b.as_scalar()?;
    let a = (*slot).as_scalar()?;
    *slot = scalar::bitop(op, a, b)?.into();
    Ok(())
}

#[inline(always)]
fn compare(stack: &mut Vec<Value>, op: CmpOp) -> Result<(), VmError> {
    let b = stack.pop().expect("verified");
    let a = *stack.last().expect("verified");
    let result = match (a, b) {
        (Value::Int(x), Value::Int(y)) => scalar::cmp(op, x.into(), y.into()).into(),
        // Reference/null equality is identity; ordering is a type error.
        (Value::Null, Value::Null) => match op {
            CmpOp::Eq => Value::Int(1),
            CmpOp::Ne => Value::Int(0),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Ref(x), Value::Ref(y)) => match op {
            CmpOp::Eq => Value::Int((x == y) as i64),
            CmpOp::Ne => Value::Int((x != y) as i64),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => match op {
            CmpOp::Eq => Value::Int(0),
            CmpOp::Ne => Value::Int(1),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        _ => scalar::cmp(op, a.as_scalar()?, b.as_scalar()?).into(),
    };
    *stack.last_mut().expect("verified") = result;
    Ok(())
}
