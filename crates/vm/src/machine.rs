//! The execution engine: a resumable interpreter with a virtual cycle
//! clock, timer-based sampling profiler and policy-driven recompilation.
//!
//! # Execution model
//!
//! - Every method is compiled by the **baseline** compiler on its first
//!   invocation (Jikes level −1); the active [`AosPolicy`] may immediately
//!   request a recompilation (the evolvable VM's proactive path) or do so
//!   later on a timer sample (the reactive path).
//! - Each executed instruction charges `base_cost × quality(level)` virtual
//!   cycles; compilations charge their own cost at the moment they happen.
//!   The clock is deterministic, so speedups and overheads are exactly
//!   reproducible.
//! - Every [`VmConfig::sample_interval_cycles`] cycles, one sample is
//!   attributed to the currently-executing method and the policy is
//!   consulted — mirroring Jikes RVM's timer-based sample organizer.
//! - Frames hold an `Arc` of their compiled code: a method recompiled
//!   mid-run keeps executing old code in active frames and picks up the
//!   new code on the next call, exactly like a real JIT.
//! - The `Done` instruction (XICL's `done()` call) pauses the machine and
//!   yields [`Outcome::FeaturesReady`] so the host can run prediction and
//!   swap the policy before resuming.

use std::sync::Arc;

use evovm_bytecode::program::Program;
use evovm_bytecode::scalar::{self, BinOp, BitOp, CmpOp, Scalar};
use evovm_bytecode::{FuncId, Instr};
use evovm_opt::{CompiledCode, OptLevel, Optimizer};

use crate::error::{Trap, VmError};
use crate::policy::{AosContext, AosPolicy};
use crate::profile::{RecompileEvent, RunProfile};
use crate::value::{Heap, Value};

/// Virtual cycles per simulated second; converts clock readings into the
/// "running time" figures the experiments report.
pub const CYCLES_PER_SECOND: u64 = 100_000_000;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Virtual cycles between profiler samples (Jikes-style timer ticks).
    pub sample_interval_cycles: u64,
    /// Maximum call depth before a [`Trap::StackOverflow`].
    pub max_call_depth: usize,
    /// Optional hard cycle budget (guards against runaway programs).
    pub cycle_budget: Option<u64>,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            sample_interval_cycles: 100_000,
            max_call_depth: 2048,
            cycle_budget: None,
        }
    }
}

/// Why the machine returned control.
#[derive(Debug)]
pub enum Outcome {
    /// The program ran to completion.
    Finished(RunResult),
    /// The program executed `Done` (XICL `done()`): published features are
    /// complete and the host may predict + swap the policy, then call
    /// [`Vm::resume`].
    FeaturesReady,
}

/// Everything observable about one finished run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values printed by the program, in order.
    pub output: Vec<String>,
    /// Features published via `Publish`, in order.
    pub published: Vec<(String, Scalar)>,
    /// Total virtual cycles (execution + compilation).
    pub total_cycles: u64,
    /// Cycles spent executing program instructions.
    pub exec_cycles: u64,
    /// Cycles spent compiling.
    pub compile_cycles: u64,
    /// What the profiler saw.
    pub profile: RunProfile,
}

impl RunResult {
    /// The run's simulated wall-clock duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / CYCLES_PER_SECOND as f64
    }
}

#[derive(Debug)]
struct Frame {
    method: FuncId,
    code: Arc<Vec<Instr>>,
    quality_milli: u64,
    ip: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    program: Arc<Program>,
    config: VmConfig,
    policy: Box<dyn AosPolicy>,
    optimizer: Optimizer,
    cache: Vec<Option<CompiledCode>>,
    levels: Vec<OptLevel>,
    heap: Heap,
    frames: Vec<Frame>,
    clock_milli: u64,
    exec_milli: u64,
    compile_milli: u64,
    next_sample_milli: u64,
    profile: RunProfile,
    output: Vec<String>,
    published: Vec<(String, Scalar)>,
    started: bool,
    finished: bool,
}

impl Vm {
    /// Create a machine for `program` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Verify`] if the program fails verification.
    pub fn new(
        program: Arc<Program>,
        policy: Box<dyn AosPolicy>,
        config: VmConfig,
    ) -> Result<Vm, VmError> {
        evovm_bytecode::verify::verify(&program)?;
        let n = program.functions().len();
        Ok(Vm {
            program,
            next_sample_milli: config.sample_interval_cycles * 1000,
            config,
            policy,
            optimizer: Optimizer::new(),
            cache: (0..n).map(|_| None).collect(),
            levels: vec![OptLevel::Baseline; n],
            heap: Heap::new(),
            frames: Vec::new(),
            clock_milli: 0,
            exec_milli: 0,
            compile_milli: 0,
            profile: RunProfile::new(n),
            output: Vec::new(),
            published: Vec::new(),
            started: false,
            finished: false,
        })
    }

    /// The program being executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Features published so far (available at the `FeaturesReady` pause).
    pub fn published(&self) -> &[(String, Scalar)] {
        &self.published
    }

    /// Swap the recompilation policy, returning the old one. Intended for
    /// the `FeaturesReady` pause, where the host installs a predicted
    /// strategy before resuming.
    pub fn replace_policy(&mut self, policy: Box<dyn AosPolicy>) -> Box<dyn AosPolicy> {
        std::mem::replace(&mut self.policy, policy)
    }

    /// Current virtual clock in cycles.
    pub fn cycles(&self) -> u64 {
        self.clock_milli / 1000
    }

    /// Apply a per-method level strategy to methods that are *already*
    /// compiled, recompiling upward where the target exceeds the current
    /// level. Methods not yet compiled are unaffected (the active policy's
    /// `on_first_compile` covers them). Used by the evolvable VM when a
    /// prediction arrives at a `FeaturesReady` pause.
    pub fn apply_strategy(&mut self, levels: &[Option<OptLevel>]) {
        for (i, target) in levels.iter().enumerate() {
            let (Some(level), true) = (target, self.cache[i].is_some()) else {
                continue;
            };
            self.recompile(FuncId(i as u32), *level);
        }
    }

    /// Charge extra virtual cycles to the clock (the evolvable VM charges
    /// its feature-extraction and prediction overheads this way, so they
    /// appear in the run's total time exactly as in the paper).
    pub fn charge_overhead(&mut self, cycles: u64) {
        self.clock_milli += cycles * 1000;
    }

    /// Run (or resume) the program until it finishes or pauses.
    ///
    /// # Errors
    ///
    /// Runtime traps, budget exhaustion, or [`VmError::AlreadyFinished`]
    /// if called again after completion.
    pub fn run(&mut self) -> Result<Outcome, VmError> {
        if self.finished {
            return Err(VmError::AlreadyFinished);
        }
        if !self.started {
            self.started = true;
            let entry = self.program.entry();
            self.invoke(entry, Vec::new())?;
        }
        self.execute()
    }

    /// Alias of [`Vm::run`] for readability at `FeaturesReady` pauses.
    ///
    /// # Errors
    ///
    /// Same as [`Vm::run`].
    pub fn resume(&mut self) -> Result<Outcome, VmError> {
        self.run()
    }

    // --- compilation management ---

    fn compile_to(&mut self, method: FuncId, level: OptLevel) {
        let compiled = self.optimizer.compile(&self.program, method, level);
        self.clock_milli += compiled.compile_cycles * 1000;
        self.compile_milli += compiled.compile_cycles * 1000;
        self.levels[method.index()] = level;
        self.cache[method.index()] = Some(compiled);
    }

    fn recompile(&mut self, method: FuncId, to: OptLevel) {
        let from = self.levels[method.index()];
        if to <= from {
            return;
        }
        self.compile_to(method, to);
        self.profile.recompilations.push(RecompileEvent {
            at_cycles: self.clock_milli / 1000,
            method,
            from,
            to,
        });
    }

    fn ensure_compiled(&mut self, method: FuncId) {
        if self.cache[method.index()].is_some() {
            return;
        }
        // First invocation: baseline-compile, then give the policy its
        // proactive chance.
        self.compile_to(method, OptLevel::Baseline);
        let target = self.policy.on_first_compile(
            method,
            AosContext {
                program: &self.program,
                samples: &self.profile.samples,
                levels: &self.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            self.recompile(method, level);
        }
    }

    fn invoke(&mut self, method: FuncId, args: Vec<Value>) -> Result<(), VmError> {
        if self.frames.len() >= self.config.max_call_depth {
            return Err(VmError::Trap(Trap::StackOverflow));
        }
        self.ensure_compiled(method);
        self.profile.invocations[method.index()] += 1;
        let compiled = self.cache[method.index()].as_ref().expect("just compiled");
        let mut locals = vec![Value::Null; compiled.locals as usize];
        locals[..args.len()].copy_from_slice(&args);
        self.frames.push(Frame {
            method,
            code: Arc::clone(&compiled.code),
            quality_milli: (compiled.quality * 1000.0).round() as u64,
            ip: 0,
            locals,
            stack: Vec::with_capacity(8),
        });
        Ok(())
    }

    fn take_sample(&mut self) {
        let method = self
            .frames
            .last()
            .expect("sampling requires a frame")
            .method;
        self.profile.samples[method.index()] += 1;
        let target = self.policy.on_sample(
            method,
            AosContext {
                program: &self.program,
                samples: &self.profile.samples,
                levels: &self.levels,
                sample_interval_cycles: self.config.sample_interval_cycles,
            },
        );
        if let Some(level) = target {
            self.recompile(method, level);
        }
    }

    fn finish(&mut self) -> RunResult {
        self.finished = true;
        self.profile.final_levels = self.levels.clone();
        RunResult {
            output: std::mem::take(&mut self.output),
            published: self.published.clone(),
            total_cycles: self.clock_milli / 1000,
            exec_cycles: self.exec_milli / 1000,
            compile_cycles: self.compile_milli / 1000,
            profile: std::mem::take(&mut self.profile),
        }
    }

    // --- the interpreter ---

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self) -> Result<Outcome, VmError> {
        macro_rules! trap {
            ($t:expr) => {
                return Err(VmError::Trap($t))
            };
        }
        loop {
            if let Some(budget) = self.config.cycle_budget {
                if self.clock_milli / 1000 > budget {
                    return Err(VmError::CycleBudgetExceeded { budget });
                }
            }
            let frame = self.frames.last_mut().expect("running without a frame");
            let instr = frame.code[frame.ip];
            frame.ip += 1;
            let cost = instr.base_cost() * frame.quality_milli;
            self.clock_milli += cost;
            self.exec_milli += cost;

            // A pending Call/Return mutates `frames`, so decode first.
            match instr {
                Instr::Const(v) => frame.stack.push(Value::Int(v)),
                Instr::FConst(v) => frame.stack.push(Value::Float(v)),
                Instr::Null => frame.stack.push(Value::Null),
                Instr::Load(n) => {
                    let v = frame.locals[n as usize];
                    frame.stack.push(v);
                }
                Instr::Store(n) => {
                    let v = frame.stack.pop().expect("verified");
                    frame.locals[n as usize] = v;
                }
                Instr::Dup => {
                    let v = *frame.stack.last().expect("verified");
                    frame.stack.push(v);
                }
                Instr::Pop => {
                    frame.stack.pop();
                }
                Instr::Swap => {
                    let n = frame.stack.len();
                    frame.stack.swap(n - 1, n - 2);
                }

                Instr::Add | Instr::IAdd | Instr::FAdd => binary(frame, BinOp::Add)?,
                Instr::Sub | Instr::ISub | Instr::FSub => binary(frame, BinOp::Sub)?,
                Instr::Mul | Instr::IMul | Instr::FMul => binary(frame, BinOp::Mul)?,
                Instr::Div | Instr::IDiv | Instr::FDiv => binary(frame, BinOp::Div)?,
                Instr::Rem | Instr::IRem => binary(frame, BinOp::Rem)?,
                Instr::Neg | Instr::INeg | Instr::FNeg => {
                    let a = frame.stack.pop().expect("verified").as_scalar()?;
                    frame.stack.push(scalar::neg(a).into());
                }

                Instr::Shl => bitwise(frame, BitOp::Shl)?,
                Instr::Shr => bitwise(frame, BitOp::Shr)?,
                Instr::BitAnd => bitwise(frame, BitOp::And)?,
                Instr::BitOr => bitwise(frame, BitOp::Or)?,
                Instr::BitXor => bitwise(frame, BitOp::Xor)?,

                Instr::CmpEq | Instr::ICmpEq | Instr::FCmpEq => compare(frame, CmpOp::Eq)?,
                Instr::CmpNe | Instr::ICmpNe | Instr::FCmpNe => compare(frame, CmpOp::Ne)?,
                Instr::CmpLt | Instr::ICmpLt | Instr::FCmpLt => compare(frame, CmpOp::Lt)?,
                Instr::CmpLe | Instr::ICmpLe | Instr::FCmpLe => compare(frame, CmpOp::Le)?,
                Instr::CmpGt | Instr::ICmpGt | Instr::FCmpGt => compare(frame, CmpOp::Gt)?,
                Instr::CmpGe | Instr::ICmpGe | Instr::FCmpGe => compare(frame, CmpOp::Ge)?,

                Instr::ToFloat => {
                    let a = frame.stack.pop().expect("verified").as_scalar()?;
                    frame.stack.push(scalar::to_float(a).into());
                }
                Instr::ToInt => {
                    let a = frame.stack.pop().expect("verified").as_scalar()?;
                    frame.stack.push(scalar::to_int(a).into());
                }

                Instr::Jump(t) => frame.ip = t as usize,
                Instr::JumpIf(t) => {
                    if frame.stack.pop().expect("verified").truthy() {
                        frame.ip = t as usize;
                    }
                }
                Instr::JumpIfNot(t) => {
                    if !frame.stack.pop().expect("verified").truthy() {
                        frame.ip = t as usize;
                    }
                }

                Instr::Call(callee) => {
                    let arity = self.program.function(callee).arity as usize;
                    let split = frame.stack.len() - arity;
                    let args = frame.stack.split_off(split);
                    self.invoke(callee, args)?;
                }
                Instr::Return => {
                    let value = frame.stack.pop().expect("verified");
                    self.frames.pop();
                    match self.frames.last_mut() {
                        Some(caller) => caller.stack.push(value),
                        None => return Ok(Outcome::Finished(self.finish())),
                    }
                }

                Instr::NewArray => {
                    let len = frame.stack.pop().expect("verified").as_int()?;
                    let r = self.heap.alloc(len)?;
                    // Frame borrow ended at `self.heap`; re-borrow.
                    self.frames.last_mut().expect("frame").stack.push(r);
                }
                Instr::ALoad => {
                    let index = frame.stack.pop().expect("verified").as_int()?;
                    let array = frame.stack.pop().expect("verified");
                    let v = self.heap.load(array, index)?;
                    self.frames.last_mut().expect("frame").stack.push(v);
                }
                Instr::AStore => {
                    let value = frame.stack.pop().expect("verified");
                    let index = frame.stack.pop().expect("verified").as_int()?;
                    let array = frame.stack.pop().expect("verified");
                    self.heap.store(array, index, value)?;
                }
                Instr::ALen => {
                    let array = frame.stack.pop().expect("verified");
                    let len = self.heap.len(array)?;
                    self.frames
                        .last_mut()
                        .expect("frame")
                        .stack
                        .push(Value::Int(len));
                }

                Instr::Math(m) => {
                    if m.arity() == 1 {
                        let a = frame.stack.pop().expect("verified").as_scalar()?;
                        frame.stack.push(scalar::math1(m, a).into());
                    } else {
                        let b = frame.stack.pop().expect("verified").as_scalar()?;
                        let a = frame.stack.pop().expect("verified").as_scalar()?;
                        frame.stack.push(scalar::math2(m, a, b).into());
                    }
                }

                Instr::Print => {
                    let v = frame.stack.pop().expect("verified");
                    self.output.push(v.to_string());
                }
                Instr::Publish(s) => {
                    let v = frame.stack.pop().expect("verified");
                    let name = self.program.string(s).to_owned();
                    match v.as_scalar() {
                        Ok(scalar) => self.published.push((name, scalar)),
                        Err(_) => trap!(Trap::TypeError),
                    }
                }
                Instr::Done => {
                    // Pause *after* advancing ip, then give the host control.
                    self.maybe_sample();
                    return Ok(Outcome::FeaturesReady);
                }
                Instr::Nop => {}
            }

            self.maybe_sample();
        }
    }

    fn maybe_sample(&mut self) {
        while self.clock_milli >= self.next_sample_milli {
            self.next_sample_milli += self.config.sample_interval_cycles * 1000;
            if !self.frames.is_empty() {
                self.take_sample();
            }
        }
    }
}

fn binary(frame: &mut Frame, op: BinOp) -> Result<(), VmError> {
    let b = frame.stack.pop().expect("verified").as_scalar()?;
    let a = frame.stack.pop().expect("verified").as_scalar()?;
    frame.stack.push(scalar::binop(op, a, b)?.into());
    Ok(())
}

fn bitwise(frame: &mut Frame, op: BitOp) -> Result<(), VmError> {
    let b = frame.stack.pop().expect("verified").as_scalar()?;
    let a = frame.stack.pop().expect("verified").as_scalar()?;
    frame.stack.push(scalar::bitop(op, a, b)?.into());
    Ok(())
}

fn compare(frame: &mut Frame, op: CmpOp) -> Result<(), VmError> {
    let b = frame.stack.pop().expect("verified");
    let a = frame.stack.pop().expect("verified");
    let result = match (a, b) {
        // Reference/null equality is identity; ordering is a type error.
        (Value::Null, Value::Null) => match op {
            CmpOp::Eq => Value::Int(1),
            CmpOp::Ne => Value::Int(0),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Ref(x), Value::Ref(y)) => match op {
            CmpOp::Eq => Value::Int((x == y) as i64),
            CmpOp::Ne => Value::Int((x != y) as i64),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => match op {
            CmpOp::Eq => Value::Int(0),
            CmpOp::Ne => Value::Int(1),
            _ => return Err(VmError::Trap(Trap::TypeError)),
        },
        _ => scalar::cmp(op, a.as_scalar()?, b.as_scalar()?).into(),
    };
    frame.stack.push(result);
    Ok(())
}
