//! Thread-safety audit for the VM layer: the campaign engine executes
//! whole VMs on worker threads, and `RunPlan::Execute` carries a boxed
//! policy from the optimizer to the VM, so both must stay `Send`. The
//! `AosPolicy: Send` supertrait is what makes the boxed form `Send`;
//! removing it would only surface as an error here and in the engine.

use evovm_vm::{AosPolicy, BaselineOnlyPolicy, CostBenefitPolicy, RunResult, VmConfig};

fn assert_send<T: Send>() {}

#[test]
fn vm_layer_crosses_threads() {
    assert_send::<Box<dyn AosPolicy>>();
    assert_send::<BaselineOnlyPolicy>();
    assert_send::<CostBenefitPolicy>();
    assert_send::<RunResult>();
    assert_send::<VmConfig>();
}
