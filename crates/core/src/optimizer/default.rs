//! The `Default` scenario: reactive adaptive optimization, no cross-run
//! memory. Every run is *by definition* the baseline run, so the backend
//! plans [`RunPlan::Baseline`] and lets the campaign reuse the oracle's
//! memoized default cycles instead of executing the input again.

use evovm_vm::RunResult;

use crate::app::AppInput;
use crate::error::EvolveError;

use super::{CrossRunOptimizer, RunPlan, RunReport};

/// The stateless baseline backend.
#[derive(Debug, Default)]
pub struct DefaultOptimizer {
    _private: (),
}

impl DefaultOptimizer {
    /// Create the baseline backend.
    pub fn new() -> DefaultOptimizer {
        DefaultOptimizer::default()
    }
}

impl CrossRunOptimizer for DefaultOptimizer {
    fn prepare(&mut self, _input: &AppInput) -> Result<RunPlan, EvolveError> {
        Ok(RunPlan::Baseline)
    }

    fn observe(&mut self, _input: &AppInput, _result: RunResult) -> Result<RunReport, EvolveError> {
        // Baseline plans never execute, so there is nothing to observe.
        Ok(RunReport::default())
    }
}
