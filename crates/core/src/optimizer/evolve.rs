//! The `Evolve` scenario: the evolvable VM as an optimizer backend.
//! Delegates to [`EvolvableVm`]'s three run phases — `begin_run` at
//! [`prepare`](CrossRunOptimizer::prepare), `on_features_ready` at each
//! interactive pause, `finish_run` at
//! [`observe`](CrossRunOptimizer::observe).

use evovm_vm::{RunResult, Vm};
use evovm_xicl::Translator;

use crate::app::AppInput;
use crate::config::EvolveConfig;
use crate::error::EvolveError;
use crate::evolve::EvolvableVm;

use super::{CrossRunOptimizer, RunPlan, RunReport};

/// The evolvable-VM backend.
#[derive(Debug)]
pub struct EvolveOptimizer {
    vm: EvolvableVm,
    pending: Option<crate::evolve::PendingRun>,
}

impl EvolveOptimizer {
    /// Create a backend with a fresh (no-history) evolvable VM.
    pub fn new(translator: Translator, config: EvolveConfig) -> EvolveOptimizer {
        EvolveOptimizer {
            vm: EvolvableVm::new(translator, config),
            pending: None,
        }
    }

    /// The wrapped evolvable VM.
    pub fn evolvable(&self) -> &EvolvableVm {
        &self.vm
    }
}

impl CrossRunOptimizer for EvolveOptimizer {
    fn prepare(&mut self, input: &AppInput) -> Result<RunPlan, EvolveError> {
        let (pending, policy) = self.vm.begin_run(input)?;
        let overhead_cycles = pending.launch_overhead_cycles();
        self.pending = Some(pending);
        Ok(RunPlan::Execute {
            policy,
            overhead_cycles,
        })
    }

    fn features_ready(&mut self, vm: &mut Vm) -> Result<(), EvolveError> {
        if let Some(pending) = self.pending.as_mut() {
            self.vm.on_features_ready(pending, vm)?;
        }
        Ok(())
    }

    fn observe(&mut self, input: &AppInput, result: RunResult) -> Result<RunReport, EvolveError> {
        let pending = self
            .pending
            .take()
            .expect("observe follows a prepared Execute plan");
        let rec = self.vm.finish_run(pending, input, result)?;
        Ok(RunReport {
            predicted: rec.predicted,
            confidence: rec.confidence_after,
            accuracy: rec.accuracy,
            overhead_cycles: rec.overhead_cycles(),
        })
    }

    fn export_state(&self) -> Option<String> {
        Some(self.vm.export_state())
    }

    fn import_state(&mut self, json: &str) -> Result<(), EvolveError> {
        self.vm.import_state(json)
    }

    fn raw_feature_count(&self) -> usize {
        self.vm.raw_feature_count()
    }

    fn used_feature_indices(&self) -> Vec<usize> {
        self.vm.used_feature_indices()
    }
}
