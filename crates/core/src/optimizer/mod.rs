//! Optimizer backends: the three scenarios of §V-B behind one trait.
//!
//! [`Campaign::run`](crate::Campaign::run) used to `match` on
//! [`Scenario`](crate::Scenario) for every production run; now the match
//! happens exactly once, in [`for_scenario`], and the campaign loop is
//! scenario-agnostic. Each backend answers three questions per run:
//!
//! 1. [`prepare`](CrossRunOptimizer::prepare) — how should this run be
//!    launched? Either [`RunPlan::Baseline`] (the run *is* the memoized
//!    default run, no VM needs to execute) or [`RunPlan::Execute`] with a
//!    launch policy and up-front overhead cycles to charge.
//! 2. [`features_ready`](CrossRunOptimizer::features_ready) — what to do
//!    at each interactive pause (paper §III-B.4)?
//! 3. [`observe`](CrossRunOptimizer::observe) — what did the backend
//!    learn, and what should the run's record say?

mod default;
mod evolve;
mod rep;

pub use default::DefaultOptimizer;
pub use evolve::EvolveOptimizer;
pub use rep::RepOptimizer;

use evovm_vm::{AosPolicy, RunResult, Vm};

use crate::app::{AppInput, Bench};
use crate::campaign::Scenario;
use crate::config::EvolveConfig;
use crate::error::EvolveError;

/// How the campaign should launch one production run.
#[derive(Debug)]
pub enum RunPlan {
    /// The run is identical to the memoized default run on this input:
    /// the campaign reuses the oracle's cycle count and skips execution
    /// (and [`CrossRunOptimizer::observe`]) entirely.
    Baseline,
    /// Execute the VM with `policy`, charging `overhead_cycles` before
    /// the first instruction (extraction + launch-prediction cost).
    Execute {
        /// The adaptive-optimization policy to launch with.
        policy: Box<dyn AosPolicy>,
        /// Cycles to charge via [`Vm::charge_overhead`] at launch.
        overhead_cycles: u64,
    },
}

/// What one observed run contributes to its [`RunRecord`]
/// (`crate::RunRecord`) beyond the cycle counts the campaign measures
/// itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunReport {
    /// Whether a predicted strategy drove the run.
    pub predicted: bool,
    /// Confidence after this run (Evolve only; 0 otherwise).
    pub confidence: f64,
    /// This run's prediction accuracy (Evolve only; 0 otherwise).
    pub accuracy: f64,
    /// Total overhead cycles charged to the run.
    pub overhead_cycles: u64,
}

/// A cross-run optimizer: one of the paper's three scenarios, driven by
/// the campaign loop one production run at a time.
pub trait CrossRunOptimizer: std::fmt::Debug + Send {
    /// Plan the next production run on `input`.
    ///
    /// # Errors
    ///
    /// Propagates XICL translation errors (Evolve).
    fn prepare(&mut self, input: &AppInput) -> Result<RunPlan, EvolveError>;

    /// React to an interactive pause: the VM stopped at a `done()` point
    /// with freshly published features. Baseline-style backends ignore
    /// the pause; Evolve re-predicts.
    ///
    /// # Errors
    ///
    /// Propagates VM errors raised while applying a new strategy (e.g. a
    /// pipeline miscompilation surfaced by re-verification).
    fn features_ready(&mut self, vm: &mut Vm) -> Result<(), EvolveError> {
        let _ = vm;
        Ok(())
    }

    /// Learn from the finished run and report its record fields. Called
    /// exactly once per [`RunPlan::Execute`] run, never for
    /// [`RunPlan::Baseline`].
    ///
    /// # Errors
    ///
    /// Propagates dataset/model-rebuild errors (Evolve).
    fn observe(&mut self, input: &AppInput, result: RunResult) -> Result<RunReport, EvolveError>;

    /// Serialized learned state, or `None` when the backend is stateless
    /// (Default) and there is nothing to persist.
    fn export_state(&self) -> Option<String> {
        None
    }

    /// Restore learned state exported by a previous campaign. Stateless
    /// backends accept and ignore any payload.
    ///
    /// # Errors
    ///
    /// Backends with state report malformed payloads.
    fn import_state(&mut self, json: &str) -> Result<(), EvolveError> {
        let _ = json;
        Ok(())
    }

    /// Total features in the training schema (Evolve only; 0 otherwise).
    fn raw_feature_count(&self) -> usize {
        0
    }

    /// Indices of features the fitted models actually use (Evolve only).
    fn used_feature_indices(&self) -> Vec<usize> {
        Vec::new()
    }
}

/// The one place a [`Scenario`] is matched for execution: construct the
/// backend that drives a campaign.
pub fn for_scenario(
    scenario: Scenario,
    bench: &Bench,
    config: &EvolveConfig,
) -> Box<dyn CrossRunOptimizer> {
    match scenario {
        Scenario::Default => Box::new(DefaultOptimizer::new()),
        Scenario::Rep => Box::new(RepOptimizer::new(config.sample_interval_cycles)),
        Scenario::Evolve => Box::new(EvolveOptimizer::new(bench.translator.clone(), *config)),
    }
}
