//! The `Rep` scenario: repository-based cross-run optimization (Arnold
//! et al.), wrapped as an optimizer backend. Each run launches with the
//! repository's averaged strategy and feeds its profile back afterwards.

use evovm_vm::RunResult;

use crate::app::AppInput;
use crate::error::EvolveError;
use crate::rep::{RepPolicy, RepRepository};

use super::{CrossRunOptimizer, RunPlan, RunReport};

/// The repository-based backend.
#[derive(Debug)]
pub struct RepOptimizer {
    repo: RepRepository,
    /// Whether the strategy driving the in-flight run proactively
    /// scheduled any compilation — i.e. whether this run is *predicted*
    /// rather than purely reactive.
    current_predicted: bool,
}

impl RepOptimizer {
    /// Create a backend with an empty repository.
    pub fn new(sample_interval_cycles: u64) -> RepOptimizer {
        RepOptimizer {
            repo: RepRepository::new(sample_interval_cycles),
            current_predicted: false,
        }
    }
}

impl CrossRunOptimizer for RepOptimizer {
    fn prepare(&mut self, input: &AppInput) -> Result<RunPlan, EvolveError> {
        let strategy = self.repo.strategy(&input.program)?;
        self.current_predicted = strategy.predicted_count() > 0;
        Ok(RunPlan::Execute {
            policy: Box::new(RepPolicy::new(strategy)),
            overhead_cycles: 0,
        })
    }

    fn observe(&mut self, input: &AppInput, result: RunResult) -> Result<RunReport, EvolveError> {
        self.repo.observe(&input.program, &result.profile);
        Ok(RunReport {
            predicted: self.current_predicted,
            ..RunReport::default()
        })
    }

    fn export_state(&self) -> Option<String> {
        serde_json::to_string(&self.repo).ok()
    }

    fn import_state(&mut self, json: &str) -> Result<(), EvolveError> {
        // Malformed JSON restores an empty repository — the same
        // fresh-start behaviour as [`EvolvableVm::import_state`].
        if let Ok(repo) = serde_json::from_str::<RepRepository>(json) {
            self.repo = repo;
        }
        Ok(())
    }
}
