//! Summary statistics for the experiment harnesses, plus the
//! persistence-layer activity counters ([`StoreMetrics`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Activity counters for a [`ModelStore`](crate::ModelStore) instance.
///
/// Thread-safe and lock-free: stores are written from engine worker
/// threads. `recoveries` counts every time the persistence layer served
/// degraded state instead of failing — a corrupt or torn version
/// skipped at load time, a legacy-named file served by fallback, or a
/// campaign that fresh-started after an unimportable blob.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    saves: AtomicU64,
    loads: AtomicU64,
    recoveries: AtomicU64,
    compactions: AtomicU64,
}

impl StoreMetrics {
    /// Fresh counters, all zero.
    pub fn new() -> StoreMetrics {
        StoreMetrics::default()
    }

    /// Count one `save` call.
    pub fn record_save(&self) {
        self.saves.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `load` call.
    pub fn record_load(&self) {
        self.loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one degraded-but-served recovery event.
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one compaction pass.
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy of the counters.
    pub fn snapshot(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            saves: self.saves.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a store's [`StoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetricsSnapshot {
    /// `save` calls.
    pub saves: u64,
    /// `load` calls.
    pub loads: u64,
    /// Degraded-but-served recovery events.
    pub recoveries: u64,
    /// Compaction passes.
    pub compactions: u64,
}

impl fmt::Display for StoreMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "saves={} loads={} recoveries={} compactions={}",
            self.saves, self.loads, self.recoveries, self.compactions
        )
    }
}

/// Five-number summary, as plotted in the paper's Figure 10 boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute the summary; `None` for an empty slice.
    pub fn from_slice(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        Some(BoxStats {
            min: v[0],
            q25: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q75: quantile(&v, 0.75),
            max: v[v.len() - 1],
        })
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q25={:.3} med={:.3} q75={:.3} max={:.3}",
            self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

/// Linear-interpolated quantile of sorted data.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (0 for empty input; requires positive values).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::from_slice(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let s = BoxStats::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q25 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(BoxStats::from_slice(&[]), None);
        let s = BoxStats::from_slice(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn store_metrics_count_and_snapshot() {
        let m = StoreMetrics::new();
        m.record_save();
        m.record_save();
        m.record_load();
        m.record_recovery();
        m.record_compaction();
        let s = m.snapshot();
        assert_eq!(s.saves, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.compactions, 1);
        assert_eq!(s.to_string(), "saves=2 loads=1 recoveries=1 compactions=1");
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
