//! Summary statistics for the experiment harnesses, plus the
//! persistence-layer activity counters ([`StoreMetrics`]) and the
//! campaign-service activity counters ([`ServiceMetrics`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Activity counters for a [`ModelStore`](crate::ModelStore) instance.
///
/// Thread-safe and lock-free: stores are written from engine worker
/// threads. `recoveries` counts every time the persistence layer served
/// degraded state instead of failing — a corrupt or torn version
/// skipped at load time, a legacy-named file served by fallback, or a
/// campaign that fresh-started after an unimportable blob.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    saves: AtomicU64,
    loads: AtomicU64,
    recoveries: AtomicU64,
    compactions: AtomicU64,
}

impl StoreMetrics {
    /// Fresh counters, all zero.
    pub fn new() -> StoreMetrics {
        StoreMetrics::default()
    }

    /// Count one `save` call.
    pub fn record_save(&self) {
        self.saves.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `load` call.
    pub fn record_load(&self) {
        self.loads.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one degraded-but-served recovery event.
    pub fn record_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one compaction pass.
    pub fn record_compaction(&self) {
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent point-in-time copy of the counters.
    pub fn snapshot(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            saves: self.saves.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a store's [`StoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetricsSnapshot {
    /// `save` calls.
    pub saves: u64,
    /// `load` calls.
    pub loads: u64,
    /// Degraded-but-served recovery events.
    pub recoveries: u64,
    /// Compaction passes.
    pub compactions: u64,
}

impl fmt::Display for StoreMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "saves={} loads={} recoveries={} compactions={}",
            self.saves, self.loads, self.recoveries, self.compactions
        )
    }
}

/// Activity counters and gauges for a
/// [`CampaignService`](crate::CampaignService).
///
/// Thread-safe and lock-free on the read side: counters are updated by
/// submitters and worker threads while the queue lock is held (so the
/// gauges track the queue state machine exactly), and
/// [`snapshot`](ServiceMetrics::snapshot) can be taken from any thread
/// at any time without stalling the pool.
#[derive(Debug)]
pub struct ServiceMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    panicked: AtomicU64,
    cancelled: AtomicU64,
    forks_spawned: AtomicU64,
    forks_completed: AtomicU64,
    forks_cancelled: AtomicU64,
    fork_samples: AtomicU64,
    queue_depth: AtomicU64,
    in_flight: AtomicU64,
    per_worker_busy: Vec<AtomicU64>,
}

impl ServiceMetrics {
    /// Fresh counters for a pool of `workers` threads, all zero.
    pub fn for_workers(workers: usize) -> ServiceMetrics {
        ServiceMetrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            forks_spawned: AtomicU64::new(0),
            forks_completed: AtomicU64::new(0),
            forks_cancelled: AtomicU64::new(0),
            fork_samples: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            per_worker_busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one accepted submission.
    pub fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one completed campaign, attributed to `worker`.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range for the pool size this was
    /// created with.
    pub fn record_completed(&self, worker: usize) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.per_worker_busy[worker].fetch_add(1, Ordering::Relaxed);
    }

    /// Count one contained campaign panic.
    pub fn record_panic(&self) {
        self.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one queued campaign cancelled by an abort shutdown.
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one fork-replay job spawned from a campaign's fork points.
    pub fn record_fork_spawned(&self) {
        self.forks_spawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one fork-replay job that ran to completion.
    pub fn record_fork_completed(&self) {
        self.forks_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one fork-replay job cancelled (abort shutdown, or dropped
    /// because shutdown had already begun when it was spawned).
    pub fn record_fork_cancelled(&self) {
        self.forks_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one counterfactual sample emitted by a fork replay.
    pub fn record_fork_sample(&self) {
        self.fork_samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Publish the current number of queued (not yet started) campaigns.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// Publish the current number of in-flight (executing) campaigns.
    pub fn set_in_flight(&self, in_flight: u64) {
        self.in_flight.store(in_flight, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters and gauges.
    pub fn snapshot(&self) -> ServiceMetricsSnapshot {
        ServiceMetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            forks_spawned: self.forks_spawned.load(Ordering::Relaxed),
            forks_completed: self.forks_completed.load(Ordering::Relaxed),
            forks_cancelled: self.forks_cancelled.load(Ordering::Relaxed),
            fork_samples: self.fork_samples.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            per_worker_busy: self
                .per_worker_busy
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a service's [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceMetricsSnapshot {
    /// Submissions accepted (probes included).
    pub submitted: u64,
    /// Campaigns that ran to completion (successes, errors, and
    /// contained panics — everything that produced a terminal event
    /// after starting).
    pub completed: u64,
    /// Contained worker panics (a subset of `completed`).
    pub panicked: u64,
    /// Queued campaigns cancelled by an abort shutdown (never started,
    /// so disjoint from `completed`).
    pub cancelled: u64,
    /// Fork-replay jobs spawned from campaigns' fork points (counted
    /// separately from `submitted`: forks are internal queue units, not
    /// user submissions).
    pub forks_spawned: u64,
    /// Fork-replay jobs that ran to completion (disjoint from
    /// `completed`, which counts only user submissions).
    pub forks_completed: u64,
    /// Fork-replay jobs cancelled by an abort shutdown.
    pub forks_cancelled: u64,
    /// Counterfactual samples emitted on handles by fork replays.
    pub fork_samples: u64,
    /// Campaigns queued (ready or parked behind a model key) but not
    /// yet started, at snapshot time.
    pub queue_depth: u64,
    /// Campaigns executing at snapshot time.
    pub in_flight: u64,
    /// Campaigns completed per worker thread, indexed by worker.
    pub per_worker_busy: Vec<u64>,
}

impl fmt::Display for ServiceMetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queued={} in_flight={} submitted={} completed={} panicked={} cancelled={} \
             forks_spawned={} forks_completed={} forks_cancelled={} fork_samples={} per_worker=[",
            self.queue_depth,
            self.in_flight,
            self.submitted,
            self.completed,
            self.panicked,
            self.cancelled,
            self.forks_spawned,
            self.forks_completed,
            self.forks_cancelled,
            self.fork_samples,
        )?;
        for (i, busy) in self.per_worker_busy.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{busy}")?;
        }
        write!(f, "]")
    }
}

/// Five-number summary, as plotted in the paper's Figure 10 boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute the summary; `None` for an empty slice.
    pub fn from_slice(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        Some(BoxStats {
            min: v[0],
            q25: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q75: quantile(&v, 0.75),
            max: v[v.len() - 1],
        })
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q25={:.3} med={:.3} q75={:.3} max={:.3}",
            self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

/// Linear-interpolated quantile of sorted data.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (0 for empty input; requires positive values).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::from_slice(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let s = BoxStats::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q25 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(BoxStats::from_slice(&[]), None);
        let s = BoxStats::from_slice(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn store_metrics_count_and_snapshot() {
        let m = StoreMetrics::new();
        m.record_save();
        m.record_save();
        m.record_load();
        m.record_recovery();
        m.record_compaction();
        let s = m.snapshot();
        assert_eq!(s.saves, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.compactions, 1);
        assert_eq!(s.to_string(), "saves=2 loads=1 recoveries=1 compactions=1");
    }

    #[test]
    fn service_metrics_count_and_snapshot() {
        let m = ServiceMetrics::for_workers(2);
        m.record_submit();
        m.record_submit();
        m.record_submit();
        m.set_queue_depth(1);
        m.set_in_flight(1);
        m.record_completed(0);
        m.record_completed(1);
        m.record_panic();
        m.record_cancelled();
        m.record_fork_spawned();
        m.record_fork_spawned();
        m.record_fork_completed();
        m.record_fork_cancelled();
        for _ in 0..4 {
            m.record_fork_sample();
        }
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.panicked, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.forks_spawned, 2);
        assert_eq!(s.forks_completed, 1);
        assert_eq!(s.forks_cancelled, 1);
        assert_eq!(s.fork_samples, 4);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.in_flight, 1);
        assert_eq!(s.per_worker_busy, vec![1, 1]);
        assert_eq!(
            s.to_string(),
            "queued=1 in_flight=1 submitted=3 completed=2 panicked=1 cancelled=1 \
             forks_spawned=2 forks_completed=1 forks_cancelled=1 fork_samples=4 per_worker=[1 1]"
        );
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
