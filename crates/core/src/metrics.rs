//! Summary statistics for the experiment harnesses.

use std::fmt;

/// Five-number summary, as plotted in the paper's Figure 10 boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Compute the summary; `None` for an empty slice.
    pub fn from_slice(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        Some(BoxStats {
            min: v[0],
            q25: quantile(&v, 0.25),
            median: quantile(&v, 0.5),
            q75: quantile(&v, 0.75),
            max: v[v.len() - 1],
        })
    }
}

impl fmt::Display for BoxStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q25={:.3} med={:.3} q75={:.3} max={:.3}",
            self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

/// Linear-interpolated quantile of sorted data.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean (0 for empty input; requires positive values).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let s = BoxStats::from_slice(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q25, 2.0);
        assert_eq!(s.q75, 4.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let s = BoxStats::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.q25 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q75 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(BoxStats::from_slice(&[]), None);
        let s = BoxStats::from_slice(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(geomean(&[]), 0.0);
    }
}
