//! The evolvable virtual machine: incremental cross-input learning with
//! discriminative prediction (the paper's Figure 7 algorithm).
//!
//! Per production run of an application:
//!
//! 1. the XICL translator turns the run's input into a feature vector `v`;
//! 2. if the confidence `conf` exceeds `TH_c`, the per-method
//!    classification trees predict the optimization strategy `ô(v)` and
//!    the run executes proactively under a [`PredictedPolicy`]; otherwise
//!    it executes under the default reactive cost-benefit optimizer;
//! 3. after the run, the posterior ideal strategy `o` is computed from the
//!    sampling profile, the prediction accuracy `acc` (sample-weighted)
//!    updates `conf ← (1−γ)·conf + γ·acc`, and `(v, o)` is appended to the
//!    history from which the trees are rebuilt (the offline model-
//!    construction stage — uncharged, exactly as in the paper).
//!
//! Programs that publish runtime features (`updateV`/`done`) pause at
//! `done`; prediction then happens at the pause with the merged vector
//! and is applied to already-compiled methods too.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use evovm_learn::dataset::{Dataset, Raw};
use evovm_learn::tree::ClassificationTree;
use evovm_learn::ConfidenceTracker;
use evovm_opt::OptLevel;
use evovm_vm::{CostBenefitPolicy, Outcome, RunResult, Vm, VmConfig};
use evovm_xicl::{FeatureValue, FeatureVector, Translator};

use crate::app::AppInput;
use crate::config::EvolveConfig;
use crate::error::EvolveError;
use crate::strategy::{ideal_levels, prediction_accuracy, LevelStrategy, PredictedPolicy};

/// The cross-run persistent state of an evolvable VM: everything needed
/// to resume learning in a later VM invocation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvolveState {
    /// One entry per observed run: the input's features and the run's
    /// ideal per-method levels (as Jikes numeric levels).
    pub history: Vec<HistoryEntry>,
    /// The decayed confidence.
    pub confidence: Option<ConfidenceTracker>,
}

/// One observed run in the history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Feature names and values.
    pub features: Vec<(String, SerialFeature)>,
    /// Ideal level per method (Jikes numbering: −1, 0, 1, 2).
    pub ideal: Vec<i8>,
}

/// A serializable feature value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SerialFeature {
    /// Numeric.
    Num(f64),
    /// Categorical.
    Cat(String),
}

/// Everything observable about one evolvable run.
#[derive(Debug, Clone)]
pub struct EvolveRunRecord {
    /// The VM's run result (its `total_cycles` already includes the
    /// charged evolvable overhead).
    pub result: RunResult,
    /// Cycles charged for XICL feature extraction.
    pub extraction_cycles: u64,
    /// Cycles charged for strategy prediction.
    pub prediction_cycles: u64,
    /// Whether a predicted strategy drove this run.
    pub predicted: bool,
    /// How many (re)predictions were applied — more than one for
    /// interactive applications that publish features at several
    /// interactive points (paper §III-B.4).
    pub predictions_made: u32,
    /// Confidence before the run.
    pub confidence_before: f64,
    /// Confidence after folding in this run's accuracy.
    pub confidence_after: f64,
    /// This run's sample-weighted prediction accuracy.
    pub accuracy: f64,
}

impl EvolveRunRecord {
    /// Total overhead cycles (extraction + prediction).
    pub fn overhead_cycles(&self) -> u64 {
        self.extraction_cycles + self.prediction_cycles
    }

    /// Overhead as a fraction of the run's total time.
    pub fn overhead_fraction(&self) -> f64 {
        if self.result.total_cycles == 0 {
            return 0.0;
        }
        self.overhead_cycles() as f64 / self.result.total_cycles as f64
    }
}

/// Per-method model: the training view plus the fitted tree.
#[derive(Debug)]
struct MethodModel {
    dataset: Dataset,
    tree: ClassificationTree,
}

/// Transient state of one in-flight evolvable run, between
/// [`EvolvableVm::begin_run`] and [`EvolvableVm::finish_run`]. Produced
/// and consumed by the campaign layer's Evolve optimizer backend; the
/// all-in-one [`EvolvableVm::run_once`] drives the same three phases.
#[derive(Debug)]
pub(crate) struct PendingRun {
    vector: FeatureVector,
    applied: Option<LevelStrategy>,
    extraction_cycles: u64,
    prediction_cycles: u64,
    confidence_before: f64,
    confident: bool,
    n_methods: usize,
    predictions_made: u32,
}

impl PendingRun {
    /// Overhead cycles to charge at launch (extraction plus the initial
    /// prediction, if one was made).
    pub(crate) fn launch_overhead_cycles(&self) -> u64 {
        self.extraction_cycles + self.prediction_cycles
    }
}

/// One observed run in the training history: the normalized feature row
/// and the posterior ideal per-method levels.
type HistoryRow = (Vec<(String, Raw)>, Vec<OptLevel>);

/// The evolvable virtual machine for one application.
#[derive(Debug)]
pub struct EvolvableVm {
    translator: Translator,
    config: EvolveConfig,
    confidence: ConfidenceTracker,
    history: Vec<HistoryRow>,
    models: Vec<Option<MethodModel>>,
}

impl EvolvableVm {
    /// Create a fresh evolvable VM (no history).
    pub fn new(translator: Translator, config: EvolveConfig) -> EvolvableVm {
        EvolvableVm {
            translator,
            confidence: ConfidenceTracker::new(config.gamma, config.confidence_threshold),
            config,
            history: Vec::new(),
            models: Vec::new(),
        }
    }

    /// Current confidence value.
    pub fn confidence(&self) -> f64 {
        self.confidence.value()
    }

    /// Number of runs learned from.
    pub fn runs_observed(&self) -> usize {
        self.history.len()
    }

    /// The XICL translator in use.
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Indices of features any per-method tree actually splits on — the
    /// paper's "used features" (Table I).
    pub fn used_feature_indices(&self) -> Vec<usize> {
        let mut used: Vec<usize> = self
            .models
            .iter()
            .flatten()
            .flat_map(|m| m.tree.used_features())
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Total features in the training schema.
    pub fn raw_feature_count(&self) -> usize {
        self.history.first().map_or(0, |(f, _)| f.len())
    }

    /// Execute one production run on `input`, learning from it afterwards.
    ///
    /// # Errors
    ///
    /// Propagates XICL, VM and dataset errors.
    pub fn run_once(&mut self, input: &AppInput) -> Result<EvolveRunRecord, EvolveError> {
        let (mut pending, launch_policy) = self.begin_run(input)?;
        let mut vm = Vm::new(
            Arc::clone(&input.program),
            launch_policy,
            VmConfig {
                sample_interval_cycles: self.config.sample_interval_cycles,
                ..VmConfig::default()
            },
        )?;
        vm.charge_overhead(pending.launch_overhead_cycles())?;

        let result = loop {
            match vm.run()? {
                Outcome::Finished(result) => break result,
                Outcome::FeaturesReady => self.on_features_ready(&mut pending, &mut vm)?,
            }
        };
        self.finish_run(pending, input, *result)
    }

    /// Phase 1 of a run: translate the input, charge (capped) extraction
    /// overhead and, when confident, make the launch prediction. Returns
    /// the in-flight state plus the policy to launch the VM with; the
    /// caller must charge [`PendingRun::launch_overhead_cycles`] on the
    /// VM it builds.
    pub(crate) fn begin_run(
        &mut self,
        input: &AppInput,
    ) -> Result<(PendingRun, Box<dyn evovm_vm::AosPolicy>), EvolveError> {
        let (vector, stats) = self.translator.translate(&input.args, &input.vfs)?;

        // Extraction overhead, with the optional throttling cap (§V-B.2).
        let raw_extraction =
            stats.work_units * self.config.cycles_per_work_unit + stats.tokens_scanned;
        let (extraction_cycles, throttled) = match self.config.extraction_cycle_cap {
            Some(cap) if raw_extraction > cap => (cap, true),
            _ => (raw_extraction, false),
        };

        let confidence_before = self.confidence.value();
        let confident = self.confidence.is_confident() && !throttled;
        let mut prediction_cycles = 0u64;
        let mut applied: Option<LevelStrategy> = None;

        let n_methods = input.program.functions().len();
        let mut launch_policy: Box<dyn evovm_vm::AosPolicy> = Box::new(CostBenefitPolicy::new());
        if confident {
            if let Some(strategy) = self.predict(&vector, n_methods) {
                prediction_cycles += self.prediction_cost(&strategy);
                launch_policy = Box::new(PredictedPolicy::new(strategy.clone()));
                applied = Some(strategy);
            }
        }

        let predictions_made = u32::from(applied.is_some());
        Ok((
            PendingRun {
                vector,
                applied,
                extraction_cycles,
                prediction_cycles,
                confidence_before,
                confident,
                n_methods,
                predictions_made,
            },
            launch_policy,
        ))
    }

    /// Phase 2, at each interactive pause (paper §III-B.4): new features
    /// may have arrived via updateV; re-predict when they change the
    /// answer. Levels only move upward (`apply_strategy` never downgrades
    /// installed code).
    ///
    /// # Errors
    ///
    /// Propagates VM errors from charging overhead or recompiling to the
    /// predicted strategy (e.g. a pipeline miscompilation).
    pub(crate) fn on_features_ready(
        &self,
        pending: &mut PendingRun,
        vm: &mut Vm,
    ) -> Result<(), EvolveError> {
        merge_published(&mut pending.vector, vm.published());
        if !pending.confident {
            return Ok(());
        }
        let Some(strategy) = self.predict(&pending.vector, pending.n_methods) else {
            return Ok(());
        };
        if pending.applied.as_ref() == Some(&strategy) {
            return Ok(());
        }
        let cost = self.prediction_cost(&strategy);
        pending.prediction_cycles += cost;
        vm.charge_overhead(cost)?;
        vm.apply_strategy(&strategy.levels)?;
        vm.replace_policy(Box::new(PredictedPolicy::new(strategy.clone())));
        pending.applied = Some(strategy);
        pending.predictions_made += 1;
        Ok(())
    }

    /// Phase 3, posterior learning (paper Fig. 7): ideal strategy,
    /// accuracy, confidence, model update.
    pub(crate) fn finish_run(
        &mut self,
        mut pending: PendingRun,
        input: &AppInput,
        result: RunResult,
    ) -> Result<EvolveRunRecord, EvolveError> {
        merge_published(&mut pending.vector, &result.published);
        let ideal = ideal_levels(
            &input.program,
            &result.profile,
            self.config.sample_interval_cycles,
        );
        let assessed = match &pending.applied {
            Some(s) => s.clone(),
            None => self
                .predict(&pending.vector, pending.n_methods)
                .unwrap_or_else(|| LevelStrategy::empty(pending.n_methods)),
        };
        let accuracy = prediction_accuracy(&assessed, &ideal, &result.profile);
        self.confidence.update(accuracy);
        let row = self.normalize_to_schema(to_raw(&pending.vector));
        self.history.push((row, ideal));
        self.rebuild_models()?;

        Ok(EvolveRunRecord {
            result,
            extraction_cycles: pending.extraction_cycles,
            prediction_cycles: pending.prediction_cycles,
            predicted: pending.applied.is_some(),
            predictions_made: pending.predictions_made,
            confidence_before: pending.confidence_before,
            confidence_after: self.confidence.value(),
            accuracy,
        })
    }

    /// Predict the per-method strategy for a feature vector, or `None`
    /// when no models exist yet.
    ///
    /// Encoding is by feature *name* and tolerates missing features
    /// (runtime features that have not been published yet encode as
    /// missing and route down the trees' else-branches), so interactive
    /// applications get a provisional prediction at launch and refined
    /// ones at each `done()` pause.
    pub fn predict(&self, vector: &FeatureVector, n_methods: usize) -> Option<LevelStrategy> {
        if self.models.is_empty() {
            return None;
        }
        let raw = to_raw(vector);
        let mut strategy = LevelStrategy::empty(n_methods);
        let mut any = false;
        for (i, model) in self.models.iter().enumerate().take(n_methods) {
            let Some(m) = model else { continue };
            let encoded = m.dataset.encode_by_name(&raw);
            let label = m.tree.predict(&encoded);
            strategy.levels[i] = OptLevel::from_i8(label as i8 - 1);
            any = true;
        }
        any.then_some(strategy)
    }

    /// Mean leave-k-out cross-validated accuracy of the per-method models
    /// (the paper's model-quality diagnostic).
    pub fn cross_validated_accuracy(&self, folds: usize) -> f64 {
        let models: Vec<&MethodModel> = self.models.iter().flatten().collect();
        if models.is_empty() {
            return 0.0;
        }
        let sum: f64 = models
            .iter()
            .map(|m| evovm_learn::cv::k_fold_accuracy(&m.dataset, folds, &self.config.tree_params))
            .sum();
        sum / models.len() as f64
    }

    /// Serialize the cross-run state (history + confidence) to JSON.
    pub fn export_state(&self) -> String {
        let state = EvolveState {
            history: self
                .history
                .iter()
                .map(|(features, ideal)| HistoryEntry {
                    features: features
                        .iter()
                        .map(|(n, r)| {
                            (
                                n.clone(),
                                match r {
                                    Raw::Num(v) => SerialFeature::Num(*v),
                                    Raw::Cat(s) => SerialFeature::Cat(s.clone()),
                                },
                            )
                        })
                        .collect(),
                    ideal: ideal.iter().map(|l| l.as_i8()).collect(),
                })
                .collect(),
            confidence: Some(self.confidence),
        };
        serde_json::to_string_pretty(&state).expect("state serializes")
    }

    /// Restore cross-run state exported by [`EvolvableVm::export_state`].
    /// Malformed JSON restores an empty state (the VM simply starts
    /// learning from scratch — the safe behaviour for a corrupt
    /// repository).
    ///
    /// # Errors
    ///
    /// Returns a dataset error if the restored history is internally
    /// inconsistent (rows with differing schemas).
    pub fn import_state(&mut self, json: &str) -> Result<(), EvolveError> {
        let state: EvolveState = serde_json::from_str(json).unwrap_or_default();
        self.history = state
            .history
            .into_iter()
            .map(|e| {
                let features = e
                    .features
                    .into_iter()
                    .map(|(n, f)| {
                        (
                            n,
                            match f {
                                SerialFeature::Num(v) => Raw::Num(v),
                                SerialFeature::Cat(s) => Raw::Cat(s),
                            },
                        )
                    })
                    .collect();
                let ideal = e
                    .ideal
                    .into_iter()
                    .map(|l| OptLevel::from_i8(l).unwrap_or(OptLevel::Baseline))
                    .collect();
                (features, ideal)
            })
            .collect();
        if let Some(conf) = state.confidence {
            self.confidence = conf;
        }
        self.rebuild_models()
    }

    /// Align a new observation with the training schema fixed by the
    /// first run: features the program did not produce this time (e.g. a
    /// conditional `publish` that never executed) become missing values;
    /// features the schema has never seen are dropped. This keeps the
    /// per-method datasets well-formed for programs whose runtime feature
    /// set varies between runs.
    fn normalize_to_schema(&self, raw: Vec<(String, Raw)>) -> Vec<(String, Raw)> {
        let Some((schema, _)) = self.history.first() else {
            return raw;
        };
        schema
            .iter()
            .map(|(name, template)| {
                raw.iter()
                    .find(|(n, _)| n == name)
                    .cloned()
                    .unwrap_or_else(|| {
                        let missing = match template {
                            Raw::Num(_) => Raw::Num(f64::NAN),
                            Raw::Cat(_) => Raw::Cat(String::new()),
                        };
                        (name.clone(), missing)
                    })
            })
            .collect()
    }

    fn prediction_cost(&self, strategy: &LevelStrategy) -> u64 {
        let path =
            (self.config.tree_params.max_depth as u64 + 1) * self.config.cycles_per_tree_node;
        strategy.levels.len() as u64 * path
    }

    fn rebuild_models(&mut self) -> Result<(), EvolveError> {
        let n_methods = self.history.iter().map(|(_, o)| o.len()).max().unwrap_or(0);
        let mut models: Vec<Option<MethodModel>> = Vec::with_capacity(n_methods);
        for m in 0..n_methods {
            let mut dataset = Dataset::new();
            for (features, ideal) in &self.history {
                let Some(level) = ideal.get(m) else { continue };
                // Labels are levels shifted to 0..=3.
                dataset.push(features, (level.as_i8() + 1) as u16)?;
            }
            if dataset.is_empty() {
                models.push(None);
                continue;
            }
            let tree = ClassificationTree::fit(&dataset, &self.config.tree_params);
            models.push(Some(MethodModel { dataset, tree }));
        }
        self.models = models;
        Ok(())
    }
}

fn to_raw(fv: &FeatureVector) -> Vec<(String, Raw)> {
    fv.iter()
        .map(|(name, value)| {
            (
                name.to_owned(),
                match value {
                    FeatureValue::Num(v) => Raw::Num(*v),
                    FeatureValue::Cat(s) => Raw::Cat(s.clone()),
                },
            )
        })
        .collect()
}

fn merge_published(
    vector: &mut FeatureVector,
    published: &[(String, evovm_bytecode::scalar::Scalar)],
) {
    for (name, value) in published {
        vector.update(
            &format!("runtime.{name}"),
            FeatureValue::Num(value.as_f64()),
        );
    }
}
