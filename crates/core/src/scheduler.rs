//! Pure scheduling and oracle-sharing logic for campaign sessions.
//!
//! Extracted from the batch [`CampaignEngine`](crate::CampaignEngine) so
//! the same contracts drive both the one-shot batch path and the
//! long-lived [`CampaignService`](crate::CampaignService):
//!
//! - **Model-key serialization** — campaigns that persist under the same
//!   `model_key` are state-coupled through the store and must execute
//!   one at a time, in submission order ([`schedule_units`] is the batch
//!   planning form; [`KeyLanes`] is the incremental, arrival-order form
//!   the service uses).
//! - **Oracle sharing** — campaigns targeting the same bench *content*
//!   at the same sampling interval share one memoized
//!   [`DefaultOracle`], so each baseline run executes once per session
//!   ([`bench_fingerprint`] + [`OracleCache`]).
//!
//! Everything here is deterministic and independent of thread timing:
//! the decisions depend only on submission order and content, which is
//! what makes a service-driven session bit-identical to a batch run.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::app::Bench;
use crate::oracle::DefaultOracle;

/// Partition submission indices into schedulable units: submissions
/// sharing a persistence key (`Some` entries with equal strings) form
/// one unit in submission order; every keyless submission is its own
/// unit. Callers that have no store attached should pass `None` for
/// every key — without persistence, keys couple nothing.
pub fn schedule_units<'a, I>(keys: I) -> Vec<Vec<usize>>
where
    I: IntoIterator<Item = Option<&'a str>>,
{
    let mut units: Vec<Vec<usize>> = Vec::new();
    let mut unit_by_key: HashMap<&str, usize> = HashMap::new();
    for (index, key) in keys.into_iter().enumerate() {
        match key {
            Some(key) => match unit_by_key.get(key) {
                Some(&unit) => units[unit].push(index),
                None => {
                    unit_by_key.insert(key, units.len());
                    units.push(vec![index]);
                }
            },
            None => units.push(vec![index]),
        }
    }
    units
}

/// Incremental model-key serialization: at most one job per key is
/// *admitted* (runnable) at a time; later jobs for the same key park in
/// that key's lane, FIFO, until [`release`](KeyLanes::release) frees the
/// lane. Fed submissions in arrival order, admission order per key is
/// exactly arrival order — the incremental equivalent of
/// [`schedule_units`]' batch chains (proved by a unit test below).
///
/// Keyless jobs are never parked.
#[derive(Debug)]
pub struct KeyLanes<T> {
    /// An entry's presence marks the key *busy* (one job admitted but
    /// not yet released); the deque holds its parked followers.
    lanes: HashMap<String, VecDeque<T>>,
}

impl<T> Default for KeyLanes<T> {
    fn default() -> KeyLanes<T> {
        KeyLanes {
            lanes: HashMap::new(),
        }
    }
}

impl<T> KeyLanes<T> {
    /// An empty lane set.
    pub fn new() -> KeyLanes<T> {
        KeyLanes::default()
    }

    /// Offer `job` for admission. Returns the job back when it may run
    /// now (keyless, or its key was idle — the key becomes busy);
    /// returns `None` when the key is busy and the job was parked.
    pub fn admit(&mut self, key: Option<&str>, job: T) -> Option<T> {
        let Some(key) = key else { return Some(job) };
        match self.lanes.entry(key.to_owned()) {
            Entry::Occupied(mut lane) => {
                lane.get_mut().push_back(job);
                None
            }
            Entry::Vacant(lane) => {
                lane.insert(VecDeque::new());
                Some(job)
            }
        }
    }

    /// Mark the admitted job for `key` finished. Returns the next parked
    /// job for that key (which is thereby admitted — the key stays
    /// busy), or `None` when the lane emptied (the key becomes idle).
    /// Keyless and unknown keys release nothing.
    pub fn release(&mut self, key: Option<&str>) -> Option<T> {
        let key = key?;
        let lane = self.lanes.get_mut(key)?;
        match lane.pop_front() {
            Some(job) => Some(job),
            None => {
                self.lanes.remove(key);
                None
            }
        }
    }

    /// Remove and return every parked job (used by abort-style shutdown
    /// to cancel work that never started). Busy markers stay in place so
    /// in-flight jobs can still [`release`](KeyLanes::release) cleanly.
    pub fn drain_parked(&mut self) -> Vec<T> {
        let mut drained = Vec::new();
        for lane in self.lanes.values_mut() {
            drained.extend(lane.drain(..));
        }
        drained
    }

    /// Number of parked jobs across all lanes.
    pub fn parked(&self) -> usize {
        self.lanes.values().map(VecDeque::len).sum()
    }
}

/// A stable content identity for a [`Bench`]: name, input count, and
/// every input's command line, virtual files, and program size. Inputs
/// are compiled deterministically from (args, vfs), so benches with
/// equal fingerprints produce equal baseline cycle counts — which is
/// what lets separately loaded copies of one workload share an oracle.
pub fn bench_fingerprint(bench: &Bench) -> u64 {
    let mut h = crate::store::Fnv1a::new();
    h.update(bench.name.as_bytes());
    h.update(&[0xff]);
    h.update(&(bench.inputs.len() as u64).to_le_bytes());
    for input in &bench.inputs {
        for arg in &input.args {
            h.update(arg.as_bytes());
            h.update(&[0xfe]);
        }
        let mut paths: Vec<&str> = input.vfs.paths().collect();
        paths.sort_unstable();
        for path in paths {
            h.update(path.as_bytes());
            h.update(&input.vfs.size(path).unwrap_or(0).to_le_bytes());
        }
        h.update(&(input.program.functions().len() as u64).to_le_bytes());
        h.update(&[0xfd]);
    }
    h.finish()
}

/// Session-scoped oracle sharing, keyed by ([`bench_fingerprint`],
/// sampling interval): the first request for a (bench content, interval)
/// pair creates an empty memoized [`DefaultOracle`]; later requests —
/// from any thread, at any time — get the same oracle, so each
/// baseline run executes once for the cache's lifetime.
///
/// Oracles are created in the default dispatch mode regardless of the
/// requesting campaign's `interp` setting, matching the batch engine:
/// both dispatch loops produce identical baseline cycle counts
/// (`tests/interp_equiv.rs`), so the memo is shareable across modes.
#[derive(Debug, Default)]
pub struct OracleCache {
    oracles: Mutex<HashMap<(u64, u64), Arc<DefaultOracle>>>,
}

impl OracleCache {
    /// An empty cache.
    pub fn new() -> OracleCache {
        OracleCache::default()
    }

    /// The shared oracle for `bench` at `sample_interval_cycles`,
    /// creating it on first request.
    pub fn oracle_for(&self, bench: &Bench, sample_interval_cycles: u64) -> Arc<DefaultOracle> {
        let key = (bench_fingerprint(bench), sample_interval_cycles);
        Arc::clone(
            self.oracles
                .lock()
                .entry(key)
                .or_insert_with(|| Arc::new(DefaultOracle::for_bench(bench, key.1))),
        )
    }

    /// Number of distinct (bench content, interval) oracles held.
    pub fn len(&self) -> usize {
        self.oracles.lock().len()
    }

    /// Whether the cache holds no oracles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_xicl::{extract::Registry, Translator, XiclSpec};

    fn synthetic_bench(name: &str) -> Bench {
        Bench {
            name: name.into(),
            translator: Translator::new(XiclSpec::default(), Registry::new()),
            inputs: Vec::new(),
        }
    }

    #[test]
    fn units_chain_shared_keys_in_order() {
        let keys = [Some("a"), None, Some("b"), Some("a")];
        assert_eq!(
            schedule_units(keys.into_iter()),
            vec![vec![0, 3], vec![1], vec![2]]
        );
        // With persistence detached callers pass all-None keys: nothing
        // couples.
        assert_eq!(
            schedule_units(keys.iter().map(|_| None)),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
    }

    #[test]
    fn key_lanes_admit_in_arrival_order_one_at_a_time() {
        let mut lanes: KeyLanes<usize> = KeyLanes::new();
        assert_eq!(lanes.admit(Some("a"), 0), Some(0));
        assert_eq!(lanes.admit(None, 1), Some(1));
        assert_eq!(lanes.admit(Some("b"), 2), Some(2));
        assert_eq!(lanes.admit(Some("a"), 3), None, "key a busy: parked");
        assert_eq!(lanes.parked(), 1);
        // Finishing 0 admits its parked follower; finishing that empties
        // the lane.
        assert_eq!(lanes.release(Some("a")), Some(3));
        assert_eq!(lanes.release(Some("a")), None);
        assert_eq!(lanes.release(Some("b")), None);
        assert_eq!(lanes.release(None), None);
        assert_eq!(lanes.parked(), 0);
        // Idle again: a new "a" job runs immediately.
        assert_eq!(lanes.admit(Some("a"), 4), Some(4));
    }

    #[test]
    fn key_lanes_match_batch_units() {
        // Feeding arrivals through KeyLanes and completing jobs in any
        // order reproduces schedule_units' per-key chains.
        let keys = [Some("a"), Some("b"), Some("a"), None, Some("a")];
        let units = schedule_units(keys.iter().copied());

        let mut lanes: KeyLanes<usize> = KeyLanes::new();
        let mut admitted: Vec<usize> = Vec::new();
        for (index, key) in keys.iter().enumerate() {
            if let Some(job) = lanes.admit(*key, index) {
                admitted.push(job);
            }
        }
        // Complete admitted jobs until everything ran; record per-key
        // execution order.
        let mut order_by_key: HashMap<Option<&str>, Vec<usize>> = HashMap::new();
        let mut frontier = admitted;
        while let Some(index) = frontier.pop() {
            order_by_key.entry(keys[index]).or_default().push(index);
            if let Some(next) = lanes.release(keys[index]) {
                frontier.push(next);
            }
        }
        for unit in units {
            let key = keys[unit[0]];
            if key.is_some() {
                assert_eq!(order_by_key[&key], unit, "chain for {key:?}");
            }
        }
    }

    #[test]
    fn drain_parked_keeps_busy_markers() {
        let mut lanes: KeyLanes<usize> = KeyLanes::new();
        assert_eq!(lanes.admit(Some("a"), 0), Some(0));
        assert_eq!(lanes.admit(Some("a"), 1), None);
        assert_eq!(lanes.admit(Some("a"), 2), None);
        assert_eq!(lanes.drain_parked(), vec![1, 2]);
        assert_eq!(lanes.parked(), 0);
        // The in-flight job (0) still releases cleanly afterwards.
        assert_eq!(lanes.release(Some("a")), None);
    }

    #[test]
    fn oracle_cache_shares_by_content() {
        let cache = OracleCache::new();
        // Two separately constructed but identical benches share one
        // oracle; a different interval or name gets its own.
        let a1 = cache.oracle_for(&synthetic_bench("w"), 1000);
        let a2 = cache.oracle_for(&synthetic_bench("w"), 1000);
        assert!(Arc::ptr_eq(&a1, &a2));
        let b = cache.oracle_for(&synthetic_bench("w"), 2000);
        assert!(!Arc::ptr_eq(&a1, &b));
        let c = cache.oracle_for(&synthetic_bench("x"), 1000);
        assert!(!Arc::ptr_eq(&a1, &c));
        assert_eq!(cache.len(), 3);
    }
}
