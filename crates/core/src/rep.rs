//! The repository-based baseline (`Rep`): Arnold et al.'s cross-run
//! profile repository, as described in the paper's §V-B.
//!
//! Rep learns across runs but does **not** tailor its strategy to the
//! input: from the history of profiles it derives, per method, a single
//! strategy of `<k, o>` pairs — "when the sampler sees the k-th sample of
//! the method, recompile it at level o" — chosen to maximize the *average*
//! performance over the history (with a compilation bound). Unlike the
//! evolvable VM, Rep predicts unconditionally from the very first run,
//! which is exactly what makes it sensitive to input order (§V-B.3).

use serde::{Deserialize, Serialize};

use crate::error::EvolveError;
use evovm_bytecode::program::Program;
use evovm_bytecode::FuncId;
use evovm_opt::OptLevel;
use evovm_vm::policy::{AosContext, AosPolicy, CostBenefitPolicy};
use evovm_vm::RunProfile;

/// Candidate sample counts for the `<k, o>` trigger (a geometric grid —
/// the trigger time is `k × sample_interval`, so the grid must span from
/// "immediately" to "well into a long run").
const CANDIDATE_KS: [u64; 14] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Maximum recompilations per method (the "compilation bound").
pub const COMPILATION_BOUND: usize = 2;

/// The cross-run profile repository.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RepRepository {
    /// Per run, per method: intrinsic work in baseline-normalized cycles.
    observations: Vec<Vec<f64>>,
    sample_interval_cycles: u64,
}

impl RepRepository {
    /// An empty repository.
    pub fn new(sample_interval_cycles: u64) -> RepRepository {
        RepRepository {
            observations: Vec::new(),
            sample_interval_cycles,
        }
    }

    /// Number of runs recorded.
    pub fn runs(&self) -> usize {
        self.observations.len()
    }

    /// Record a finished run's profile.
    pub fn observe(&mut self, program: &Program, profile: &RunProfile) {
        let mut intrinsic = Vec::with_capacity(profile.samples.len());
        for (i, &samples) in profile.samples.iter().enumerate() {
            let name = &program.function(FuncId(i as u32)).name;
            let final_level = profile
                .final_levels
                .get(i)
                .copied()
                .unwrap_or(OptLevel::Baseline);
            // Intrinsic work W such that time-at-level-L = W × quality(L).
            let w =
                samples as f64 * self.sample_interval_cycles as f64 / final_level.quality_for(name);
            intrinsic.push(w);
        }
        self.observations.push(intrinsic);
    }

    /// Derive the repository strategy for `program`: per method, the
    /// `<k, o>` pairs (up to [`COMPILATION_BOUND`]) minimizing the mean
    /// modelled run time across the recorded history — or no pairs when
    /// staying reactive-baseline is better on average. Two-stage
    /// strategies ("O1 at the 4th sample, O2 at the 64th") hedge between
    /// the short and long runs in the history, exactly the shape Arnold
    /// et al.'s repository produces.
    ///
    /// # Errors
    ///
    /// [`EvolveError::InvariantViolated`] if the search ever produces a
    /// plan exceeding [`COMPILATION_BOUND`] — a bug in the candidate
    /// enumeration, checked in every build profile because an oversized
    /// plan would silently skew Rep's modelled compile costs.
    pub fn strategy(&self, program: &Program) -> Result<RepStrategy, EvolveError> {
        let n = program.functions().len();
        let mut pairs: Vec<Vec<(u64, OptLevel)>> = vec![Vec::new(); n];
        if self.observations.is_empty() {
            return Ok(RepStrategy { pairs });
        }
        let interval = self.sample_interval_cycles as f64;
        for (m, method_pairs) in pairs.iter_mut().enumerate() {
            let f = program.function(FuncId(m as u32));
            let q_base = OptLevel::Baseline.quality_for(&f.name);
            let size = f.code.len() as u64;
            let quality = |o: OptLevel| o.quality_for(&f.name);
            let compile = |o: OptLevel| (o.compile_cost_per_instr() * size) as f64;
            let works: Vec<f64> = self
                .observations
                .iter()
                .map(|run| run.get(m).copied().unwrap_or(0.0))
                .collect();
            let mean_time = |plan: &[(u64, OptLevel)]| -> f64 {
                let total: f64 = works
                    .iter()
                    .map(|&w| modelled_time(w, plan, interval, q_base, &quality, &compile))
                    .sum();
                total / works.len() as f64
            };

            // Baseline: no strategy at all.
            let mut best_time = mean_time(&[]);
            let mut best_plan: Vec<(u64, OptLevel)> = Vec::new();

            // Single-pair plans.
            for level in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
                for k in CANDIDATE_KS {
                    let plan = [(k, level)];
                    let t = mean_time(&plan);
                    if t < best_time {
                        best_time = t;
                        best_plan = plan.to_vec();
                    }
                }
            }
            // Two-stage plans (climbing levels at a later trigger). Only
            // adopted when clearly better, to keep strategies small.
            for first in [OptLevel::O0, OptLevel::O1] {
                for second in [OptLevel::O1, OptLevel::O2] {
                    if second <= first {
                        continue;
                    }
                    for (i, &k1) in CANDIDATE_KS.iter().enumerate() {
                        for &k2 in &CANDIDATE_KS[i + 1..] {
                            let plan = [(k1, first), (k2, second)];
                            let t = mean_time(&plan);
                            if t < best_time * 0.99 {
                                best_time = t;
                                best_plan = plan.to_vec();
                            }
                        }
                    }
                }
            }
            if best_plan.len() > COMPILATION_BOUND {
                return Err(EvolveError::InvariantViolated(format!(
                    "rep strategy for `{}` has {} stages, compilation bound is {COMPILATION_BOUND}",
                    f.name,
                    best_plan.len()
                )));
            }
            *method_pairs = best_plan;
        }
        Ok(RepStrategy { pairs })
    }
}

/// Modelled run time of one method with intrinsic work `w` under a staged
/// plan: before the first trigger the method runs at baseline quality;
/// between triggers at the previous stage's quality; compile costs charge
/// at each reached trigger.
fn modelled_time(
    w: f64,
    plan: &[(u64, OptLevel)],
    interval: f64,
    q_base: f64,
    quality: &impl Fn(OptLevel) -> f64,
    compile: &impl Fn(OptLevel) -> f64,
) -> f64 {
    let mut time = 0.0;
    let mut remaining = w;
    let mut q_cur = q_base;
    let mut samples_done = 0.0;
    for &(k, level) in plan {
        // Work executed before this trigger fires, at the current quality.
        let segment_cycles = (k as f64 - samples_done) * interval;
        let segment_work = segment_cycles / q_cur;
        if remaining <= segment_work {
            return time + remaining * q_cur;
        }
        time += segment_cycles + compile(level);
        remaining -= segment_work;
        samples_done = k as f64;
        q_cur = quality(level);
    }
    time + remaining * q_cur
}

/// A derived repository strategy: `<k, o>` pairs per method, sorted by
/// `k`, at most [`COMPILATION_BOUND`] each.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepStrategy {
    /// Pairs per method, indexed by [`FuncId::index`].
    pub pairs: Vec<Vec<(u64, OptLevel)>>,
}

impl RepStrategy {
    /// Methods with at least one pair.
    pub fn covered_methods(&self) -> usize {
        self.pairs.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total `<k, o>` pairs across all methods. A run only counts as
    /// *predicted* when the strategy that drove it had at least one pair
    /// — an empty strategy leaves every method reactive, which is
    /// indistinguishable from the default VM.
    pub fn predicted_count(&self) -> usize {
        self.pairs.iter().map(Vec::len).sum()
    }
}

/// The policy executing a [`RepStrategy`]: fires each pair when the
/// method's sample count reaches `k` (pairs with `k = 0` fire right after
/// the first compilation); methods without pairs stay reactive.
#[derive(Debug)]
pub struct RepPolicy {
    strategy: RepStrategy,
    fallback: CostBenefitPolicy,
}

impl RepPolicy {
    /// Create a policy from a derived strategy.
    pub fn new(strategy: RepStrategy) -> RepPolicy {
        RepPolicy {
            strategy,
            fallback: CostBenefitPolicy::new(),
        }
    }
}

impl AosPolicy for RepPolicy {
    fn fork_box(&self) -> Box<dyn AosPolicy> {
        Box::new(RepPolicy {
            strategy: self.strategy.clone(),
            fallback: self.fallback.clone(),
        })
    }

    fn on_first_compile(&mut self, method: FuncId, _ctx: AosContext<'_>) -> Option<OptLevel> {
        self.strategy
            .pairs
            .get(method.index())?
            .iter()
            .find(|(k, _)| *k == 0)
            .map(|&(_, o)| o)
    }

    fn on_sample(&mut self, method: FuncId, ctx: AosContext<'_>) -> Option<OptLevel> {
        let pairs = self.strategy.pairs.get(method.index())?;
        if pairs.is_empty() {
            return self.fallback.on_sample(method, ctx);
        }
        let samples = ctx.samples[method.index()];
        pairs.iter().find(|&&(k, _)| k == samples).map(|&(_, o)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evovm_minijava::compile;

    fn program() -> Program {
        compile(
            "fn work(n) { let s = 0; for (let i = 0; i < n; i = i + 1) { s = s + i; } return s; }
             fn main() { print work(1000); }",
        )
        .unwrap()
    }

    fn profile(samples: Vec<u64>) -> RunProfile {
        let n = samples.len();
        let mut p = RunProfile::new(n);
        p.samples = samples;
        p
    }

    #[test]
    fn empty_repository_produces_no_pairs() {
        let p = program();
        let repo = RepRepository::new(100_000);
        let s = repo.strategy(&p).unwrap();
        assert_eq!(s.covered_methods(), 0);
    }

    #[test]
    fn consistently_hot_methods_get_aggressive_pairs() {
        let p = program();
        let mut repo = RepRepository::new(100_000);
        for _ in 0..5 {
            repo.observe(&p, &profile(vec![3_000, 2]));
        }
        let s = repo.strategy(&p).unwrap();
        assert!(!s.pairs[0].is_empty(), "hot method should have a pair");
        let (k, o) = s.pairs[0][0];
        assert!(o >= OptLevel::O1, "expected an optimizing level, got {o}");
        assert!(
            k <= 3,
            "history says it's always hot; trigger early (k={k})"
        );
    }

    #[test]
    fn consistently_cold_methods_get_none() {
        let p = program();
        let mut repo = RepRepository::new(100_000);
        for _ in 0..5 {
            repo.observe(&p, &profile(vec![0, 0]));
        }
        let s = repo.strategy(&p).unwrap();
        assert_eq!(s.covered_methods(), 0);
    }

    #[test]
    fn mixed_history_prefers_a_later_trigger_for_large_methods() {
        // A large method (expensive to compile) with nine short runs and
        // one long run: triggering at k=0 makes every short run pay a
        // compile cost it cannot amortize, so the averaged strategy must
        // delay the trigger past the short runs' lifetimes.
        let mut src = String::from("fn work(n) { let s = 0;\n");
        for i in 0..60 {
            src.push_str(&format!("  s = s + n * {i} + {i};\n"));
        }
        src.push_str("  return s; }\nfn main() { print work(10); }");
        let p = compile(&src).unwrap();
        assert!(
            p.function(FuncId(0)).code.len() > 120,
            "test needs a large method"
        );
        let mut repo = RepRepository::new(100_000);
        for _ in 0..9 {
            repo.observe(&p, &profile(vec![1, 0]));
        }
        repo.observe(&p, &profile(vec![10_000, 0]));
        let s = repo.strategy(&p).unwrap();
        assert!(!s.pairs[0].is_empty());
        let (k, _) = s.pairs[0][0];
        assert!(k >= 1, "k=0 would charge the nine short runs for nothing");
    }

    #[test]
    fn mixed_history_still_optimizes_the_dominant_long_run() {
        let p = program();
        let mut repo = RepRepository::new(100_000);
        for _ in 0..9 {
            repo.observe(&p, &profile(vec![2, 0]));
        }
        repo.observe(&p, &profile(vec![10_000, 0]));
        let s = repo.strategy(&p).unwrap();
        assert!(!s.pairs[0].is_empty());
        let (_, o) = s.pairs[0][0];
        assert!(o >= OptLevel::O1);
    }

    #[test]
    fn policy_fires_at_exactly_k_samples() {
        let p = program();
        let mut strategy = RepStrategy {
            pairs: vec![Vec::new(); 2],
        };
        strategy.pairs[0].push((5, OptLevel::O1));
        let mut policy = RepPolicy::new(strategy);
        let levels = vec![OptLevel::Baseline; 2];
        let mk = |samples: &'static [u64; 2]| AosContext {
            program: &p,
            samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        assert_eq!(policy.on_sample(FuncId(0), mk(&[4, 0])), None);
        let levels2 = vec![OptLevel::Baseline; 2];
        let ctx = AosContext {
            program: &p,
            samples: &[5, 0],
            levels: &levels2,
            sample_interval_cycles: 100_000,
        };
        assert_eq!(policy.on_sample(FuncId(0), ctx), Some(OptLevel::O1));
    }

    #[test]
    fn k_zero_fires_on_first_compile() {
        let p = program();
        let mut strategy = RepStrategy {
            pairs: vec![Vec::new(); 2],
        };
        strategy.pairs[1].push((0, OptLevel::O2));
        let mut policy = RepPolicy::new(strategy);
        let samples = vec![0u64, 0];
        let levels = vec![OptLevel::Baseline; 2];
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        assert_eq!(policy.on_first_compile(FuncId(1), ctx), Some(OptLevel::O2));
        assert_eq!(policy.on_first_compile(FuncId(0), ctx), None);
    }

    #[test]
    fn uncovered_methods_fall_back_to_reactive() {
        let p = program();
        let strategy = RepStrategy {
            pairs: vec![Vec::new(); 2],
        };
        let mut policy = RepPolicy::new(strategy);
        let samples = vec![500u64, 0];
        let levels = vec![OptLevel::Baseline; 2];
        let ctx = AosContext {
            program: &p,
            samples: &samples,
            levels: &levels,
            sample_interval_cycles: 100_000,
        };
        assert!(policy.on_sample(FuncId(0), ctx).is_some());
    }
}
