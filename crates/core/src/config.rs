//! Configuration of the evolvable VM.

use serde::{Deserialize, Serialize};

use evovm_learn::tree::TreeParams;

/// Parameters of the evolvable VM (paper §IV-C plus our overhead model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvolveConfig {
    /// Decay factor γ of the confidence update (paper default 0.7).
    pub gamma: f64,
    /// Confidence threshold `TH_c` gating prediction (paper default 0.7).
    pub confidence_threshold: f64,
    /// Classification-tree construction parameters.
    pub tree_params: TreeParams,
    /// Virtual cycles between profiler samples. The default (10k cycles)
    /// keeps even the shortest workload runs at ~60 samples, mirroring the
    /// ratio between Jikes RVM's ~10 ms sampling tick and multi-second
    /// benchmark runs; much coarser sampling makes posterior ideal-level
    /// labels quantization-noisy.
    pub sample_interval_cycles: u64,
    /// Virtual cycles charged per XICL work unit (≈ byte touched) during
    /// feature extraction.
    pub cycles_per_work_unit: u64,
    /// Virtual cycles charged per tree node visited during prediction.
    pub cycles_per_tree_node: u64,
    /// Optional cap on feature-extraction cycles: beyond it the VM
    /// throttles extraction and falls back to the default optimizer
    /// (paper §V-B.2's proposed guard against expensive programmer
    /// extractors).
    pub extraction_cycle_cap: Option<u64>,
}

impl Default for EvolveConfig {
    fn default() -> EvolveConfig {
        EvolveConfig {
            gamma: 0.7,
            confidence_threshold: 0.7,
            tree_params: TreeParams::default(),
            sample_interval_cycles: 10_000,
            cycles_per_work_unit: 2,
            cycles_per_tree_node: 25,
            extraction_cycle_cap: None,
        }
    }
}

impl EvolveConfig {
    /// Override the confidence threshold (sensitivity studies).
    pub fn with_threshold(mut self, threshold: f64) -> EvolveConfig {
        self.confidence_threshold = threshold;
        self
    }

    /// Override γ.
    pub fn with_gamma(mut self, gamma: f64) -> EvolveConfig {
        self.gamma = gamma;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = EvolveConfig::default();
        assert_eq!(c.gamma, 0.7);
        assert_eq!(c.confidence_threshold, 0.7);
        assert_eq!(c.sample_interval_cycles, 10_000);
    }

    #[test]
    fn builders_override() {
        let c = EvolveConfig::default().with_threshold(0.9).with_gamma(0.5);
        assert_eq!(c.confidence_threshold, 0.9);
        assert_eq!(c.gamma, 0.5);
    }
}
