//! The long-lived streaming campaign service.
//!
//! Where the batch [`CampaignEngine`](crate::CampaignEngine) is a
//! one-shot barrier — hand it every spec up front, block, get outcomes
//! back — [`CampaignService`] is a persistent worker pool fed by a
//! bounded submission queue. Campaigns can be submitted at any time;
//! each submission returns a [`CampaignHandle`] that streams one
//! [`RunEvent::Record`] per production run *as it completes*, followed
//! by a terminal [`RunEvent::Finished`] carrying the
//! [`CampaignOutcome`]. That is the shape cross-run learning wants in
//! production: per-run observations leave the VM while the campaign is
//! still running, instead of arriving as a batch figure afterwards.
//!
//! Contracts, all under test in `tests/service.rs`:
//!
//! - **Determinism** — submissions sharing a `model_key` (with a store
//!   attached) serialize in submission order through
//!   [`KeyLanes`](crate::scheduler::KeyLanes); oracles are shared by
//!   bench *content* through an [`OracleCache`](crate::scheduler::OracleCache).
//!   A service-driven session is bit-identical to [`CampaignEngine::run`]
//!   over the same specs — in fact the engine is now a thin wrapper over
//!   this service.
//! - **Backpressure** — at most `queue_bound` campaigns may be queued
//!   (ready or parked); further submissions block until the pool drains.
//! - **Panic containment** — a panicking campaign reports
//!   [`EvolveError::CampaignPanicked`] on its own handle; the worker
//!   and the rest of the pool keep serving.
//! - **Graceful shutdown** — [`ShutdownMode::Drain`] completes every
//!   queued campaign first; [`ShutdownMode::Abort`] cancels queued
//!   campaigns (terminal [`EvolveError::CampaignCancelled`] on their
//!   handles) and only lets in-flight ones finish.
//!
//! Internals use `std::sync` primitives directly rather than the
//! `parking_lot` shim: the queue needs condition variables, which the
//! shim does not model.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

use crate::app::Bench;
use crate::campaign::{Campaign, CampaignConfig, CampaignOutcome, RunRecord, RunSink, Scenario};
use crate::error::EvolveError;
use crate::fork::{ForkExecutor, ForkPoint, ForkSample};
use crate::metrics::{ServiceMetrics, ServiceMetricsSnapshot};
use crate::oracle::DefaultOracle;
use crate::scheduler::{KeyLanes, OracleCache};
use crate::store::ModelStore;

/// One event on a submission's [`CampaignHandle`].
#[derive(Debug)]
pub enum RunEvent {
    /// A production run completed; streamed in run order while the
    /// campaign is still executing.
    Record(RunRecord),
    /// A counterfactual sample from one of this submission's fork
    /// replays (campaigns configured with
    /// [`CampaignConfig::fork_snapshots`] only). Fork replays execute as
    /// ordinary jobs on the worker pool, so samples may interleave with
    /// later [`RunEvent::Record`]s — but never follow
    /// [`RunEvent::Finished`].
    ForkSample(ForkSample),
    /// The campaign finished (or failed, was cancelled, or panicked).
    /// Always the last event on a handle — a forking campaign's terminal
    /// is parked until its last fork replay resolves.
    Finished(Result<CampaignOutcome, EvolveError>),
}

/// How [`CampaignService::shutdown`] treats campaigns that have not
/// started yet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Complete every queued campaign before the pool exits.
    Drain,
    /// Cancel queued campaigns ([`EvolveError::CampaignCancelled`] on
    /// their handles); in-flight campaigns still run to completion.
    Abort,
}

/// Test-only fault injection accepted by
/// [`CampaignService::submit_probe`].
#[doc(hidden)]
#[derive(Debug)]
pub enum Probe {
    /// Panic on the worker — exercises panic containment.
    Panic,
    /// Block the worker until the test sends on (or drops) the paired
    /// sender — makes queueing, backpressure, and shutdown tests
    /// deterministic.
    Gate(mpsc::Receiver<()>),
}

/// What a queued job executes.
#[derive(Debug)]
enum Payload {
    Campaign {
        bench: Arc<Bench>,
        config: CampaignConfig,
        oracle: Arc<DefaultOracle>,
        /// Present when the campaign forks (`fork_snapshots > 0`):
        /// parks the terminal event until every spawned fork job
        /// resolves.
        rendezvous: Option<Arc<ForkRendezvous>>,
    },
    /// One fork-point replay, spawned internally by a forking campaign's
    /// worker. Fork jobs are ordinary queue units: they inherit the
    /// parent's model key (serializing behind same-key work through
    /// [`KeyLanes`]) and its event channel.
    Fork {
        point: Box<ForkPoint>,
        rendezvous: Arc<ForkRendezvous>,
        key: Option<String>,
    },
    Probe(Probe),
}

/// One queued submission.
#[derive(Debug)]
struct Job {
    spec_index: usize,
    payload: Payload,
    events: mpsc::Sender<RunEvent>,
}

impl Job {
    /// The model key that serializes this job, if any (only campaigns
    /// carry keys, and only when the service has a store to couple
    /// them through).
    fn key(&self, store_attached: bool) -> Option<String> {
        match &self.payload {
            Payload::Campaign { config, .. } if store_attached => config.model_key.clone(),
            // Fork jobs carry the key their parent computed (already
            // gated on store attachment at spawn time).
            Payload::Fork { key, .. } => key.clone(),
            _ => None,
        }
    }
}

/// Terminal-event rendezvous for a forking campaign.
///
/// [`RunEvent::Finished`] must stay the last event on a handle, but fork
/// jobs outlive their campaign on the queue. The campaign's terminal
/// result parks here until the last outstanding fork job resolves
/// (completes or is cancelled by an abort shutdown), at which point
/// whoever resolved it delivers the parked event.
#[derive(Debug, Default)]
struct ForkRendezvous {
    state: Mutex<RendezvousState>,
}

#[derive(Debug, Default)]
struct RendezvousState {
    /// Fork jobs spawned but not yet resolved.
    outstanding: usize,
    /// The campaign's terminal result, parked while forks are
    /// outstanding.
    terminal: Option<Result<CampaignOutcome, EvolveError>>,
}

impl ForkRendezvous {
    fn lock(&self) -> MutexGuard<'_, RendezvousState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Count one spawned fork job.
    fn spawn(&self) {
        self.lock().outstanding += 1;
    }

    /// Deliver the campaign's terminal event now, or park it until the
    /// last fork resolves.
    fn settle_campaign(
        &self,
        events: &mpsc::Sender<RunEvent>,
        result: Result<CampaignOutcome, EvolveError>,
    ) {
        let mut state = self.lock();
        if state.outstanding == 0 {
            drop(state);
            let _ = events.send(RunEvent::Finished(result));
        } else {
            state.terminal = Some(result);
        }
    }

    /// Resolve one fork job; the last one out delivers the parked
    /// terminal (if the campaign has already settled).
    fn resolve_fork(&self, events: &mpsc::Sender<RunEvent>) {
        let mut state = self.lock();
        state.outstanding -= 1;
        if state.outstanding == 0 {
            if let Some(result) = state.terminal.take() {
                drop(state);
                let _ = events.send(RunEvent::Finished(result));
            }
        }
    }
}

/// The queue state machine, guarded by one mutex.
#[derive(Debug)]
struct QueueState {
    /// Jobs ready to execute, FIFO.
    ready: VecDeque<Job>,
    /// Model-key serialization lanes holding parked jobs.
    lanes: KeyLanes<Job>,
    /// Jobs parked in `lanes` (cached count).
    parked: usize,
    /// Jobs queued overall: `ready.len() + parked`. Backpressure bounds
    /// this.
    queued: usize,
    /// Jobs currently executing on workers.
    in_flight: usize,
    /// Set once by [`CampaignService::shutdown`]; never cleared.
    shutdown: Option<ShutdownMode>,
}

/// Everything the workers and the submitter share.
#[derive(Debug)]
struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers: a job became ready, or state worth re-checking
    /// (shutdown, drained) changed.
    not_empty: Condvar,
    /// Signals blocked submitters: queue capacity freed (or shutdown).
    not_full: Condvar,
    queue_bound: usize,
    store: Option<Arc<dyn ModelStore>>,
    metrics: ServiceMetrics,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        // Worker panics are contained inside `catch_unwind`, so the
        // mutex cannot be poisoned mid-update; absorb poisoning anyway
        // (mirrors the parking_lot semantics used elsewhere).
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Publish the queue gauges from the current state (call with the
    /// lock held so the gauges track the state machine exactly).
    fn publish_gauges(&self, state: &QueueState) {
        self.metrics.set_queue_depth(state.queued as u64);
        self.metrics.set_in_flight(state.in_flight as u64);
    }
}

/// Configures and spawns a [`CampaignService`].
#[derive(Debug, Default)]
pub struct CampaignServiceBuilder {
    workers: Option<usize>,
    queue_bound: Option<usize>,
    store: Option<Arc<dyn ModelStore>>,
}

impl CampaignServiceBuilder {
    /// Set the worker-pool width (`0` is treated as `1`); defaults to
    /// the available parallelism.
    pub fn workers(mut self, workers: usize) -> CampaignServiceBuilder {
        self.workers = Some(workers.max(1));
        self
    }

    /// Set the submission-queue bound (`0` is treated as `1`); defaults
    /// to 256. Submissions beyond the bound block until capacity frees.
    pub fn queue_bound(mut self, bound: usize) -> CampaignServiceBuilder {
        self.queue_bound = Some(bound.max(1));
        self
    }

    /// Attach a model store; campaigns whose config names a `model_key`
    /// restore state from it before running, persist state after, and
    /// serialize against same-key submissions.
    pub fn store(mut self, store: Arc<dyn ModelStore>) -> CampaignServiceBuilder {
        self.store = Some(store);
        self
    }

    /// Spawn the worker pool and return the running service.
    pub fn spawn(self) -> CampaignService {
        let workers = self.workers.unwrap_or_else(|| {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                ready: VecDeque::new(),
                lanes: KeyLanes::new(),
                parked: 0,
                queued: 0,
                in_flight: 0,
                shutdown: None,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            queue_bound: self.queue_bound.unwrap_or(256),
            store: self.store,
            metrics: ServiceMetrics::for_workers(workers),
        });
        let threads = (0..workers)
            .map(|worker_index| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("evovm-service-{worker_index}"))
                    .spawn(move || worker_loop(&shared, worker_index))
                    .expect("spawn service worker")
            })
            .collect();
        CampaignService {
            shared,
            oracles: OracleCache::new(),
            workers: threads,
            next_index: AtomicUsize::new(0),
        }
    }
}

/// A long-lived streaming campaign service: a persistent worker pool
/// accepting [`CampaignConfig`] submissions at any time and streaming
/// incremental per-run records back on per-submission handles. See the
/// [module docs](self) for the contracts.
#[derive(Debug)]
pub struct CampaignService {
    shared: Arc<Shared>,
    oracles: OracleCache,
    workers: Vec<thread::JoinHandle<()>>,
    next_index: AtomicUsize,
}

impl CampaignService {
    /// Start configuring a service.
    pub fn builder() -> CampaignServiceBuilder {
        CampaignServiceBuilder::default()
    }

    /// The worker-pool width.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A point-in-time copy of the service's activity counters.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Submit one campaign. Returns a handle streaming the campaign's
    /// per-run records and final outcome. Blocks while the queue is at
    /// its bound.
    ///
    /// The campaign shares its baseline oracle with every other
    /// submission of the same bench content, and serializes behind
    /// earlier unfinished submissions naming the same `model_key` (when
    /// a store is attached).
    ///
    /// # Errors
    ///
    /// [`EvolveError::ServiceStopped`] when the service is shutting
    /// down (including while blocked on backpressure).
    pub fn submit(
        &self,
        bench: Arc<Bench>,
        config: CampaignConfig,
    ) -> Result<CampaignHandle, EvolveError> {
        let oracle = self
            .oracles
            .oracle_for(&bench, config.evolve.sample_interval_cycles);
        let rendezvous = (config.fork_snapshots > 0).then(|| Arc::new(ForkRendezvous::default()));
        self.enqueue(Payload::Campaign {
            bench,
            config,
            oracle,
            rendezvous,
        })
    }

    /// Test-only fault injection: submit a [`Probe`] job instead of a
    /// campaign. Probes flow through the same queue, containment, and
    /// completion paths as real campaigns, which is the point — they
    /// make panic-containment and queueing tests deterministic without
    /// touching campaign semantics.
    ///
    /// # Errors
    ///
    /// [`EvolveError::ServiceStopped`] when the service is shutting
    /// down.
    #[doc(hidden)]
    pub fn submit_probe(&self, probe: Probe) -> Result<CampaignHandle, EvolveError> {
        self.enqueue(Payload::Probe(probe))
    }

    fn enqueue(&self, payload: Payload) -> Result<CampaignHandle, EvolveError> {
        let (events, handle_events) = mpsc::channel();
        let spec_index = self.next_index.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            spec_index,
            payload,
            events,
        };
        let shared = &self.shared;
        let mut state = shared.lock();
        loop {
            if state.shutdown.is_some() {
                return Err(EvolveError::ServiceStopped);
            }
            if state.queued < shared.queue_bound {
                break;
            }
            state = shared
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.queued += 1;
        shared.metrics.record_submit();
        let key = job.key(shared.store.is_some());
        match state.lanes.admit(key.as_deref(), job) {
            Some(job) => {
                state.ready.push_back(job);
                shared.not_empty.notify_one();
            }
            None => state.parked += 1,
        }
        shared.publish_gauges(&state);
        drop(state);
        Ok(CampaignHandle {
            spec_index,
            events: handle_events,
        })
    }

    /// Begin shutting down without blocking: reject new submissions
    /// (including submitters currently blocked on backpressure, which
    /// wake with [`EvolveError::ServiceStopped`]) and handle queued
    /// campaigns according to `mode`. The first mode signalled wins;
    /// later calls are no-ops. Workers are not joined — follow up with
    /// [`CampaignService::shutdown`] (or drop the service) to wait for
    /// them.
    pub fn begin_shutdown(&self, mode: ShutdownMode) {
        signal_shutdown(&self.shared, mode);
    }

    /// Stop the service: reject new submissions, handle queued
    /// campaigns according to `mode` (the first mode signalled wins if
    /// [`CampaignService::begin_shutdown`] already ran), wait for the
    /// workers to exit, and join them. In-flight campaigns always run
    /// to completion.
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.shutdown_inner(mode);
    }

    fn shutdown_inner(&mut self, mode: ShutdownMode) {
        if self.workers.is_empty() {
            return; // already shut down
        }
        signal_shutdown(&self.shared, mode);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CampaignService {
    /// Dropping without an explicit [`CampaignService::shutdown`]
    /// aborts: queued campaigns are cancelled rather than silently
    /// blocking the drop for an unbounded drain.
    fn drop(&mut self) {
        self.shutdown_inner(ShutdownMode::Abort);
    }
}

/// The receiving side of one submission: an event stream yielding every
/// per-run [`RunEvent::Record`] in run order, then exactly one
/// [`RunEvent::Finished`].
#[derive(Debug)]
pub struct CampaignHandle {
    spec_index: usize,
    events: mpsc::Receiver<RunEvent>,
}

impl CampaignHandle {
    /// This submission's index (assigned in submission order, starting
    /// at 0 for a fresh service). [`EvolveError::CampaignPanicked`]
    /// reports it back as `spec_index`.
    pub fn spec_index(&self) -> usize {
        self.spec_index
    }

    /// Receive the next event, blocking until one is available. `None`
    /// once the stream is exhausted (after [`RunEvent::Finished`] has
    /// been consumed).
    pub fn next_event(&self) -> Option<RunEvent> {
        self.events.recv().ok()
    }

    /// Receive the next event without blocking; `None` when nothing is
    /// pending right now (or the stream is exhausted).
    pub fn try_next_event(&self) -> Option<RunEvent> {
        self.events.try_recv().ok()
    }

    /// Block until the campaign finishes, discarding streamed records,
    /// and return the final outcome — the batch-shaped way to consume a
    /// handle.
    ///
    /// # Errors
    ///
    /// Whatever terminal error the campaign produced — including
    /// [`EvolveError::CampaignPanicked`] and
    /// [`EvolveError::CampaignCancelled`] — or
    /// [`EvolveError::ServiceStopped`] if the stream ended without a
    /// terminal event (the service was torn down around it).
    pub fn wait(self) -> Result<CampaignOutcome, EvolveError> {
        loop {
            match self.next_event() {
                Some(RunEvent::Finished(result)) => return result,
                Some(RunEvent::Record(_) | RunEvent::ForkSample(_)) => continue,
                None => return Err(EvolveError::ServiceStopped),
            }
        }
    }
}

/// Flip the shared state into shutdown. The first mode recorded wins;
/// an effective [`ShutdownMode::Abort`] cancels everything queued
/// (ready jobs and parked same-key followers alike get a terminal
/// event now, so their handles resolve before the pool winds down —
/// busy-lane markers stay for in-flight jobs). Both condvars are
/// notified so idle workers and backpressure-blocked submitters
/// re-check.
fn signal_shutdown(shared: &Shared, mode: ShutdownMode) {
    let mut state = shared.lock();
    let effective = *state.shutdown.get_or_insert(mode);
    if effective == ShutdownMode::Abort {
        let mut cancelled: Vec<Job> = state.ready.drain(..).collect();
        cancelled.extend(state.lanes.drain_parked());
        state.parked = 0;
        state.queued = 0;
        shared.publish_gauges(&state);
        drop(state);
        for job in cancelled {
            match &job.payload {
                // Cancelled fork jobs send no terminal of their own —
                // resolving the rendezvous lets the parent's parked
                // terminal (if any) go out instead.
                Payload::Fork { rendezvous, .. } => {
                    shared.metrics.record_fork_cancelled();
                    rendezvous.resolve_fork(&job.events);
                }
                _ => {
                    shared.metrics.record_cancelled();
                    let _ = job
                        .events
                        .send(RunEvent::Finished(Err(EvolveError::CampaignCancelled)));
                }
            }
        }
    } else {
        drop(state);
    }
    shared.not_empty.notify_all();
    shared.not_full.notify_all();
}

/// One worker thread: take ready jobs, execute them with panic
/// containment, stream events, advance model-key lanes, repeat until
/// shutdown.
fn worker_loop(shared: &Shared, worker_index: usize) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.ready.pop_front() {
                    state.queued -= 1;
                    state.in_flight += 1;
                    shared.publish_gauges(&state);
                    shared.not_full.notify_one();
                    break job;
                }
                match state.shutdown {
                    // Abort: the shutdown call already cancelled queued
                    // jobs; nothing left for this worker.
                    Some(ShutdownMode::Abort) => return,
                    // Drain: exit only when nothing can become ready
                    // anymore — no parked followers and no in-flight
                    // predecessor to release them.
                    Some(ShutdownMode::Drain) if state.parked == 0 && state.in_flight == 0 => {
                        return;
                    }
                    _ => {
                        state = shared
                            .not_empty
                            .wait(state)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };

        let key = job.key(shared.store.is_some());
        let completion = run_contained(&job, shared);

        // Finish the bookkeeping *before* delivering the terminal
        // event: once a handle observes `Finished`, the metrics must
        // already count this campaign as completed.
        let mut state = shared.lock();
        state.in_flight -= 1;
        if let Some(released) = state.lanes.release(key.as_deref()) {
            // The follower was already counted in `queued`; it merely
            // moves from parked to ready.
            state.parked -= 1;
            state.ready.push_back(released);
        }
        match &completion {
            Completion::Terminal { .. } => shared.metrics.record_completed(worker_index),
            Completion::Fork { .. } => shared.metrics.record_fork_completed(),
        }
        shared.publish_gauges(&state);
        drop(state);
        // A dropped handle is fine — the campaign's effects (store
        // writes, metrics) stand regardless of whether anyone listens.
        match completion {
            Completion::Terminal {
                result,
                rendezvous: Some(rendezvous),
            } => rendezvous.settle_campaign(&job.events, result),
            Completion::Terminal {
                result,
                rendezvous: None,
            } => {
                let _ = job.events.send(RunEvent::Finished(result));
            }
            Completion::Fork { rendezvous } => rendezvous.resolve_fork(&job.events),
        }
        // Wake everyone: a follower may have become ready, and during a
        // drain other workers must re-check the exit condition.
        shared.not_empty.notify_all();
    }
}

/// What executing one job yields for the delivery stage of
/// [`worker_loop`].
enum Completion {
    /// A campaign or probe produced its terminal result; deliver it
    /// directly, or through the rendezvous when the campaign forked.
    Terminal {
        result: Result<CampaignOutcome, EvolveError>,
        rendezvous: Option<Arc<ForkRendezvous>>,
    },
    /// A fork replay resolved (its samples were already streamed).
    Fork { rendezvous: Arc<ForkRendezvous> },
}

/// The worker-side sink of a *forking* campaign: streams records like
/// the plain closure sink, but consumes fork points and reroutes them
/// into the queue as ordinary [`Payload::Fork`] jobs instead of
/// replaying them inline on the campaign's own worker.
struct ServiceSink<'a> {
    shared: &'a Shared,
    events: mpsc::Sender<RunEvent>,
    rendezvous: Arc<ForkRendezvous>,
    key: Option<String>,
    spec_index: usize,
}

impl RunSink for ServiceSink<'_> {
    fn on_record(&mut self, record: &RunRecord) {
        let _ = self.events.send(RunEvent::Record(record.clone()));
    }

    fn on_fork_point(&mut self, point: ForkPoint) -> Option<ForkPoint> {
        let job = Job {
            spec_index: self.spec_index,
            payload: Payload::Fork {
                point: Box::new(point),
                rendezvous: Arc::clone(&self.rendezvous),
                key: self.key.clone(),
            },
            events: self.events.clone(),
        };
        let mut state = self.shared.lock();
        // Fork spawns race shutdown: once an abort is signalled the
        // queue has already been cancelled, so a late fork must not
        // enter it (nothing would cancel it again).
        if state.shutdown == Some(ShutdownMode::Abort) {
            self.shared.metrics.record_fork_cancelled();
            return None;
        }
        // Forks bypass the queue bound deliberately: the spawning worker
        // cannot block on backpressure while it occupies the pool (that
        // would deadlock a single-worker service), and the per-run fork
        // budget bounds the overshoot.
        self.rendezvous.spawn();
        state.queued += 1;
        self.shared.metrics.record_fork_spawned();
        let key = job.key(self.shared.store.is_some());
        match state.lanes.admit(key.as_deref(), job) {
            Some(job) => {
                state.ready.push_back(job);
                self.shared.not_empty.notify_one();
            }
            // The parent campaign holds the lane busy while it runs, so
            // keyed forks park and execute after it — serialized per
            // model key, like any other same-key work.
            None => state.parked += 1,
        }
        self.shared.publish_gauges(&state);
        None
    }
}

/// Execute one job with panic containment: a panic anywhere inside the
/// campaign (VM, optimizer, store, sink) becomes
/// [`EvolveError::CampaignPanicked`] instead of unwinding the worker.
/// This is the single containment path shared by the service and, via
/// the wrapper, [`CampaignEngine::run`](crate::CampaignEngine::run).
/// Fork replays are contained the same way; a failing or panicking
/// replay loses that point's samples but cannot fail the parent
/// campaign, whose terminal result stands on its own.
fn run_contained(job: &Job, shared: &Shared) -> Completion {
    let unwound = catch_unwind(AssertUnwindSafe(|| match &job.payload {
        Payload::Campaign {
            bench,
            config,
            oracle,
            rendezvous,
        } => {
            let result = match rendezvous {
                Some(rendezvous) => {
                    let mut sink = ServiceSink {
                        shared,
                        events: job.events.clone(),
                        rendezvous: Arc::clone(rendezvous),
                        key: job.key(shared.store.is_some()),
                        spec_index: job.spec_index,
                    };
                    Campaign::new(bench, config.clone()).and_then(|campaign| {
                        campaign.run_with_sink(oracle, shared.store.as_deref(), &mut sink)
                    })
                }
                None => {
                    let events = job.events.clone();
                    let mut sink = move |record: &RunRecord| {
                        let _ = events.send(RunEvent::Record(record.clone()));
                    };
                    Campaign::new(bench, config.clone()).and_then(|campaign| {
                        campaign.run_with_sink(oracle, shared.store.as_deref(), &mut sink)
                    })
                }
            };
            Completion::Terminal {
                result,
                rendezvous: rendezvous.clone(),
            }
        }
        Payload::Fork {
            point, rendezvous, ..
        } => {
            if let Ok(samples) = ForkExecutor::new().replay(point) {
                for sample in samples {
                    shared.metrics.record_fork_sample();
                    let _ = job.events.send(RunEvent::ForkSample(sample));
                }
            }
            Completion::Fork {
                rendezvous: Arc::clone(rendezvous),
            }
        }
        Payload::Probe(Probe::Panic) => panic!("injected panic probe"),
        Payload::Probe(Probe::Gate(gate)) => {
            // Hold the worker until the test releases (or drops) the
            // gate; the probe itself "succeeds" with an empty outcome.
            let _ = gate.recv();
            Completion::Terminal {
                result: Ok(CampaignOutcome {
                    scenario: Scenario::Default,
                    records: Vec::new(),
                    raw_features: 0,
                    used_features: 0,
                    default_seconds_per_input: Vec::new(),
                    state_recovered: false,
                }),
                rendezvous: None,
            }
        }
    }));
    match unwound {
        Ok(completion) => completion,
        Err(payload) => {
            shared.metrics.record_panic();
            let result = Err(EvolveError::CampaignPanicked {
                spec_index: job.spec_index,
                message: panic_message(payload.as_ref()),
            });
            match &job.payload {
                // A panicking fork replay is contained like any other
                // panic, but its terminal is the parent campaign's, not
                // its own.
                Payload::Fork { rendezvous, .. } => Completion::Fork {
                    rendezvous: Arc::clone(rendezvous),
                },
                Payload::Campaign { rendezvous, .. } => Completion::Terminal {
                    result,
                    rendezvous: rendezvous.clone(),
                },
                Payload::Probe(_) => Completion::Terminal {
                    result,
                    rendezvous: None,
                },
            }
        }
    }
}

/// Best-effort rendering of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CampaignService>();
        assert_send::<CampaignHandle>();
        assert_send::<RunEvent>();
        assert_send::<Job>();
    }

    #[test]
    fn panic_messages_render() {
        let p = catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p = catch_unwind(|| panic!("{} {}", "formatted", 1)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 1");
        let p = catch_unwind(|| std::panic::panic_any(42_u8)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }

    #[test]
    fn empty_service_drains_and_aborts_cleanly() {
        CampaignService::builder()
            .workers(2)
            .spawn()
            .shutdown(ShutdownMode::Drain);
        CampaignService::builder()
            .workers(2)
            .spawn()
            .shutdown(ShutdownMode::Abort);
        // Drop without explicit shutdown must also terminate.
        let _ = CampaignService::builder().workers(1).spawn();
    }
}
