//! Applications and their inputs, as the campaign runner consumes them.

use std::sync::Arc;

use evovm_bytecode::Program;
use evovm_xicl::{Translator, Vfs};

/// One concrete input to an application: the command line, the files it
/// references, and the program compiled for this input.
///
/// Programs are compiled *per input* because the toy VM has no argv/file
/// I/O — workloads bake their input constants into the bytecode (the
/// MiniJava source is templated). All inputs of an application share the
/// same source structure, so function ids line up across inputs; the
/// campaign runner asserts this.
#[derive(Debug, Clone)]
pub struct AppInput {
    /// Command-line arguments (program name excluded).
    pub args: Vec<String>,
    /// Files referenced by the command line.
    pub vfs: Vfs,
    /// The program specialized to this input.
    pub program: Arc<Program>,
}

/// A prepared application: its name, its XICL translator, and its input
/// set.
///
/// Cloning is shallow where it matters — each input's compiled program
/// is behind an `Arc` — so a clone (e.g. to hand an owned copy to the
/// long-lived [`CampaignService`](crate::CampaignService)) duplicates
/// only the metadata, not the compiled code.
#[derive(Debug, Clone)]
pub struct Bench {
    /// Application name (e.g. `mtrt`).
    pub name: String,
    /// The XICL translator (spec + extractor registry).
    pub translator: Translator,
    /// The collected inputs (paper Table I's input sets).
    pub inputs: Vec<AppInput>,
}

impl Bench {
    /// Verify that every input's program has the same function layout
    /// (names in the same order), which per-method learning requires.
    pub fn check_consistent(&self) -> bool {
        let Some(first) = self.inputs.first() else {
            return true;
        };
        let names: Vec<&str> = first
            .program
            .functions()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        self.inputs.iter().all(|i| {
            i.program
                .functions()
                .iter()
                .map(|f| f.name.as_str())
                .eq(names.iter().copied())
        })
    }
}
