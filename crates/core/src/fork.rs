//! The compilation-forking counterfactual data factory.
//!
//! A production run configured with
//! [`CampaignConfig::fork_snapshots`](crate::CampaignConfig::fork_snapshots)
//! self-captures a [`RunSnapshot`] at each recompilation decision (up to
//! the configured limit). Each captured snapshot becomes a [`ForkPoint`]:
//! the frozen run state, the method and level the live policy chose, and
//! the XICL feature row of the input that drove the run.
//!
//! The [`ForkExecutor`] then replays one fork point under *every*
//! optimization level — overriding the captured decision via
//! [`RunSnapshot::override_decision`] and resuming with [`Vm::resume`] —
//! and reports one [`ForkSample`] per level carrying the counterfactual
//! total cost. Because the VM clock is virtual and deterministic, the
//! replay of the *chosen* level reproduces the original run bit-for-bit
//! (`tests/fork_equiv.rs` proves it), so the other levels' costs are
//! exactly the costs the original run *would* have paid.
//!
//! One campaign run thus yields up to `fork_snapshots × 4` labelled
//! `(features, level, cost)` training samples instead of one posterior
//! ideal strategy — the data factory the paper's cross-input learner is
//! starved without. Samples convert to
//! [`evovm_learn::dataset::CostSample`]s via [`ForkSample::cost_sample`]
//! and accumulate in a [`CostDataset`](evovm_learn::CostDataset).
//!
//! The same machinery doubles as a what-if debugger for the oracle:
//! `examples/what_if.rs` prints the counterfactual cost table of a run's
//! fork points under all four levels.
//!
//! # Determinism contract
//!
//! A replay runs the remainder of the snapshot under the snapshot's own
//! forked policy ([`AosPolicy::fork_box`](evovm_vm::AosPolicy::fork_box)).
//! Interactive `FeaturesReady` pauses are skipped — no host re-prediction
//! happens inside a counterfactual continuation — so a replay is a pure
//! function of (snapshot, override level). Resumed forks never self-
//! capture (the VM zeroes `fork_snapshots` on resume), so forking cannot
//! recurse.

use evovm_bytecode::FuncId;
use evovm_learn::dataset::{CostSample, Raw};
use evovm_opt::OptLevel;
use evovm_vm::{Outcome, RunSnapshot, Vm};

use crate::error::EvolveError;

/// One captured recompilation decision: the frozen run state plus
/// everything needed to label the counterfactual samples replayed from
/// it.
#[derive(Debug, Clone)]
pub struct ForkPoint {
    /// Campaign-wide fork counter (groups this point's samples).
    pub fork_index: u64,
    /// The campaign run the point was captured in.
    pub run_index: usize,
    /// Which input drove that run.
    pub input_index: usize,
    /// The method the live policy decided to recompile.
    pub method: FuncId,
    /// Its name (resolved from the program at capture).
    pub method_name: String,
    /// The method's compiled level at capture.
    pub from_level: OptLevel,
    /// The level the live policy chose.
    pub decided_level: OptLevel,
    /// Total cycles of the real (unforked) run, for reference.
    pub base_total_cycles: u64,
    /// XICL feature row of the run's input (static features merged with
    /// the run's published runtime features).
    pub features: Vec<(String, Raw)>,
    /// The frozen run state, decision pending.
    pub snapshot: RunSnapshot,
}

/// One counterfactual observation: what the run's total cost would have
/// been had the captured decision resolved to `level`.
#[derive(Debug, Clone)]
pub struct ForkSample {
    /// The originating fork point's campaign-wide index.
    pub fork_index: u64,
    /// The campaign run the fork point was captured in.
    pub run_index: usize,
    /// Which input drove that run.
    pub input_index: usize,
    /// Name of the method the decision concerned.
    pub method: String,
    /// The level this replay resolved the decision to.
    pub level: OptLevel,
    /// Total virtual cycles of the replayed run.
    pub total_cycles: u64,
    /// Total cycles of the real run (the `chosen` replay equals this).
    pub base_total_cycles: u64,
    /// Whether this replay's level is the one the live policy chose.
    pub chosen: bool,
    /// The fork point's feature row, repeated per sample so each sample
    /// is a self-contained training unit.
    pub features: Vec<(String, Raw)>,
}

impl ForkSample {
    /// This sample as a learning-layer cost observation: grouped by fork
    /// point, labelled with the level (shifted to `0..=3`), costed with
    /// the replay's total cycles.
    pub fn cost_sample(&self) -> CostSample {
        CostSample {
            group: self.fork_index,
            features: self.features.clone(),
            level: (self.level.as_i8() + 1) as u16,
            cost: self.total_cycles,
        }
    }
}

/// Replays [`ForkPoint`]s under counterfactual level assignments.
///
/// Stateless by design: a replay depends only on the point, so executors
/// can run anywhere — inline in a campaign loop, or as ordinary queue
/// units on [`CampaignService`](crate::CampaignService) workers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForkExecutor {
    _private: (),
}

impl ForkExecutor {
    /// Create an executor.
    pub fn new() -> ForkExecutor {
        ForkExecutor::default()
    }

    /// Replay `point` once per [`OptLevel`], overriding the captured
    /// decision each time, and return the four counterfactual samples in
    /// level order. Overriding to a level at or below `from_level` is a
    /// natural no-op (recompilation is upward-only), which is precisely
    /// the "what if we had not upgraded" counterfactual.
    ///
    /// # Errors
    ///
    /// Propagates VM errors from the resumed runs (e.g. a pipeline
    /// miscompilation surfaced while replaying the overridden decision).
    pub fn replay(&self, point: &ForkPoint) -> Result<Vec<ForkSample>, EvolveError> {
        let mut samples = Vec::with_capacity(OptLevel::ALL.len());
        for level in OptLevel::ALL {
            let mut snapshot = point.snapshot.clone();
            snapshot.override_decision(Some(level));
            let mut vm = Vm::resume(snapshot)?;
            let result = loop {
                match vm.run()? {
                    Outcome::Finished(result) => break *result,
                    // Counterfactual continuations run under the
                    // snapshot's own policy; interactive pauses pass.
                    Outcome::FeaturesReady => continue,
                }
            };
            samples.push(ForkSample {
                fork_index: point.fork_index,
                run_index: point.run_index,
                input_index: point.input_index,
                method: point.method_name.clone(),
                level,
                total_cycles: result.total_cycles,
                base_total_cycles: point.base_total_cycles,
                chosen: level == point.decided_level,
                features: point.features.clone(),
            });
        }
        Ok(samples)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use evovm_learn::CostDataset;
    use evovm_minijava::compile;
    use evovm_vm::{CostBenefitPolicy, VmConfig};

    use super::*;

    fn hot_program() -> Arc<evovm_bytecode::Program> {
        Arc::new(
            compile(
                "fn work(n) { let s = 0; for (let i = 0; i < n; i = i + 1) { s = s + i * i; } return s; }
                 fn main() { print work(60000); }",
            )
            .unwrap(),
        )
    }

    fn run_to_end(vm: &mut Vm) -> evovm_vm::RunResult {
        loop {
            match vm.run().unwrap() {
                Outcome::Finished(result) => return *result,
                Outcome::FeaturesReady => continue,
            }
        }
    }

    fn first_fork_point() -> (ForkPoint, u64) {
        let program = hot_program();
        let mut vm = Vm::new(
            program.clone(),
            Box::new(CostBenefitPolicy::new()),
            VmConfig {
                fork_snapshots: 4,
                ..VmConfig::default()
            },
        )
        .unwrap();
        let result = run_to_end(&mut vm);
        let snapshot = vm
            .take_fork_snapshots()
            .into_iter()
            .next()
            .expect("hot loop triggers at least one recompilation");
        let (method, decided_level) = snapshot.pending_decision().unwrap();
        let point = ForkPoint {
            fork_index: 0,
            run_index: 0,
            input_index: 0,
            method,
            method_name: program.function(method).name.clone(),
            from_level: snapshot.level_of(method),
            decided_level,
            base_total_cycles: result.total_cycles,
            features: vec![("input.N".to_owned(), Raw::Num(60_000.0))],
            snapshot,
        };
        (point, result.total_cycles)
    }

    #[test]
    fn replay_covers_all_levels_and_chosen_matches_the_real_run() {
        let (point, base_cycles) = first_fork_point();
        let samples = ForkExecutor::new().replay(&point).unwrap();
        assert_eq!(samples.len(), OptLevel::ALL.len());
        let levels: Vec<OptLevel> = samples.iter().map(|s| s.level).collect();
        assert_eq!(levels, OptLevel::ALL.to_vec());
        let chosen: Vec<&ForkSample> = samples.iter().filter(|s| s.chosen).collect();
        assert_eq!(chosen.len(), 1);
        // The chosen-level replay IS the original run's remainder: the
        // counterfactual factory's costs are exact, not approximate.
        assert_eq!(chosen[0].total_cycles, base_cycles);
        assert_eq!(chosen[0].base_total_cycles, base_cycles);
        // The counterfactuals genuinely diverge from one another.
        let distinct: std::collections::BTreeSet<u64> =
            samples.iter().map(|s| s.total_cycles).collect();
        assert!(distinct.len() > 1, "all levels cost the same: {samples:?}");
    }

    #[test]
    fn samples_feed_the_learning_layer_as_cost_rows() {
        let (point, _) = first_fork_point();
        let samples = ForkExecutor::new().replay(&point).unwrap();
        let mut costs = CostDataset::new();
        for s in &samples {
            costs.push(s.cost_sample());
        }
        assert_eq!(costs.len(), 4);
        assert_eq!(costs.groups(), vec![0]);
        let classification = costs.to_classification().unwrap();
        assert_eq!(classification.len(), 1);
        // The argmin label is a valid shifted level.
        assert!(classification.labels()[0] <= 3);
    }
}
