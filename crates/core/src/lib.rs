//! The evolvable virtual machine — cross-input learning and
//! discriminative prediction (Mao & Shen, CGO 2009).
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates of the workspace:
//!
//! - [`evolve`] — the evolvable controller ([`EvolvableVm`]): XICL feature
//!   extraction → discriminative per-method level prediction → posterior
//!   ideal-strategy learning across production runs (Figure 7).
//! - [`strategy`] — predicted strategies, the posterior ideal-strategy
//!   computation, the sample-weighted accuracy metric, and the proactive
//!   [`PredictedPolicy`].
//! - [`rep`] — the repository-based comparison system (`Rep`, Arnold
//!   et al.), reimplemented from the paper's description.
//! - [`campaign`] — the three-scenario experiment runner used by every
//!   table and figure.
//! - [`fork`] — the compilation-forking counterfactual data factory:
//!   recompilation decisions snapshot the run, a [`ForkExecutor`] replays
//!   each snapshot under every level, and the `(features, level, cost)`
//!   samples become first-class training data.
//! - [`service`] — the long-lived streaming campaign service (with
//!   [`scheduler`] holding its pure scheduling/oracle-sharing logic and
//!   [`engine`] as the batch-shaped facade).
//! - [`metrics`] — boxplot summaries and means.
//!
//! # Example
//!
//! ```no_run
//! use evovm::{Campaign, CampaignConfig, Scenario};
//! # fn get_bench() -> evovm::Bench { unimplemented!() }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = get_bench(); // e.g. from the evovm-workloads crate
//! let outcome = Campaign::new(&bench, CampaignConfig::new(Scenario::Evolve).runs(30))?.run()?;
//! println!("median speedup: {:?}", evovm::metrics::BoxStats::from_slice(&outcome.speedups()));
//! # Ok(())
//! # }
//! ```

pub mod app;
pub mod campaign;
pub mod config;
pub mod engine;
pub mod error;
pub mod evolve;
pub mod fork;
pub mod metrics;
pub mod optimizer;
pub mod oracle;
pub mod rep;
pub mod scheduler;
pub mod service;
pub mod store;
pub mod strategy;

pub use app::{AppInput, Bench};
pub use campaign::{Campaign, CampaignConfig, CampaignOutcome, RunRecord, RunSink, Scenario};
pub use config::EvolveConfig;
pub use engine::{CampaignEngine, CampaignSpec};
pub use error::EvolveError;
pub use evolve::{EvolvableVm, EvolveRunRecord, EvolveState};
pub use fork::{ForkExecutor, ForkPoint, ForkSample};
pub use metrics::{ServiceMetrics, ServiceMetricsSnapshot, StoreMetrics, StoreMetricsSnapshot};
pub use optimizer::{CrossRunOptimizer, RunPlan, RunReport};
pub use oracle::DefaultOracle;
pub use rep::{RepPolicy, RepRepository, RepStrategy};
pub use service::{
    CampaignHandle, CampaignService, CampaignServiceBuilder, RunEvent, ShutdownMode,
};
pub use store::{DirStore, MemoryStore, ModelStore, ShardedStore};
pub use strategy::{ideal_levels, prediction_accuracy, LevelStrategy, PredictedPolicy};

/// Bytecode-shape features from whole-program static analysis — the
/// cold-start complement to XICL input features. Re-exported so
/// [`CrossRunOptimizer`] implementations can consume them on run 1
/// without depending on `evovm_xicl` directly.
pub use evovm_xicl::StaticFeatures;
