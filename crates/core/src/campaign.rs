//! The campaign runner: sequences of production runs under one of the
//! paper's three scenarios (§V-B) with randomly arriving inputs.
//!
//! - **Default** — the reactive cost-benefit optimizer, no cross-run
//!   memory. Defines the performance baseline every speedup normalizes to.
//! - **Rep** — the repository-based optimizer: learns one averaged
//!   strategy from history, predicts unconditionally from run 1.
//! - **Evolve** — the evolvable VM: input-specific prediction guarded by
//!   the decayed confidence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use evovm_vm::{CostBenefitPolicy, Outcome, RunResult, Vm, VmConfig, CYCLES_PER_SECOND};

use crate::app::{AppInput, Bench};
use crate::config::EvolveConfig;
use crate::error::EvolveError;
use crate::evolve::EvolvableVm;
use crate::rep::{RepPolicy, RepRepository};

/// Which optimizer drives the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Reactive Jikes-style adaptive optimization.
    Default,
    /// Repository-based cross-run optimization (Arnold et al.).
    Rep,
    /// The evolvable VM.
    Evolve,
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scenario::Default => write!(f, "Default"),
            Scenario::Rep => write!(f, "Rep"),
            Scenario::Evolve => write!(f, "Evolve"),
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The scenario to run.
    pub scenario: Scenario,
    /// Number of production runs.
    pub runs: usize,
    /// Seed controlling the random input arrival order.
    pub seed: u64,
    /// Evolvable-VM parameters (γ, TH_c, tree params, overhead model).
    pub evolve: EvolveConfig,
}

impl CampaignConfig {
    /// A config with the paper's defaults.
    pub fn new(scenario: Scenario) -> CampaignConfig {
        CampaignConfig {
            scenario,
            runs: 30,
            seed: 1,
            evolve: EvolveConfig::default(),
        }
    }

    /// Set the number of runs.
    pub fn runs(mut self, runs: usize) -> CampaignConfig {
        self.runs = runs;
        self
    }

    /// Set the input-order seed.
    pub fn seed(mut self, seed: u64) -> CampaignConfig {
        self.seed = seed;
        self
    }

    /// Set the evolvable-VM parameters.
    pub fn evolve(mut self, evolve: EvolveConfig) -> CampaignConfig {
        self.evolve = evolve;
        self
    }
}

/// One production run's outcome within a campaign.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Position in the campaign (0-based).
    pub run_index: usize,
    /// Which input arrived.
    pub input_index: usize,
    /// Total cycles under the campaign's scenario (including any
    /// evolvable overhead).
    pub cycles: u64,
    /// Total cycles of the cached default run on the same input.
    pub default_cycles: u64,
    /// `default_cycles / cycles` — the paper's speedup metric.
    pub speedup: f64,
    /// Confidence after this run (Evolve only; 0 otherwise).
    pub confidence: f64,
    /// Prediction accuracy of this run (Evolve only; 0 otherwise).
    pub accuracy: f64,
    /// Whether a predicted strategy drove the run (Evolve only).
    pub predicted: bool,
    /// Overhead fraction of total time (Evolve only).
    pub overhead_fraction: f64,
}

impl RunRecord {
    /// This run's simulated duration in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CYCLES_PER_SECOND as f64
    }

    /// The default run's simulated duration in seconds.
    pub fn default_seconds(&self) -> f64 {
        self.default_cycles as f64 / CYCLES_PER_SECOND as f64
    }
}

/// A finished campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-run records, in arrival order.
    pub records: Vec<RunRecord>,
    /// Raw feature count of the training schema (Evolve only).
    pub raw_features: usize,
    /// Features actually used by the models (Evolve only).
    pub used_features: usize,
    /// Default-run seconds per distinct input index (for Table I's
    /// min/max running times).
    pub default_seconds_per_input: Vec<Option<f64>>,
}

impl CampaignOutcome {
    /// The speedups of all runs, in order.
    pub fn speedups(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.speedup).collect()
    }

    /// Mean confidence over the campaign.
    pub fn mean_confidence(&self) -> f64 {
        crate::metrics::mean(
            &self
                .records
                .iter()
                .map(|r| r.confidence)
                .collect::<Vec<_>>(),
        )
    }

    /// Mean prediction accuracy over the campaign.
    pub fn mean_accuracy(&self) -> f64 {
        crate::metrics::mean(&self.records.iter().map(|r| r.accuracy).collect::<Vec<_>>())
    }

    /// Min/max default running time over the inputs that arrived.
    pub fn default_time_range(&self) -> Option<(f64, f64)> {
        let times: Vec<f64> = self
            .default_seconds_per_input
            .iter()
            .flatten()
            .copied()
            .collect();
        if times.is_empty() {
            return None;
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }
}

/// Runs one scenario over a [`Bench`]'s input set.
#[derive(Debug)]
pub struct Campaign<'a> {
    bench: &'a Bench,
    config: CampaignConfig,
}

impl<'a> Campaign<'a> {
    /// Create a campaign.
    ///
    /// # Errors
    ///
    /// [`EvolveError::NoInputs`] for an empty input set and
    /// [`EvolveError::InconsistentPrograms`] when the bench's inputs
    /// compile to different program layouts.
    pub fn new(bench: &'a Bench, config: CampaignConfig) -> Result<Campaign<'a>, EvolveError> {
        if bench.inputs.is_empty() {
            return Err(EvolveError::NoInputs);
        }
        if !bench.check_consistent() {
            return Err(EvolveError::InconsistentPrograms);
        }
        Ok(Campaign { bench, config })
    }

    /// Execute the campaign.
    ///
    /// # Errors
    ///
    /// Propagates VM/XICL/learning errors from individual runs.
    pub fn run(&self) -> Result<CampaignOutcome, EvolveError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let inputs = &self.bench.inputs;
        let mut default_cache: Vec<Option<u64>> = vec![None; inputs.len()];
        let mut evolvable =
            EvolvableVm::new(self.bench.translator.clone(), self.config.evolve);
        let mut repo = RepRepository::new(self.config.evolve.sample_interval_cycles);
        let mut records = Vec::with_capacity(self.config.runs);

        for run_index in 0..self.config.runs {
            let input_index = rng.gen_range(0..inputs.len());
            let input = &inputs[input_index];
            let default_cycles =
                self.default_cycles(input_index, input, &mut default_cache)?;

            let record = match self.config.scenario {
                Scenario::Default => RunRecord {
                    run_index,
                    input_index,
                    cycles: default_cycles,
                    default_cycles,
                    speedup: 1.0,
                    confidence: 0.0,
                    accuracy: 0.0,
                    predicted: false,
                    overhead_fraction: 0.0,
                },
                Scenario::Rep => {
                    let strategy = repo.strategy(&input.program);
                    let result = self.plain_run(
                        input,
                        Box::new(RepPolicy::new(strategy)),
                    )?;
                    repo.observe(&input.program, &result.profile);
                    RunRecord {
                        run_index,
                        input_index,
                        cycles: result.total_cycles,
                        default_cycles,
                        speedup: default_cycles as f64 / result.total_cycles as f64,
                        confidence: 0.0,
                        accuracy: 0.0,
                        predicted: repo.runs() > 1,
                        overhead_fraction: 0.0,
                    }
                }
                Scenario::Evolve => {
                    let rec = evolvable.run_once(input)?;
                    RunRecord {
                        run_index,
                        input_index,
                        cycles: rec.result.total_cycles,
                        default_cycles,
                        speedup: default_cycles as f64 / rec.result.total_cycles as f64,
                        confidence: rec.confidence_after,
                        accuracy: rec.accuracy,
                        predicted: rec.predicted,
                        overhead_fraction: rec.overhead_fraction(),
                    }
                }
            };
            records.push(record);
        }

        let default_seconds_per_input = default_cache
            .iter()
            .map(|c| c.map(|cy| cy as f64 / CYCLES_PER_SECOND as f64))
            .collect();
        Ok(CampaignOutcome {
            scenario: self.config.scenario,
            records,
            raw_features: evolvable.raw_feature_count(),
            used_features: evolvable.used_feature_indices().len(),
            default_seconds_per_input,
        })
    }

    fn default_cycles(
        &self,
        input_index: usize,
        input: &AppInput,
        cache: &mut [Option<u64>],
    ) -> Result<u64, EvolveError> {
        if let Some(c) = cache[input_index] {
            return Ok(c);
        }
        let result = self.plain_run(input, Box::new(CostBenefitPolicy::new()))?;
        cache[input_index] = Some(result.total_cycles);
        Ok(result.total_cycles)
    }

    fn plain_run(
        &self,
        input: &AppInput,
        policy: Box<dyn evovm_vm::AosPolicy>,
    ) -> Result<RunResult, EvolveError> {
        let mut vm = Vm::new(
            Arc::clone(&input.program),
            policy,
            VmConfig {
                sample_interval_cycles: self.config.evolve.sample_interval_cycles,
                ..VmConfig::default()
            },
        )?;
        loop {
            match vm.run()? {
                Outcome::Finished(result) => return Ok(result),
                Outcome::FeaturesReady => continue, // non-evolve scenarios ignore the pause
            }
        }
    }
}
